//! Content hashing for compiled-artifact addressing.
//!
//! FNV-1a is used deliberately: the key feeds a process-local cache, not a
//! security boundary, and FNV is tiny, dependency-free and stable across
//! platforms and runs (unlike `std`'s randomised `DefaultHasher`), so the
//! same circuit always maps to the same artifact key — including across
//! service restarts, which keeps logged keys meaningful.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incrementally-built 64-bit FNV-1a hash.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// Folds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a string field into the hash, with a separator byte so
    /// adjacent fields cannot alias (`"ab" + "c"` vs `"a" + "bc"`).
    pub fn write_field(&mut self, field: &str) {
        self.write(field.as_bytes());
        self.write(&[0xff]);
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hash of one string (convenience for single-field keys).
pub fn fnv1a(text: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write(text.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_separation_prevents_aliasing() {
        let mut a = Fnv64::new();
        a.write_field("ab");
        a.write_field("c");
        let mut b = Fnv64::new();
        b.write_field("a");
        b.write_field("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(fnv1a("qubits 2\nh q[0]\n"), fnv1a("qubits 2\nh q[0]\n"));
    }
}
