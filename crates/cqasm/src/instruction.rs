//! Instructions: gate applications, state preparation, measurement, timing.

use crate::gate::GateKind;
use std::fmt;

/// A qubit operand, `q[i]` in the assembly syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Qubit(pub usize);

/// A classical measurement bit, `b[i]` in the assembly syntax.
///
/// In cQASM there is one implicit bit per qubit; measuring `q[i]` writes
/// `b[i]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bit(pub usize);

impl Qubit {
    /// The raw index of the qubit.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl Bit {
    /// The raw index of the bit.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for Qubit {
    fn from(i: usize) -> Self {
        Qubit(i)
    }
}

impl From<usize> for Bit {
    fn from(i: usize) -> Self {
        Bit(i)
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q[{}]", self.0)
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b[{}]", self.0)
    }
}

/// A gate applied to concrete qubit operands.
#[derive(Debug, Clone, PartialEq)]
pub struct GateApp {
    /// Which gate.
    pub kind: GateKind,
    /// Operands, in the order required by [`GateKind`] (e.g. control first
    /// for [`GateKind::Cnot`]).
    pub qubits: Vec<Qubit>,
}

impl GateApp {
    /// Creates a gate application.
    ///
    /// # Panics
    ///
    /// Panics if the number of operands does not match the gate's arity;
    /// this is a programming error, not an input error.
    pub fn new(kind: GateKind, qubits: Vec<Qubit>) -> Self {
        assert_eq!(
            qubits.len(),
            kind.arity(),
            "gate {kind} expects {} operand(s), got {}",
            kind.arity(),
            qubits.len()
        );
        GateApp { kind, qubits }
    }
}

impl fmt::Display for GateApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.mnemonic())?;
        let mut sep = " ";
        for q in &self.qubits {
            write!(f, "{sep}{q}")?;
            sep = ", ";
        }
        if let Some(a) = self.kind.angle() {
            if matches!(self.kind, GateKind::CRk(_)) {
                // crk prints its integer exponent, not the derived angle.
                if let GateKind::CRk(k) = self.kind {
                    write!(f, ", {k}")?;
                }
                let _ = a;
            } else {
                write!(f, ", {a}")?;
            }
        }
        Ok(())
    }
}

/// A single cQASM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// Initialise a qubit to `|0>`.
    PrepZ(Qubit),
    /// Apply a gate.
    Gate(GateApp),
    /// Apply a gate only if the given classical bit is one
    /// (binary-controlled gate, `c-<gate> b[i], ...`).
    Cond(Bit, GateApp),
    /// Measure a qubit in the Z basis into its implicit bit.
    Measure(Qubit),
    /// Measure every qubit.
    MeasureAll,
    /// A bundle of instructions issued in the same cycle
    /// (`{ g1 | g2 | ... }` syntax). Operand sets must be disjoint.
    Bundle(Vec<Instruction>),
    /// Idle for the given number of cycles.
    Wait(u64),
    /// Debugging aid: ask the executor to dump its state.
    Display,
}

impl Instruction {
    /// Convenience constructor for a plain gate instruction.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the gate arity.
    pub fn gate(kind: GateKind, qubits: &[usize]) -> Self {
        Instruction::Gate(GateApp::new(
            kind,
            qubits.iter().copied().map(Qubit).collect(),
        ))
    }

    /// All qubits this instruction touches (operands, or all qubits for
    /// [`Instruction::MeasureAll`], represented by an empty slice there).
    pub fn qubits(&self) -> Vec<Qubit> {
        match self {
            Instruction::PrepZ(q) | Instruction::Measure(q) => vec![*q],
            Instruction::Gate(g) | Instruction::Cond(_, g) => g.qubits.clone(),
            Instruction::Bundle(instrs) => instrs.iter().flat_map(|i| i.qubits()).collect(),
            Instruction::MeasureAll | Instruction::Wait(_) | Instruction::Display => vec![],
        }
    }

    /// Whether this is a unitary gate (i.e. neither preparation, measurement
    /// nor a timing/debug directive). Bundles count as gates if non-empty.
    pub fn is_unitary_gate(&self) -> bool {
        matches!(self, Instruction::Gate(_) | Instruction::Cond(_, _))
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::PrepZ(q) => write!(f, "prep_z {q}"),
            Instruction::Gate(g) => write!(f, "{g}"),
            Instruction::Cond(b, g) => {
                write!(f, "c-{} {b}", g.kind.mnemonic())?;
                for q in &g.qubits {
                    write!(f, ", {q}")?;
                }
                if let Some(a) = g.kind.angle() {
                    if let GateKind::CRk(k) = g.kind {
                        write!(f, ", {k}")?;
                        let _ = a;
                    } else {
                        write!(f, ", {a}")?;
                    }
                }
                Ok(())
            }
            Instruction::Measure(q) => write!(f, "measure {q}"),
            Instruction::MeasureAll => write!(f, "measure_all"),
            Instruction::Bundle(instrs) => {
                write!(f, "{{ ")?;
                for (i, ins) in instrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{ins}")?;
                }
                write!(f, " }}")
            }
            Instruction::Wait(n) => write!(f, "wait {n}"),
            Instruction::Display => write!(f, "display"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Instruction::gate(GateKind::H, &[0]).to_string(), "h q[0]");
        assert_eq!(
            Instruction::gate(GateKind::Cnot, &[0, 1]).to_string(),
            "cnot q[0], q[1]"
        );
        assert_eq!(
            Instruction::gate(GateKind::Rx(0.5), &[2]).to_string(),
            "rx q[2], 0.5"
        );
        assert_eq!(
            Instruction::gate(GateKind::CRk(3), &[0, 1]).to_string(),
            "crk q[0], q[1], 3"
        );
        assert_eq!(Instruction::Measure(Qubit(1)).to_string(), "measure q[1]");
        assert_eq!(Instruction::PrepZ(Qubit(0)).to_string(), "prep_z q[0]");
        assert_eq!(Instruction::Wait(7).to_string(), "wait 7");
    }

    #[test]
    fn bundle_display() {
        let b = Instruction::Bundle(vec![
            Instruction::gate(GateKind::X, &[0]),
            Instruction::gate(GateKind::Y, &[1]),
        ]);
        assert_eq!(b.to_string(), "{ x q[0] | y q[1] }");
    }

    #[test]
    fn conditional_display() {
        let c = Instruction::Cond(Bit(0), GateApp::new(GateKind::X, vec![Qubit(2)]));
        assert_eq!(c.to_string(), "c-x b[0], q[2]");
    }

    #[test]
    fn qubit_collection() {
        let b = Instruction::Bundle(vec![
            Instruction::gate(GateKind::Cnot, &[0, 1]),
            Instruction::gate(GateKind::H, &[3]),
        ]);
        assert_eq!(b.qubits(), vec![Qubit(0), Qubit(1), Qubit(3)]);
        assert!(Instruction::MeasureAll.qubits().is_empty());
    }

    #[test]
    #[should_panic(expected = "expects 2 operand")]
    fn wrong_arity_panics() {
        let _ = GateApp::new(GateKind::Cnot, vec![Qubit(0)]);
    }
}
