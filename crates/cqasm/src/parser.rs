//! Text parser for the cQASM syntax.
//!
//! The grammar is line-oriented:
//!
//! ```text
//! version 1.0
//! qubits 5
//!
//! # comment (also: // comment)
//! .subcircuit_name            # or .name(iterations)
//!   h q[0]
//!   cnot q[0], q[1]
//!   rx q[2], 1.5708
//!   crk q[0], q[1], 3
//!   c-x b[0], q[1]            # binary-controlled gate
//!   { x q[0] | y q[1] }       # parallel bundle
//!   prep_z q[0]
//!   measure q[0]
//!   measure_all
//!   wait 10
//!   display
//! ```

use crate::error::Error;
use crate::gate::GateKind;
use crate::instruction::{Bit, GateApp, Instruction, Qubit};
use crate::program::{Program, Subcircuit};

/// Parses cQASM text into a [`Program`] (without semantic validation;
/// [`Program::parse`] runs validation on top of this).
///
/// # Errors
///
/// Returns [`Error::Parse`] with the offending line number.
pub fn parse(src: &str) -> Result<Program, Error> {
    let mut version: Option<String> = None;
    let mut qubits: Option<usize> = None;
    let mut error_model: Option<crate::program::ErrorModelSpec> = None;
    let mut subcircuits: Vec<Subcircuit> = Vec::new();

    for (idx, raw_line) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix("version") {
            if version.is_some() {
                return Err(Error::parse(lineno, "duplicate version directive"));
            }
            version = Some(rest.trim().to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("qubits") {
            if qubits.is_some() {
                return Err(Error::parse(lineno, "duplicate qubits directive"));
            }
            let n: usize = rest.trim().parse().map_err(|_| {
                Error::parse(lineno, format!("invalid qubit count `{}`", rest.trim()))
            })?;
            qubits = Some(n);
            continue;
        }
        if let Some(rest) = line.strip_prefix("error_model") {
            if error_model.is_some() {
                return Err(Error::parse(lineno, "duplicate error_model directive"));
            }
            error_model = Some(parse_error_model(rest, lineno)?);
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let (name, iters) = parse_subcircuit_header(rest, lineno)?;
            subcircuits.push(Subcircuit::with_iterations(name, iters));
            continue;
        }

        if qubits.is_none() {
            return Err(Error::parse(
                lineno,
                "instruction before `qubits` directive",
            ));
        }
        if subcircuits.is_empty() {
            subcircuits.push(Subcircuit::new("default"));
        }
        let ins = parse_instruction(line, lineno)?;
        subcircuits
            .last_mut()
            .expect("just ensured non-empty")
            .push(ins);
    }

    let qubit_count = qubits
        .ok_or_else(|| Error::parse(src.lines().count().max(1), "missing `qubits` directive"))?;
    let mut program = Program::new(qubit_count);
    if let Some(v) = version {
        program.set_version(v);
    }
    program.set_error_model(error_model);
    for s in subcircuits {
        program.push_subcircuit(s);
    }
    Ok(program)
}

fn parse_error_model(rest: &str, lineno: usize) -> Result<crate::program::ErrorModelSpec, Error> {
    let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
    let name = parts
        .first()
        .filter(|s| !s.is_empty())
        .ok_or_else(|| Error::parse(lineno, "error_model needs a model name"))?;
    let mut params = Vec::new();
    for p in &parts[1..] {
        let v: f64 = p
            .parse()
            .map_err(|_| Error::parse(lineno, format!("invalid error_model parameter `{p}`")))?;
        params.push(v);
    }
    Ok(crate::program::ErrorModelSpec {
        name: name.to_string(),
        params,
    })
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find('#').unwrap_or(line.len());
    let cut2 = line.find("//").unwrap_or(line.len());
    &line[..cut.min(cut2)]
}

fn parse_subcircuit_header(rest: &str, lineno: usize) -> Result<(String, u64), Error> {
    let rest = rest.trim();
    if let Some(open) = rest.find('(') {
        let name = rest[..open].trim();
        let close = rest
            .find(')')
            .ok_or_else(|| Error::parse(lineno, "missing `)` in subcircuit header"))?;
        let iters: u64 = rest[open + 1..close]
            .trim()
            .parse()
            .map_err(|_| Error::parse(lineno, "invalid iteration count"))?;
        if name.is_empty() {
            return Err(Error::parse(lineno, "empty subcircuit name"));
        }
        Ok((name.to_owned(), iters))
    } else {
        if rest.is_empty() {
            return Err(Error::parse(lineno, "empty subcircuit name"));
        }
        Ok((rest.to_owned(), 1))
    }
}

fn parse_instruction(line: &str, lineno: usize) -> Result<Instruction, Error> {
    if line.starts_with('{') {
        if !line.ends_with('}') {
            return Err(Error::parse(
                lineno,
                "bundle must close with `}` on the same line",
            ));
        }
        let inner = &line[1..line.len() - 1];
        let parts: Vec<&str> = inner.split('|').map(str::trim).collect();
        let mut instrs = Vec::with_capacity(parts.len());
        for p in parts {
            if p.is_empty() {
                return Err(Error::parse(lineno, "empty slot in bundle"));
            }
            instrs.push(parse_simple(p, lineno)?);
        }
        return Ok(Instruction::Bundle(instrs));
    }
    parse_simple(line, lineno)
}

fn parse_simple(line: &str, lineno: usize) -> Result<Instruction, Error> {
    let (mnemonic, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    let mnemonic_lc = mnemonic.to_ascii_lowercase();

    match mnemonic_lc.as_str() {
        "measure_all" => return expect_no_args(rest, lineno).map(|_| Instruction::MeasureAll),
        "display" => return expect_no_args(rest, lineno).map(|_| Instruction::Display),
        "measure" | "measure_z" => {
            let q = parse_qubit_ref(rest, lineno)?;
            return Ok(Instruction::Measure(q));
        }
        "prep_z" | "prep" => {
            let q = parse_qubit_ref(rest, lineno)?;
            return Ok(Instruction::PrepZ(q));
        }
        "wait" => {
            let n: u64 = rest
                .parse()
                .map_err(|_| Error::parse(lineno, format!("invalid wait count `{rest}`")))?;
            return Ok(Instruction::Wait(n));
        }
        _ => {}
    }

    if let Some(gate_name) = mnemonic_lc.strip_prefix("c-") {
        let args: Vec<&str> = split_args(rest);
        if args.is_empty() {
            return Err(Error::parse(
                lineno,
                "binary-controlled gate needs a bit operand",
            ));
        }
        let bit = parse_bit_ref(args[0], lineno)?;
        let app = build_gate(gate_name, &args[1..], lineno)?;
        return Ok(Instruction::Cond(bit, app));
    }

    let args: Vec<&str> = split_args(rest);
    let app = build_gate(&mnemonic_lc, &args, lineno)?;
    Ok(Instruction::Gate(app))
}

fn expect_no_args(rest: &str, lineno: usize) -> Result<(), Error> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(Error::parse(
            lineno,
            format!("unexpected operands `{rest}`"),
        ))
    }
}

fn split_args(rest: &str) -> Vec<&str> {
    if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    }
}

fn build_gate(name: &str, args: &[&str], lineno: usize) -> Result<GateApp, Error> {
    let (kind, operand_count) = match name {
        "i" | "id" => (GateKind::I, 1),
        "h" => (GateKind::H, 1),
        "x" => (GateKind::X, 1),
        "y" => (GateKind::Y, 1),
        "z" => (GateKind::Z, 1),
        "s" => (GateKind::S, 1),
        "sdag" => (GateKind::Sdag, 1),
        "t" => (GateKind::T, 1),
        "tdag" => (GateKind::Tdag, 1),
        "x90" => (GateKind::X90, 1),
        "y90" => (GateKind::Y90, 1),
        "mx90" => (GateKind::Mx90, 1),
        "my90" => (GateKind::My90, 1),
        "cnot" | "cx" => (GateKind::Cnot, 2),
        "cz" => (GateKind::Cz, 2),
        "swap" => (GateKind::Swap, 2),
        "toffoli" | "ccx" => (GateKind::Toffoli, 3),
        "rx" | "ry" | "rz" | "cr" | "crk" => {
            // Parameterised gates: last argument is the parameter.
            let qubit_args = match name {
                "rx" | "ry" | "rz" => 1,
                _ => 2,
            };
            if args.len() != qubit_args + 1 {
                return Err(Error::parse(
                    lineno,
                    format!("gate `{name}` expects {qubit_args} qubit operand(s) and a parameter"),
                ));
            }
            let param = args[qubit_args];
            let kind = match name {
                "rx" => GateKind::Rx(parse_angle(param, lineno)?),
                "ry" => GateKind::Ry(parse_angle(param, lineno)?),
                "rz" => GateKind::Rz(parse_angle(param, lineno)?),
                "cr" => GateKind::Cr(parse_angle(param, lineno)?),
                "crk" => {
                    let k: u32 = param.parse().map_err(|_| {
                        Error::parse(lineno, format!("invalid crk exponent `{param}`"))
                    })?;
                    GateKind::CRk(k)
                }
                _ => unreachable!(),
            };
            let mut qubits = Vec::with_capacity(qubit_args);
            for a in &args[..qubit_args] {
                qubits.push(parse_qubit_ref(a, lineno)?);
            }
            return Ok(GateApp::new(kind, qubits));
        }
        other => {
            return Err(Error::parse(lineno, format!("unknown gate `{other}`")));
        }
    };
    if args.len() != operand_count {
        return Err(Error::parse(
            lineno,
            format!(
                "gate `{name}` expects {operand_count} operand(s), got {}",
                args.len()
            ),
        ));
    }
    let mut qubits = Vec::with_capacity(operand_count);
    for a in args {
        qubits.push(parse_qubit_ref(a, lineno)?);
    }
    Ok(GateApp::new(kind, qubits))
}

fn parse_angle(s: &str, lineno: usize) -> Result<f64, Error> {
    // Accept plain floats plus the common `pi`-expressions emitted by hand
    // written kernels (e.g. `pi/2`, `-pi/4`, `2*pi`).
    let t = s.trim().to_ascii_lowercase();
    if let Ok(v) = t.parse::<f64>() {
        return Ok(v);
    }
    let (sign, t) = match t.strip_prefix('-') {
        Some(rest) => (-1.0, rest.to_owned()),
        None => (1.0, t),
    };
    let pi = std::f64::consts::PI;
    if t == "pi" {
        return Ok(sign * pi);
    }
    if let Some(denom) = t.strip_prefix("pi/") {
        let d: f64 = denom
            .parse()
            .map_err(|_| Error::parse(lineno, format!("invalid angle `{s}`")))?;
        return Ok(sign * pi / d);
    }
    if let Some(num) = t.strip_suffix("*pi") {
        let n: f64 = num
            .parse()
            .map_err(|_| Error::parse(lineno, format!("invalid angle `{s}`")))?;
        return Ok(sign * n * pi);
    }
    Err(Error::parse(lineno, format!("invalid angle `{s}`")))
}

fn parse_qubit_ref(s: &str, lineno: usize) -> Result<Qubit, Error> {
    parse_indexed(s, 'q', lineno).map(Qubit)
}

fn parse_bit_ref(s: &str, lineno: usize) -> Result<Bit, Error> {
    parse_indexed(s, 'b', lineno).map(Bit)
}

fn parse_indexed(s: &str, reg: char, lineno: usize) -> Result<usize, Error> {
    let t = s.trim();
    let body = t
        .strip_prefix(reg)
        .and_then(|r| r.trim().strip_prefix('['))
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| Error::parse(lineno, format!("expected `{reg}[i]`, got `{t}`")))?;
    body.trim()
        .parse()
        .map_err(|_| Error::parse(lineno, format!("invalid index in `{t}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("version 1.0\nqubits 2\n.main\nh q[0]\ncnot q[0], q[1]\n").unwrap();
        assert_eq!(p.qubit_count(), 2);
        assert_eq!(p.version(), "1.0");
        assert_eq!(p.subcircuits().len(), 1);
        assert_eq!(p.subcircuits()[0].instructions().len(), 2);
    }

    #[test]
    fn parses_without_explicit_subcircuit() {
        let p = parse("qubits 1\nx q[0]\n").unwrap();
        assert_eq!(p.subcircuits()[0].name(), "default");
    }

    #[test]
    fn parses_iterated_subcircuit() {
        let p = parse("qubits 1\n.loop(5)\nx q[0]\n").unwrap();
        assert_eq!(p.subcircuits()[0].iterations(), 5);
    }

    #[test]
    fn parses_bundle() {
        let p = parse("qubits 2\n{ x q[0] | y q[1] }\n").unwrap();
        match &p.subcircuits()[0].instructions()[0] {
            Instruction::Bundle(v) => assert_eq!(v.len(), 2),
            other => panic!("expected bundle, got {other:?}"),
        }
    }

    #[test]
    fn parses_conditional() {
        let p = parse("qubits 2\nc-x b[0], q[1]\n").unwrap();
        match &p.subcircuits()[0].instructions()[0] {
            Instruction::Cond(b, g) => {
                assert_eq!(b.index(), 0);
                assert_eq!(g.kind, GateKind::X);
                assert_eq!(g.qubits, vec![Qubit(1)]);
            }
            other => panic!("expected conditional, got {other:?}"),
        }
    }

    #[test]
    fn parses_rotations_and_pi_expressions() {
        let p =
            parse("qubits 1\nrx q[0], 1.5\nrz q[0], pi/2\nry q[0], -pi\nrz q[0], 2*pi\n").unwrap();
        let ins = p.subcircuits()[0].instructions();
        match &ins[1] {
            Instruction::Gate(g) => {
                let a = g.kind.angle().unwrap();
                assert!((a - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &ins[3] {
            Instruction::Gate(g) => {
                let a = g.kind.angle().unwrap();
                assert!((a - 2.0 * std::f64::consts::PI).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_crk() {
        let p = parse("qubits 2\ncrk q[0], q[1], 3\n").unwrap();
        match &p.subcircuits()[0].instructions()[0] {
            Instruction::Gate(g) => assert_eq!(g.kind, GateKind::CRk(3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = parse("# top\nqubits 1\n\n// c++-style\nx q[0]  # trailing\n").unwrap();
        assert_eq!(p.subcircuits()[0].instructions().len(), 1);
    }

    #[test]
    fn error_on_unknown_gate() {
        let e = parse("qubits 1\nfrobnicate q[0]\n").unwrap_err();
        assert!(e.to_string().contains("unknown gate"));
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn error_on_missing_qubits() {
        assert!(parse("x q[0]\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn error_on_bad_operand_count() {
        assert!(parse("qubits 2\ncnot q[0]\n").is_err());
        assert!(parse("qubits 2\nh q[0], q[1]\n").is_err());
    }

    #[test]
    fn error_on_bad_reference() {
        assert!(parse("qubits 1\nx p[0]\n").is_err());
        assert!(parse("qubits 1\nx q[zero]\n").is_err());
    }

    #[test]
    fn cx_and_ccx_aliases() {
        let p = parse("qubits 3\ncx q[0], q[1]\nccx q[0], q[1], q[2]\n").unwrap();
        let ins = p.subcircuits()[0].instructions();
        assert!(matches!(&ins[0], Instruction::Gate(g) if g.kind == GateKind::Cnot));
        assert!(matches!(&ins[1], Instruction::Gate(g) if g.kind == GateKind::Toffoli));
    }

    #[test]
    fn measure_variants() {
        let p = parse("qubits 2\nmeasure q[0]\nmeasure_all\n").unwrap();
        let ins = p.subcircuits()[0].instructions();
        assert!(matches!(ins[0], Instruction::Measure(Qubit(0))));
        assert!(matches!(ins[1], Instruction::MeasureAll));
    }
}

#[cfg(test)]
mod error_model_tests {
    use super::*;

    #[test]
    fn parses_error_model_directive() {
        let p = parse("version 1.0\nqubits 2\nerror_model depolarizing_channel, 0.001\nh q[0]\n")
            .unwrap();
        let m = p.error_model().expect("model parsed");
        assert_eq!(m.name, "depolarizing_channel");
        assert_eq!(m.params, vec![0.001]);
    }

    #[test]
    fn roundtrips_through_the_writer() {
        let src = "version 1.0\nqubits 1\nerror_model depolarizing_channel, 0.01\nx q[0]\n";
        let p = parse(src).unwrap();
        let q = parse(&p.to_string()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn rejects_duplicates_and_garbage() {
        assert!(parse("qubits 1\nerror_model a, 1\nerror_model b, 2\n").is_err());
        assert!(parse("qubits 1\nerror_model depolarizing_channel, soup\n").is_err());
        assert!(parse("qubits 1\nerror_model\n").is_err());
    }

    #[test]
    fn multi_parameter_models() {
        let p = parse("qubits 1\nerror_model pauli_channel, 0.1, 0.2, 0.3\n").unwrap();
        assert_eq!(p.error_model().unwrap().params.len(), 3);
    }
}
