//! Text parser for the cQASM syntax.
//!
//! The grammar is line-oriented:
//!
//! ```text
//! version 1.0
//! qubits 5
//!
//! # comment (also: // comment)
//! .subcircuit_name            # or .name(iterations)
//!   h q[0]
//!   cnot q[0], q[1]
//!   rx q[2], 1.5708
//!   crk q[0], q[1], 3
//!   c-x b[0], q[1]            # binary-controlled gate
//!   { x q[0] | y q[1] }       # parallel bundle
//!   prep_z q[0]
//!   measure q[0]
//!   measure_all
//!   wait 10
//!   display
//! ```
//!
//! Every parse error carries a 1-based line and column diagnostic; the
//! column points at the offending token when it can be located, and at
//! column 1 when the error applies to the whole line.

use crate::error::Error;
use crate::gate::GateKind;
use crate::instruction::{Bit, GateApp, Instruction, Qubit};
use crate::program::{Program, Subcircuit};

/// One source line being parsed: its 1-based number plus the original text,
/// so errors can report the column of an offending token.
#[derive(Clone, Copy)]
struct Line<'a> {
    number: usize,
    text: &'a str,
}

impl Line<'_> {
    /// A parse error for the whole line (column 1).
    fn err(&self, message: impl Into<String>) -> Error {
        Error::parse(self.number, message)
    }

    /// A parse error pointing at `token`, which must be a subslice of the
    /// line text (falls back to column 1 otherwise).
    fn err_at(&self, token: &str, message: impl Into<String>) -> Error {
        Error::parse_at(self.number, self.column_of(token), message)
    }

    /// 1-based column of `token` inside this line, when `token` is a
    /// subslice of it.
    fn column_of(&self, token: &str) -> usize {
        let lo = self.text.as_ptr() as usize;
        let hi = lo + self.text.len();
        let t = token.as_ptr() as usize;
        if t >= lo && t <= hi {
            t - lo + 1
        } else {
            1
        }
    }
}

/// Parses cQASM text into a [`Program`] (without semantic validation;
/// [`Program::parse`] runs validation on top of this).
///
/// # Errors
///
/// Returns [`Error::Parse`] with the offending line and column.
pub fn parse(src: &str) -> Result<Program, Error> {
    let mut version: Option<String> = None;
    let mut qubits: Option<usize> = None;
    let mut error_model: Option<crate::program::ErrorModelSpec> = None;
    let mut subcircuits: Vec<Subcircuit> = Vec::new();

    for (idx, raw_line) in src.lines().enumerate() {
        let ln = Line {
            number: idx + 1,
            text: raw_line,
        };
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix("version") {
            if version.is_some() {
                return Err(ln.err("duplicate version directive"));
            }
            version = Some(rest.trim().to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("qubits") {
            if qubits.is_some() {
                return Err(ln.err("duplicate qubits directive"));
            }
            let arg = rest.trim();
            let n: usize = arg
                .parse()
                .map_err(|_| ln.err_at(arg, format!("invalid qubit count `{arg}`")))?;
            qubits = Some(n);
            continue;
        }
        if let Some(rest) = line.strip_prefix("error_model") {
            if error_model.is_some() {
                return Err(ln.err("duplicate error_model directive"));
            }
            error_model = Some(parse_error_model(rest, ln)?);
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let (name, iters) = parse_subcircuit_header(rest, ln)?;
            subcircuits.push(Subcircuit::with_iterations(name, iters));
            continue;
        }

        if qubits.is_none() {
            return Err(ln.err("instruction before `qubits` directive"));
        }
        if subcircuits.is_empty() {
            subcircuits.push(Subcircuit::new("default"));
        }
        let ins = parse_instruction(line, ln)?;
        if let Some(current) = subcircuits.last_mut() {
            current.push(ins);
        }
    }

    let qubit_count = qubits
        .ok_or_else(|| Error::parse(src.lines().count().max(1), "missing `qubits` directive"))?;
    let mut program = Program::new(qubit_count);
    if let Some(v) = version {
        program.set_version(v);
    }
    program.set_error_model(error_model);
    for s in subcircuits {
        program.push_subcircuit(s);
    }
    Ok(program)
}

fn parse_error_model(rest: &str, ln: Line<'_>) -> Result<crate::program::ErrorModelSpec, Error> {
    let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
    let name = parts
        .first()
        .filter(|s| !s.is_empty())
        .ok_or_else(|| ln.err("error_model needs a model name"))?;
    let mut params = Vec::new();
    for p in &parts[1..] {
        let v: f64 = p
            .parse()
            .map_err(|_| ln.err_at(p, format!("invalid error_model parameter `{p}`")))?;
        params.push(v);
    }
    Ok(crate::program::ErrorModelSpec {
        name: name.to_string(),
        params,
    })
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find('#').unwrap_or(line.len());
    let cut2 = line.find("//").unwrap_or(line.len());
    &line[..cut.min(cut2)]
}

fn parse_subcircuit_header(rest: &str, ln: Line<'_>) -> Result<(String, u64), Error> {
    let rest = rest.trim();
    if let Some(open) = rest.find('(') {
        let name = rest[..open].trim();
        let close = rest
            .find(')')
            .ok_or_else(|| ln.err("missing `)` in subcircuit header"))?;
        let iter_text = rest[open + 1..close].trim();
        let iters: u64 = iter_text
            .parse()
            .map_err(|_| ln.err_at(iter_text, "invalid iteration count"))?;
        if name.is_empty() {
            return Err(ln.err("empty subcircuit name"));
        }
        Ok((name.to_owned(), iters))
    } else {
        if rest.is_empty() {
            return Err(ln.err("empty subcircuit name"));
        }
        Ok((rest.to_owned(), 1))
    }
}

fn parse_instruction(line: &str, ln: Line<'_>) -> Result<Instruction, Error> {
    if line.starts_with('{') {
        if !line.ends_with('}') {
            return Err(ln.err("bundle must close with `}` on the same line"));
        }
        let inner = &line[1..line.len() - 1];
        let parts: Vec<&str> = inner.split('|').map(str::trim).collect();
        let mut instrs = Vec::with_capacity(parts.len());
        for p in parts {
            if p.is_empty() {
                return Err(ln.err("empty slot in bundle"));
            }
            instrs.push(parse_simple(p, ln)?);
        }
        return Ok(Instruction::Bundle(instrs));
    }
    parse_simple(line, ln)
}

fn parse_simple(line: &str, ln: Line<'_>) -> Result<Instruction, Error> {
    let (mnemonic, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    let mnemonic_lc = mnemonic.to_ascii_lowercase();

    match mnemonic_lc.as_str() {
        "measure_all" => return expect_no_args(rest, ln).map(|_| Instruction::MeasureAll),
        "display" => return expect_no_args(rest, ln).map(|_| Instruction::Display),
        "measure" | "measure_z" => {
            let q = parse_qubit_ref(rest, ln)?;
            return Ok(Instruction::Measure(q));
        }
        "prep_z" | "prep" => {
            let q = parse_qubit_ref(rest, ln)?;
            return Ok(Instruction::PrepZ(q));
        }
        "wait" => {
            let n: u64 = rest
                .parse()
                .map_err(|_| ln.err_at(rest, format!("invalid wait count `{rest}`")))?;
            return Ok(Instruction::Wait(n));
        }
        _ => {}
    }

    if let Some(gate_name) = mnemonic_lc.strip_prefix("c-") {
        let args: Vec<&str> = split_args(rest);
        if args.is_empty() {
            return Err(ln.err_at(mnemonic, "binary-controlled gate needs a bit operand"));
        }
        let bit = parse_bit_ref(args[0], ln)?;
        let app = build_gate(gate_name, mnemonic, &args[1..], ln)?;
        return Ok(Instruction::Cond(bit, app));
    }

    let args: Vec<&str> = split_args(rest);
    let app = build_gate(&mnemonic_lc, mnemonic, &args, ln)?;
    Ok(Instruction::Gate(app))
}

fn expect_no_args(rest: &str, ln: Line<'_>) -> Result<(), Error> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(ln.err_at(rest, format!("unexpected operands `{rest}`")))
    }
}

fn split_args(rest: &str) -> Vec<&str> {
    if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    }
}

/// Builds a gate application from its lower-cased name (`name`), the
/// original mnemonic token (`at`, for error columns) and operand tokens.
fn build_gate(name: &str, at: &str, args: &[&str], ln: Line<'_>) -> Result<GateApp, Error> {
    let (kind, operand_count) = match name {
        "i" | "id" => (GateKind::I, 1),
        "h" => (GateKind::H, 1),
        "x" => (GateKind::X, 1),
        "y" => (GateKind::Y, 1),
        "z" => (GateKind::Z, 1),
        "s" => (GateKind::S, 1),
        "sdag" => (GateKind::Sdag, 1),
        "t" => (GateKind::T, 1),
        "tdag" => (GateKind::Tdag, 1),
        "x90" => (GateKind::X90, 1),
        "y90" => (GateKind::Y90, 1),
        "mx90" => (GateKind::Mx90, 1),
        "my90" => (GateKind::My90, 1),
        "cnot" | "cx" => (GateKind::Cnot, 2),
        "cz" => (GateKind::Cz, 2),
        "swap" => (GateKind::Swap, 2),
        "toffoli" | "ccx" => (GateKind::Toffoli, 3),
        "rx" | "ry" | "rz" | "cr" | "crk" => {
            // Parameterised gates: last argument is the parameter.
            let qubit_args = match name {
                "rx" | "ry" | "rz" => 1,
                _ => 2,
            };
            if args.len() != qubit_args + 1 {
                return Err(ln.err_at(
                    at,
                    format!("gate `{name}` expects {qubit_args} qubit operand(s) and a parameter"),
                ));
            }
            let param = args[qubit_args];
            let kind = match name {
                "rx" => GateKind::Rx(parse_angle(param, ln)?),
                "ry" => GateKind::Ry(parse_angle(param, ln)?),
                "rz" => GateKind::Rz(parse_angle(param, ln)?),
                "cr" => GateKind::Cr(parse_angle(param, ln)?),
                "crk" => {
                    let k: u32 = param
                        .parse()
                        .map_err(|_| ln.err_at(param, format!("invalid crk exponent `{param}`")))?;
                    GateKind::CRk(k)
                }
                other => {
                    // The outer match arm restricts `name` to the five
                    // parameterised mnemonics; report rather than abort if
                    // that invariant is ever broken.
                    return Err(ln.err_at(at, format!("unknown parameterised gate `{other}`")));
                }
            };
            let mut qubits = Vec::with_capacity(qubit_args);
            for a in &args[..qubit_args] {
                qubits.push(parse_qubit_ref(a, ln)?);
            }
            return Ok(GateApp::new(kind, qubits));
        }
        other => {
            return Err(ln.err_at(at, format!("unknown gate `{other}`")));
        }
    };
    if args.len() != operand_count {
        return Err(ln.err_at(
            at,
            format!(
                "gate `{name}` expects {operand_count} operand(s), got {}",
                args.len()
            ),
        ));
    }
    let mut qubits = Vec::with_capacity(operand_count);
    for a in args {
        qubits.push(parse_qubit_ref(a, ln)?);
    }
    Ok(GateApp::new(kind, qubits))
}

fn parse_angle(s: &str, ln: Line<'_>) -> Result<f64, Error> {
    // Accept plain floats plus the common `pi`-expressions emitted by hand
    // written kernels (e.g. `pi/2`, `-pi/4`, `2*pi`).
    let t = s.trim().to_ascii_lowercase();
    if let Ok(v) = t.parse::<f64>() {
        if !v.is_finite() {
            return Err(ln.err_at(s, format!("non-finite angle `{s}`")));
        }
        return Ok(v);
    }
    let (sign, t) = match t.strip_prefix('-') {
        Some(rest) => (-1.0, rest.to_owned()),
        None => (1.0, t),
    };
    let pi = std::f64::consts::PI;
    if t == "pi" {
        return Ok(sign * pi);
    }
    if let Some(denom) = t.strip_prefix("pi/") {
        let d: f64 = denom
            .parse()
            .map_err(|_| ln.err_at(s, format!("invalid angle `{s}`")))?;
        let v = sign * pi / d;
        if !v.is_finite() {
            return Err(ln.err_at(s, format!("non-finite angle `{s}`")));
        }
        return Ok(v);
    }
    if let Some(num) = t.strip_suffix("*pi") {
        let n: f64 = num
            .parse()
            .map_err(|_| ln.err_at(s, format!("invalid angle `{s}`")))?;
        let v = sign * n * pi;
        if !v.is_finite() {
            return Err(ln.err_at(s, format!("non-finite angle `{s}`")));
        }
        return Ok(v);
    }
    Err(ln.err_at(s, format!("invalid angle `{s}`")))
}

fn parse_qubit_ref(s: &str, ln: Line<'_>) -> Result<Qubit, Error> {
    parse_indexed(s, 'q', ln).map(Qubit)
}

fn parse_bit_ref(s: &str, ln: Line<'_>) -> Result<Bit, Error> {
    parse_indexed(s, 'b', ln).map(Bit)
}

fn parse_indexed(s: &str, reg: char, ln: Line<'_>) -> Result<usize, Error> {
    let t = s.trim();
    let body = t
        .strip_prefix(reg)
        .and_then(|r| r.trim().strip_prefix('['))
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| ln.err_at(t, format!("expected `{reg}[i]`, got `{t}`")))?;
    body.trim()
        .parse()
        .map_err(|_| ln.err_at(t, format!("invalid index in `{t}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("version 1.0\nqubits 2\n.main\nh q[0]\ncnot q[0], q[1]\n").unwrap();
        assert_eq!(p.qubit_count(), 2);
        assert_eq!(p.version(), "1.0");
        assert_eq!(p.subcircuits().len(), 1);
        assert_eq!(p.subcircuits()[0].instructions().len(), 2);
    }

    #[test]
    fn parses_without_explicit_subcircuit() {
        let p = parse("qubits 1\nx q[0]\n").unwrap();
        assert_eq!(p.subcircuits()[0].name(), "default");
    }

    #[test]
    fn parses_iterated_subcircuit() {
        let p = parse("qubits 1\n.loop(5)\nx q[0]\n").unwrap();
        assert_eq!(p.subcircuits()[0].iterations(), 5);
    }

    #[test]
    fn parses_bundle() {
        let p = parse("qubits 2\n{ x q[0] | y q[1] }\n").unwrap();
        match &p.subcircuits()[0].instructions()[0] {
            Instruction::Bundle(v) => assert_eq!(v.len(), 2),
            other => panic!("expected bundle, got {other:?}"),
        }
    }

    #[test]
    fn parses_conditional() {
        let p = parse("qubits 2\nc-x b[0], q[1]\n").unwrap();
        match &p.subcircuits()[0].instructions()[0] {
            Instruction::Cond(b, g) => {
                assert_eq!(b.index(), 0);
                assert_eq!(g.kind, GateKind::X);
                assert_eq!(g.qubits, vec![Qubit(1)]);
            }
            other => panic!("expected conditional, got {other:?}"),
        }
    }

    #[test]
    fn parses_rotations_and_pi_expressions() {
        let p =
            parse("qubits 1\nrx q[0], 1.5\nrz q[0], pi/2\nry q[0], -pi\nrz q[0], 2*pi\n").unwrap();
        let ins = p.subcircuits()[0].instructions();
        match &ins[1] {
            Instruction::Gate(g) => {
                let a = g.kind.angle().unwrap();
                assert!((a - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &ins[3] {
            Instruction::Gate(g) => {
                let a = g.kind.angle().unwrap();
                assert!((a - 2.0 * std::f64::consts::PI).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_crk() {
        let p = parse("qubits 2\ncrk q[0], q[1], 3\n").unwrap();
        match &p.subcircuits()[0].instructions()[0] {
            Instruction::Gate(g) => assert_eq!(g.kind, GateKind::CRk(3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = parse("# top\nqubits 1\n\n// c++-style\nx q[0]  # trailing\n").unwrap();
        assert_eq!(p.subcircuits()[0].instructions().len(), 1);
    }

    #[test]
    fn error_on_unknown_gate() {
        let e = parse("qubits 1\nfrobnicate q[0]\n").unwrap_err();
        assert!(e.to_string().contains("unknown gate"));
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn errors_carry_columns() {
        // `frobnicate` starts at column 3 of its line.
        let e = parse("qubits 1\n  frobnicate q[0]\n").unwrap_err();
        assert_eq!(e.position(), Some((2, 3)));
        // Bad operand token position.
        let e = parse("qubits 2\ncnot q[0], p[1]\n").unwrap_err();
        assert_eq!(e.position(), Some((2, 12)));
        // Bad angle token position.
        let e = parse("qubits 1\nrx q[0], soup\n").unwrap_err();
        assert_eq!(e.position(), Some((2, 10)));
    }

    #[test]
    fn error_on_missing_qubits() {
        assert!(parse("x q[0]\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn error_on_bad_operand_count() {
        assert!(parse("qubits 2\ncnot q[0]\n").is_err());
        assert!(parse("qubits 2\nh q[0], q[1]\n").is_err());
    }

    #[test]
    fn error_on_bad_reference() {
        assert!(parse("qubits 1\nx p[0]\n").is_err());
        assert!(parse("qubits 1\nx q[zero]\n").is_err());
    }

    #[test]
    fn error_on_non_finite_angle() {
        assert!(parse("qubits 1\nrx q[0], inf\n").is_err());
        assert!(parse("qubits 1\nrx q[0], nan\n").is_err());
        assert!(parse("qubits 1\nrz q[0], pi/0\n").is_err());
    }

    #[test]
    fn cx_and_ccx_aliases() {
        let p = parse("qubits 3\ncx q[0], q[1]\nccx q[0], q[1], q[2]\n").unwrap();
        let ins = p.subcircuits()[0].instructions();
        assert!(matches!(&ins[0], Instruction::Gate(g) if g.kind == GateKind::Cnot));
        assert!(matches!(&ins[1], Instruction::Gate(g) if g.kind == GateKind::Toffoli));
    }

    #[test]
    fn measure_variants() {
        let p = parse("qubits 2\nmeasure q[0]\nmeasure_all\n").unwrap();
        let ins = p.subcircuits()[0].instructions();
        assert!(matches!(ins[0], Instruction::Measure(Qubit(0))));
        assert!(matches!(ins[1], Instruction::MeasureAll));
    }
}

#[cfg(test)]
mod error_model_tests {
    use super::*;

    #[test]
    fn parses_error_model_directive() {
        let p = parse("version 1.0\nqubits 2\nerror_model depolarizing_channel, 0.001\nh q[0]\n")
            .unwrap();
        let m = p.error_model().expect("model parsed");
        assert_eq!(m.name, "depolarizing_channel");
        assert_eq!(m.params, vec![0.001]);
    }

    #[test]
    fn roundtrips_through_the_writer() {
        let src = "version 1.0\nqubits 1\nerror_model depolarizing_channel, 0.01\nx q[0]\n";
        let p = parse(src).unwrap();
        let q = parse(&p.to_string()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn rejects_duplicates_and_garbage() {
        assert!(parse("qubits 1\nerror_model a, 1\nerror_model b, 2\n").is_err());
        assert!(parse("qubits 1\nerror_model depolarizing_channel, soup\n").is_err());
        assert!(parse("qubits 1\nerror_model\n").is_err());
    }

    #[test]
    fn multi_parameter_models() {
        let p = parse("qubits 1\nerror_model pauli_channel, 0.1, 0.2, 0.3\n").unwrap();
        assert_eq!(p.error_model().unwrap().params.len(), 3);
    }
}
