//! The cQASM gate set and its exact unitary semantics.
//!
//! The set mirrors the default OpenQL/QX gate library: the Pauli group,
//! Clifford phase gates, the `T` pair, the calibrated 90-degree rotations
//! used by the eQASM backends (`x90`, `y90`, `mx90`, `my90`), parameterised
//! rotations, and the standard two- and three-qubit entangling gates.

use crate::math::{Mat2, Mat4, C64};
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_2};
use std::fmt;

/// A gate from the cQASM gate library, including any rotation parameter.
///
/// `GateKind` identifies *which* operation is applied; the qubit operands
/// live in [`crate::GateApp`]. Parameterised variants carry their angle in
/// radians (or the exponent `k` for [`GateKind::CRk`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateKind {
    /// Identity (explicit wait of one gate slot on a qubit).
    I,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdag,
    /// `T = diag(1, e^{i pi/4})`.
    T,
    /// `T† = diag(1, e^{-i pi/4})`.
    Tdag,
    /// Calibrated +90 degree rotation about X (eQASM primitive).
    X90,
    /// Calibrated +90 degree rotation about Y (eQASM primitive).
    Y90,
    /// Calibrated -90 degree rotation about X (eQASM primitive).
    Mx90,
    /// Calibrated -90 degree rotation about Y (eQASM primitive).
    My90,
    /// Rotation about X by the given angle (radians).
    Rx(f64),
    /// Rotation about Y by the given angle (radians).
    Ry(f64),
    /// Rotation about Z by the given angle (radians).
    Rz(f64),
    /// Controlled-NOT; operand order is `control, target`.
    Cnot,
    /// Controlled-Z (symmetric in its operands).
    Cz,
    /// SWAP of two qubits.
    Swap,
    /// Controlled phase rotation by the given angle (radians).
    Cr(f64),
    /// Controlled phase rotation by `2*pi / 2^k` (the QFT primitive).
    CRk(u32),
    /// Toffoli (controlled-controlled-NOT); operands `c1, c2, target`.
    Toffoli,
}

/// The unitary action of a gate, in a form the simulator can apply directly.
#[derive(Debug, Clone, PartialEq)]
pub enum GateUnitary {
    /// A single-qubit unitary.
    One(Mat2),
    /// A two-qubit unitary in the basis `|q0 q1>` with the *first operand*
    /// as the most significant bit.
    Two(Mat4),
    /// A doubly-controlled single-qubit unitary (applied to the last
    /// operand when both control operands are `|1>`).
    ControlledControlled(Mat2),
}

/// Structural classification of a gate's unitary, used by simulators to
/// dispatch to specialised kernels instead of generic matrix multiplication.
///
/// Each variant carries exactly the data the corresponding kernel needs:
/// a diagonal gate is two complex multipliers, an anti-diagonal gate is a
/// swap with two multipliers, CNOT/SWAP are pure index permutations, and
/// CZ / controlled-phase touch only the `|11>` amplitudes. The `General*`
/// variants fall back to full matrix application and keep the
/// classification total over [`GateKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum KernelClass {
    /// The identity: no amplitude is touched.
    Identity,
    /// `diag(c0, c1)` on one qubit (Z, S, S†, T, T†, Rz).
    Diagonal1q(C64, C64),
    /// Anti-diagonal `[[0, c0], [c1, 0]]` on one qubit: the amplitude pair
    /// swaps, picking up `c0` on the `|0>` row and `c1` on the `|1>` row
    /// (X: `c0 = c1 = 1`; Y: `c0 = -i`, `c1 = i`).
    AntiDiagonal1q(C64, C64),
    /// Any other single-qubit unitary (H, X90, Rx, Ry, ...).
    General1q(Mat2),
    /// Controlled-NOT: swap the two target amplitudes where the control
    /// bit is set.
    Cnot,
    /// Controlled-Z: negate the `|11>` amplitudes.
    Cz,
    /// SWAP: exchange the `|01>` and `|10>` amplitudes.
    Swap,
    /// Controlled phase: multiply the `|11>` amplitudes by the phase
    /// (Cr and CRk).
    ControlledPhase(C64),
    /// Any other two-qubit unitary (none in the current library; kept so
    /// the classification stays total if the gate set grows).
    General2q(Mat4),
    /// Doubly-controlled single-qubit unitary (Toffoli).
    ControlledControlled(Mat2),
    /// A run of adjacent single-qubit gates on one qubit, collapsed by
    /// plan-level fusion into a single dense 2x2 applied in one sweep.
    /// Never produced by [`GateKind::kernel`].
    Fused1q(Mat2),
    /// A batch of consecutive diagonal / controlled-phase gates collapsed
    /// by plan-level fusion into one strided diagonal sweep over the union
    /// of their supports. Never produced by [`GateKind::kernel`].
    FusedDiag(FusedDiagonal),
    /// A cluster of gates sharing a small support, collapsed by plan-level
    /// fusion into one dense `2^k x 2^k` block applied per orbit. Never
    /// produced by [`GateKind::kernel`].
    FusedBlock(BlockUnitary),
    /// A layer of independent single-qubit unitaries on distinct qubits
    /// (factor `j` acts on the `j`-th operand), applied factored in one
    /// memory pass: same arithmetic as the separate gates, one sweep
    /// instead of one per gate. Never produced by [`GateKind::kernel`].
    Fused1qLayer(Vec<Mat2>),
}

/// The diagonal entries of a fused diagonal operator over `k` support
/// qubits. Entry `p` multiplies every amplitude whose support bits spell
/// the pattern `p`, where bit `j` of `p` is the state of the `j`-th
/// operand qubit (LSB-first, unlike [`Mat4`] which puts the first operand
/// in the most significant bit).
#[derive(Debug, Clone, PartialEq)]
pub struct FusedDiagonal {
    /// `2^k` diagonal entries, indexed by support-bit pattern.
    pub entries: Vec<C64>,
}

impl FusedDiagonal {
    /// Number of support qubits (`entries.len() == 2^k`).
    pub fn support(&self) -> usize {
        self.entries.len().trailing_zeros() as usize
    }
}

/// A dense fused unitary over `k` support qubits, stored row-major with
/// dimension `2^k`. Like [`FusedDiagonal`] the index convention is
/// LSB-first: bit `j` of a row/column index is the state of the `j`-th
/// operand qubit (the opposite of [`Mat4`]'s first-operand-is-high-bit).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockUnitary {
    /// Number of support qubits.
    pub k: usize,
    /// `2^k * 2^k` row-major entries.
    pub m: Vec<C64>,
}

impl BlockUnitary {
    /// The `2^k x 2^k` identity block.
    pub fn identity(k: usize) -> Self {
        let dim = 1usize << k;
        let mut m = vec![C64::ZERO; dim * dim];
        for r in 0..dim {
            m[r * dim + r] = C64::ONE;
        }
        BlockUnitary { k, m }
    }

    /// Matrix dimension `2^k`.
    pub fn dim(&self) -> usize {
        1usize << self.k
    }

    /// Dense product `self * rhs` (apply `rhs` first, then `self`).
    pub fn matmul(&self, rhs: &BlockUnitary) -> BlockUnitary {
        assert_eq!(self.k, rhs.k, "block dimension mismatch");
        let dim = self.dim();
        let mut m = vec![C64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                let mut acc = C64::ZERO;
                for j in 0..dim {
                    acc += self.m[r * dim + j] * rhs.m[j * dim + c];
                }
                m[r * dim + c] = acc;
            }
        }
        BlockUnitary { k: self.k, m }
    }

    /// Whether every entry is exactly the identity's (no tolerance): the
    /// fusion pass drops such blocks (e.g. `cnot; cnot`) entirely.
    pub fn is_exact_identity(&self) -> bool {
        let dim = self.dim();
        self.m.iter().enumerate().all(|(i, v)| {
            let (r, c) = (i / dim, i % dim);
            *v == if r == c { C64::ONE } else { C64::ZERO }
        })
    }
}

impl KernelClass {
    /// Number of structural kernel classes ([`KernelClass::class_index`]
    /// is dense over `0..COUNT`). Sized for dispatch histograms.
    pub const COUNT: usize = 14;

    /// A stable dense index identifying this class (parameters ignored),
    /// in `0..`[`KernelClass::COUNT`].
    pub fn class_index(&self) -> usize {
        match self {
            KernelClass::Identity => 0,
            KernelClass::Diagonal1q(..) => 1,
            KernelClass::AntiDiagonal1q(..) => 2,
            KernelClass::General1q(_) => 3,
            KernelClass::Cnot => 4,
            KernelClass::Cz => 5,
            KernelClass::Swap => 6,
            KernelClass::ControlledPhase(_) => 7,
            KernelClass::General2q(_) => 8,
            KernelClass::ControlledControlled(_) => 9,
            KernelClass::Fused1q(_) => 10,
            KernelClass::FusedDiag(_) => 11,
            KernelClass::FusedBlock(_) => 12,
            KernelClass::Fused1qLayer(_) => 13,
        }
    }

    /// The class name for a [`KernelClass::class_index`] value (the inverse
    /// of the index map, for labelling histogram buckets).
    pub fn class_name(index: usize) -> &'static str {
        match index {
            0 => "Identity",
            1 => "Diagonal1q",
            2 => "AntiDiagonal1q",
            3 => "General1q",
            4 => "Cnot",
            5 => "Cz",
            6 => "Swap",
            7 => "ControlledPhase",
            8 => "General2q",
            9 => "ControlledControlled",
            10 => "Fused1q",
            11 => "FusedDiag",
            12 => "FusedBlock",
            13 => "Fused1qLayer",
            _ => "Unknown",
        }
    }
}

/// The controlled-phase angle of `CRk(k)`: `2*pi / 2^k`, computed as
/// `2*pi * 2^-k` so arbitrarily large exponents underflow gracefully to a
/// zero angle instead of overflowing a shift. Exact for every `k` (scaling
/// by a power of two is exact in binary floating point).
fn crk_angle(k: u32) -> f64 {
    2.0 * std::f64::consts::PI * (-f64::from(k)).exp2()
}

impl GateKind {
    /// Number of qubit operands the gate takes.
    pub fn arity(&self) -> usize {
        use GateKind::*;
        match self {
            I | H | X | Y | Z | S | Sdag | T | Tdag | X90 | Y90 | Mx90 | My90 | Rx(_) | Ry(_)
            | Rz(_) => 1,
            Cnot | Cz | Swap | Cr(_) | CRk(_) => 2,
            Toffoli => 3,
        }
    }

    /// The lower-case cQASM mnemonic (without operands or parameters).
    pub fn mnemonic(&self) -> &'static str {
        use GateKind::*;
        match self {
            I => "i",
            H => "h",
            X => "x",
            Y => "y",
            Z => "z",
            S => "s",
            Sdag => "sdag",
            T => "t",
            Tdag => "tdag",
            X90 => "x90",
            Y90 => "y90",
            Mx90 => "mx90",
            My90 => "my90",
            Rx(_) => "rx",
            Ry(_) => "ry",
            Rz(_) => "rz",
            Cnot => "cnot",
            Cz => "cz",
            Swap => "swap",
            Cr(_) => "cr",
            CRk(_) => "crk",
            Toffoli => "toffoli",
        }
    }

    /// The rotation angle parameter, if the gate has one.
    pub fn angle(&self) -> Option<f64> {
        use GateKind::*;
        match self {
            Rx(a) | Ry(a) | Rz(a) | Cr(a) => Some(*a),
            CRk(k) => Some(crk_angle(*k)),
            _ => None,
        }
    }

    /// The inverse gate (`U†`).
    ///
    /// Every gate in the library has its inverse in the library, which the
    /// compiler relies on for uncomputation and optimisation.
    pub fn dagger(&self) -> GateKind {
        use GateKind::*;
        match *self {
            S => Sdag,
            Sdag => S,
            T => Tdag,
            Tdag => T,
            X90 => Mx90,
            Mx90 => X90,
            Y90 => My90,
            My90 => Y90,
            Rx(a) => Rx(-a),
            Ry(a) => Ry(-a),
            Rz(a) => Rz(-a),
            Cr(a) => Cr(-a),
            CRk(k) => Cr(-crk_angle(k)),
            g => g, // self-inverse: I, H, X, Y, Z, CNOT, CZ, SWAP, Toffoli
        }
    }

    /// Whether the gate is diagonal in the computational basis.
    ///
    /// Diagonal gates commute with each other and with measurements in the
    /// Z basis; the optimiser exploits this.
    pub fn is_diagonal(&self) -> bool {
        use GateKind::*;
        matches!(
            self,
            I | Z | S | Sdag | T | Tdag | Rz(_) | Cz | Cr(_) | CRk(_)
        )
    }

    /// Whether the gate is a member of the Clifford group.
    pub fn is_clifford(&self) -> bool {
        use GateKind::*;
        matches!(
            self,
            I | H | X | Y | Z | S | Sdag | X90 | Y90 | Mx90 | My90 | Cnot | Cz | Swap
        )
    }

    /// Whether the gate acts on two or more qubits.
    pub fn is_multi_qubit(&self) -> bool {
        self.arity() > 1
    }

    /// The exact unitary of the gate.
    pub fn unitary(&self) -> GateUnitary {
        use GateKind::*;
        let s = C64::real(FRAC_1_SQRT_2);
        match *self {
            I => GateUnitary::One(Mat2::identity()),
            H => GateUnitary::One(Mat2([[s, s], [s, -s]])),
            X => GateUnitary::One(Mat2([[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]])),
            Y => GateUnitary::One(Mat2([[C64::ZERO, -C64::I], [C64::I, C64::ZERO]])),
            Z => GateUnitary::One(Mat2([[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]])),
            S => GateUnitary::One(Mat2([[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]])),
            Sdag => GateUnitary::One(Mat2([[C64::ONE, C64::ZERO], [C64::ZERO, -C64::I]])),
            T => GateUnitary::One(Mat2([
                [C64::ONE, C64::ZERO],
                [C64::ZERO, C64::cis(std::f64::consts::FRAC_PI_4)],
            ])),
            Tdag => GateUnitary::One(Mat2([
                [C64::ONE, C64::ZERO],
                [C64::ZERO, C64::cis(-std::f64::consts::FRAC_PI_4)],
            ])),
            X90 => rotation_x(FRAC_PI_2),
            Mx90 => rotation_x(-FRAC_PI_2),
            Y90 => rotation_y(FRAC_PI_2),
            My90 => rotation_y(-FRAC_PI_2),
            Rx(a) => rotation_x(a),
            Ry(a) => rotation_y(a),
            Rz(a) => rotation_z(a),
            Cnot => {
                let mut m = Mat4::identity();
                m.0[2][2] = C64::ZERO;
                m.0[3][3] = C64::ZERO;
                m.0[2][3] = C64::ONE;
                m.0[3][2] = C64::ONE;
                GateUnitary::Two(m)
            }
            Cz => {
                let mut m = Mat4::identity();
                m.0[3][3] = -C64::ONE;
                GateUnitary::Two(m)
            }
            Swap => {
                let mut m = Mat4::identity();
                m.0[1][1] = C64::ZERO;
                m.0[2][2] = C64::ZERO;
                m.0[1][2] = C64::ONE;
                m.0[2][1] = C64::ONE;
                GateUnitary::Two(m)
            }
            Cr(a) => {
                let mut m = Mat4::identity();
                m.0[3][3] = C64::cis(a);
                GateUnitary::Two(m)
            }
            CRk(k) => {
                let mut m = Mat4::identity();
                m.0[3][3] = C64::cis(crk_angle(k));
                GateUnitary::Two(m)
            }
            Toffoli => GateUnitary::ControlledControlled(Mat2([
                [C64::ZERO, C64::ONE],
                [C64::ONE, C64::ZERO],
            ])),
        }
    }

    /// Classifies the gate's unitary for kernel dispatch.
    ///
    /// The returned [`KernelClass`] is exactly equivalent to
    /// [`GateKind::unitary`] — specialised variants are only emitted when
    /// the structure is exact (no floating-point tolerance is involved), so
    /// a simulator may apply either form interchangeably.
    pub fn kernel(&self) -> KernelClass {
        use GateKind::*;
        match *self {
            I => KernelClass::Identity,
            X => KernelClass::AntiDiagonal1q(C64::ONE, C64::ONE),
            Y => KernelClass::AntiDiagonal1q(-C64::I, C64::I),
            Z => KernelClass::Diagonal1q(C64::ONE, -C64::ONE),
            S => KernelClass::Diagonal1q(C64::ONE, C64::I),
            Sdag => KernelClass::Diagonal1q(C64::ONE, -C64::I),
            T => KernelClass::Diagonal1q(C64::ONE, C64::cis(std::f64::consts::FRAC_PI_4)),
            Tdag => KernelClass::Diagonal1q(C64::ONE, C64::cis(-std::f64::consts::FRAC_PI_4)),
            Rz(a) => KernelClass::Diagonal1q(C64::cis(-a / 2.0), C64::cis(a / 2.0)),
            Cnot => KernelClass::Cnot,
            Cz => KernelClass::Cz,
            Swap => KernelClass::Swap,
            Cr(a) => KernelClass::ControlledPhase(C64::cis(a)),
            CRk(k) => KernelClass::ControlledPhase(C64::cis(crk_angle(k))),
            _ => match self.unitary() {
                GateUnitary::One(m) => KernelClass::General1q(m),
                GateUnitary::Two(m) => KernelClass::General2q(m),
                GateUnitary::ControlledControlled(m) => KernelClass::ControlledControlled(m),
            },
        }
    }
}

fn rotation_x(a: f64) -> GateUnitary {
    let c = C64::real((a / 2.0).cos());
    let s = C64::new(0.0, -(a / 2.0).sin());
    GateUnitary::One(Mat2([[c, s], [s, c]]))
}

fn rotation_y(a: f64) -> GateUnitary {
    let c = C64::real((a / 2.0).cos());
    let s = C64::real((a / 2.0).sin());
    GateUnitary::One(Mat2([[c, -s], [s, c]]))
}

fn rotation_z(a: f64) -> GateUnitary {
    GateUnitary::One(Mat2([
        [C64::cis(-a / 2.0), C64::ZERO],
        [C64::ZERO, C64::cis(a / 2.0)],
    ]))
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn mat2_of(g: GateKind) -> Mat2 {
        match g.unitary() {
            GateUnitary::One(m) => m,
            other => panic!("expected single-qubit unitary, got {other:?}"),
        }
    }

    fn mat4_of(g: GateKind) -> Mat4 {
        match g.unitary() {
            GateUnitary::Two(m) => m,
            other => panic!("expected two-qubit unitary, got {other:?}"),
        }
    }

    #[test]
    fn all_gates_are_unitary() {
        let gates = [
            GateKind::I,
            GateKind::H,
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::S,
            GateKind::Sdag,
            GateKind::T,
            GateKind::Tdag,
            GateKind::X90,
            GateKind::Y90,
            GateKind::Mx90,
            GateKind::My90,
            GateKind::Rx(0.37),
            GateKind::Ry(1.2),
            GateKind::Rz(-2.5),
            GateKind::Cnot,
            GateKind::Cz,
            GateKind::Swap,
            GateKind::Cr(0.7),
            GateKind::CRk(3),
            GateKind::Toffoli,
        ];
        for g in gates {
            match g.unitary() {
                GateUnitary::One(m) => assert!(m.is_unitary(), "{g} not unitary"),
                GateUnitary::Two(m) => assert!(m.is_unitary(), "{g} not unitary"),
                GateUnitary::ControlledControlled(m) => {
                    assert!(m.is_unitary(), "{g} not unitary")
                }
            }
        }
    }

    #[test]
    fn dagger_inverts_every_single_qubit_gate() {
        let gates = [
            GateKind::I,
            GateKind::H,
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::S,
            GateKind::Sdag,
            GateKind::T,
            GateKind::Tdag,
            GateKind::X90,
            GateKind::Y90,
            GateKind::Mx90,
            GateKind::My90,
            GateKind::Rx(0.9),
            GateKind::Ry(0.4),
            GateKind::Rz(2.2),
        ];
        for g in gates {
            let u = mat2_of(g);
            let v = mat2_of(g.dagger());
            assert!(
                u.matmul(&v).approx_eq(&Mat2::identity()),
                "{g} dagger failed"
            );
        }
    }

    #[test]
    fn x90_squared_is_x_up_to_phase() {
        let x90 = mat2_of(GateKind::X90);
        let x = mat2_of(GateKind::X);
        assert!(x90.matmul(&x90).approx_eq_up_to_phase(&x));
    }

    #[test]
    fn hzh_equals_x() {
        let h = mat2_of(GateKind::H);
        let z = mat2_of(GateKind::Z);
        let x = mat2_of(GateKind::X);
        assert!(h.matmul(&z).matmul(&h).approx_eq(&x));
    }

    #[test]
    fn s_is_t_squared() {
        let t = mat2_of(GateKind::T);
        let s = mat2_of(GateKind::S);
        assert!(t.matmul(&t).approx_eq(&s));
    }

    #[test]
    fn rz_pi_is_z_up_to_phase() {
        let rz = mat2_of(GateKind::Rz(PI));
        let z = mat2_of(GateKind::Z);
        assert!(rz.approx_eq_up_to_phase(&z));
    }

    #[test]
    fn crk_matches_cr() {
        let crk = mat4_of(GateKind::CRk(2));
        let cr = mat4_of(GateKind::Cr(PI / 2.0));
        assert!(crk.approx_eq(&cr));
    }

    #[test]
    fn cnot_action_on_basis() {
        let m = mat4_of(GateKind::Cnot);
        // |10> -> |11>
        assert_eq!(m.0[3][2], C64::ONE);
        // |11> -> |10>
        assert_eq!(m.0[2][3], C64::ONE);
        // |00>, |01> fixed.
        assert_eq!(m.0[0][0], C64::ONE);
        assert_eq!(m.0[1][1], C64::ONE);
    }

    #[test]
    fn swap_is_self_inverse() {
        let m = mat4_of(GateKind::Swap);
        assert!(m.matmul(&m).approx_eq(&Mat4::identity()));
    }

    #[test]
    fn arity_and_mnemonics() {
        assert_eq!(GateKind::H.arity(), 1);
        assert_eq!(GateKind::Cnot.arity(), 2);
        assert_eq!(GateKind::Toffoli.arity(), 3);
        assert_eq!(GateKind::Rx(1.0).mnemonic(), "rx");
        assert_eq!(GateKind::CRk(4).mnemonic(), "crk");
    }

    #[test]
    fn clifford_and_diagonal_classification() {
        assert!(GateKind::H.is_clifford());
        assert!(GateKind::Cnot.is_clifford());
        assert!(!GateKind::T.is_clifford());
        assert!(!GateKind::Toffoli.is_clifford());
        assert!(GateKind::Rz(0.3).is_diagonal());
        assert!(GateKind::Cz.is_diagonal());
        assert!(!GateKind::Rx(0.3).is_diagonal());
    }

    #[test]
    fn kernel_class_agrees_with_unitary() {
        // Every specialised kernel class, reconstructed as a dense matrix,
        // must equal the gate's unitary exactly (same constants, not just
        // approximately).
        let gates = [
            GateKind::I,
            GateKind::H,
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::S,
            GateKind::Sdag,
            GateKind::T,
            GateKind::Tdag,
            GateKind::X90,
            GateKind::Y90,
            GateKind::Mx90,
            GateKind::My90,
            GateKind::Rx(0.37),
            GateKind::Ry(1.2),
            GateKind::Rz(-2.5),
            GateKind::Cnot,
            GateKind::Cz,
            GateKind::Swap,
            GateKind::Cr(0.7),
            GateKind::CRk(3),
            GateKind::Toffoli,
        ];
        for g in gates {
            let dense = match g.kernel() {
                KernelClass::Identity => GateUnitary::One(Mat2::identity()),
                KernelClass::Diagonal1q(c0, c1) => {
                    GateUnitary::One(Mat2([[c0, C64::ZERO], [C64::ZERO, c1]]))
                }
                KernelClass::AntiDiagonal1q(c0, c1) => {
                    GateUnitary::One(Mat2([[C64::ZERO, c0], [c1, C64::ZERO]]))
                }
                KernelClass::General1q(m) => GateUnitary::One(m),
                KernelClass::Cnot => GateKind::Cnot.unitary(),
                KernelClass::Cz => GateKind::Cz.unitary(),
                KernelClass::Swap => GateKind::Swap.unitary(),
                KernelClass::ControlledPhase(p) => {
                    let mut m = Mat4::identity();
                    m.0[3][3] = p;
                    GateUnitary::Two(m)
                }
                KernelClass::General2q(m) => GateUnitary::Two(m),
                KernelClass::ControlledControlled(m) => GateUnitary::ControlledControlled(m),
                KernelClass::Fused1q(_)
                | KernelClass::FusedDiag(_)
                | KernelClass::FusedBlock(_)
                | KernelClass::Fused1qLayer(_) => {
                    unreachable!("fused kernels only come from plan-level fusion, not GateKind")
                }
            };
            assert_eq!(dense, g.unitary(), "kernel class of {g} disagrees");
        }
    }

    #[test]
    fn kernel_class_specialises_the_common_gates() {
        assert!(matches!(
            GateKind::X.kernel(),
            KernelClass::AntiDiagonal1q(..)
        ));
        assert!(matches!(
            GateKind::Rz(0.3).kernel(),
            KernelClass::Diagonal1q(..)
        ));
        assert!(matches!(GateKind::Cnot.kernel(), KernelClass::Cnot));
        assert!(matches!(GateKind::Cz.kernel(), KernelClass::Cz));
        assert!(matches!(GateKind::Swap.kernel(), KernelClass::Swap));
        assert!(matches!(
            GateKind::Cr(1.0).kernel(),
            KernelClass::ControlledPhase(_)
        ));
        assert!(matches!(GateKind::H.kernel(), KernelClass::General1q(_)));
        assert!(matches!(
            GateKind::Toffoli.kernel(),
            KernelClass::ControlledControlled(_)
        ));
    }

    #[test]
    fn angle_reporting() {
        assert_eq!(GateKind::Rx(1.5).angle(), Some(1.5));
        let crk = GateKind::CRk(1).angle().expect("crk has angle");
        assert!((crk - PI).abs() < 1e-12);
        assert_eq!(GateKind::H.angle(), None);
    }

    #[test]
    fn huge_crk_exponent_underflows_instead_of_overflowing() {
        // k >= 64 used to overflow a `1u64 << k` shift; now the angle
        // underflows towards zero and the gate degenerates to (near-)
        // identity — still unitary, never an abort.
        for k in [63, 64, 200, u32::MAX] {
            let a = GateKind::CRk(k).angle().expect("crk has angle");
            assert!(a.is_finite() && a >= 0.0);
            match GateKind::CRk(k).unitary() {
                GateUnitary::Two(m) => assert!(m.is_unitary()),
                other => panic!("unexpected {other:?}"),
            }
            // dagger and kernel also stay total.
            let _ = GateKind::CRk(k).dagger();
            let _ = GateKind::CRk(k).kernel();
        }
        // Exactness is preserved for small k.
        let a2 = GateKind::CRk(2).angle().unwrap();
        assert_eq!(a2, PI / 2.0);
    }
}
