//! Circuit statistics: gate counts and depth, used by the compiler reports
//! and the experiment harness.

use crate::instruction::Instruction;
use crate::program::Program;
use std::fmt;

/// Summary statistics of a (flattened) program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Total unitary gate applications (bundles expanded, conditionals
    /// counted).
    pub gates: usize,
    /// Gates acting on a single qubit.
    pub single_qubit_gates: usize,
    /// Gates acting on exactly two qubits.
    pub two_qubit_gates: usize,
    /// Gates acting on three or more qubits.
    pub multi_qubit_gates: usize,
    /// Measurement operations (`measure_all` counts as one per qubit).
    pub measurements: usize,
    /// State preparations.
    pub preparations: usize,
    /// Circuit depth in *logical time steps*: each bundle is one step, each
    /// stand-alone instruction is one step, repeated per subcircuit
    /// iteration.
    pub depth: usize,
}

impl CircuitStats {
    /// Computes the statistics of a program.
    pub fn of(program: &Program) -> Self {
        let mut s = CircuitStats::default();
        for ins in program.flat_instructions() {
            s.absorb(ins, program.qubit_count());
            s.depth += 1;
        }
        s
    }

    fn absorb(&mut self, ins: &Instruction, qubit_count: usize) {
        match ins {
            Instruction::Gate(g) | Instruction::Cond(_, g) => {
                self.gates += 1;
                match g.kind.arity() {
                    1 => self.single_qubit_gates += 1,
                    2 => self.two_qubit_gates += 1,
                    _ => self.multi_qubit_gates += 1,
                }
            }
            Instruction::Measure(_) => self.measurements += 1,
            Instruction::MeasureAll => self.measurements += qubit_count,
            Instruction::PrepZ(_) => self.preparations += 1,
            Instruction::Bundle(instrs) => {
                for inner in instrs {
                    self.absorb(inner, qubit_count);
                }
            }
            Instruction::Wait(_) | Instruction::Display => {}
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gates={} (1q={}, 2q={}, 3q+={}), measurements={}, preps={}, depth={}",
            self.gates,
            self.single_qubit_gates,
            self.two_qubit_gates,
            self.multi_qubit_gates,
            self.measurements,
            self.preparations,
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::program::Subcircuit;

    #[test]
    fn counts_by_arity() {
        let p = Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::Toffoli, &[0, 1, 2])
            .measure_all()
            .build();
        let s = p.stats();
        assert_eq!(s.gates, 3);
        assert_eq!(s.single_qubit_gates, 1);
        assert_eq!(s.two_qubit_gates, 1);
        assert_eq!(s.multi_qubit_gates, 1);
        assert_eq!(s.measurements, 3);
        assert_eq!(s.depth, 4);
    }

    #[test]
    fn bundle_counts_gates_but_one_depth_step() {
        let p = Program::builder(2)
            .instruction(Instruction::Bundle(vec![
                Instruction::gate(GateKind::X, &[0]),
                Instruction::gate(GateKind::Y, &[1]),
            ]))
            .build();
        let s = p.stats();
        assert_eq!(s.gates, 2);
        assert_eq!(s.depth, 1);
    }

    #[test]
    fn iterations_multiply_counts() {
        let mut p = Program::new(1);
        let mut sub = Subcircuit::with_iterations("loop", 4);
        sub.push(Instruction::gate(GateKind::X, &[0]));
        p.push_subcircuit(sub);
        let s = p.stats();
        assert_eq!(s.gates, 4);
        assert_eq!(s.depth, 4);
    }

    #[test]
    fn display_is_nonempty() {
        let p = Program::builder(1).gate(GateKind::X, &[0]).build();
        assert!(p.stats().to_string().contains("gates=1"));
    }
}
