//! # cQASM — the common quantum assembly language
//!
//! This crate implements the *common QASM* layer of the full-stack quantum
//! accelerator described in Bertels et al., *"Quantum Computer Architecture:
//! Towards Full-Stack Quantum Accelerators"* (DATE 2020). cQASM is the
//! technology-independent instruction set produced by the OpenQL compiler and
//! consumed by both the QX simulator and the eQASM backend pass.
//!
//! The crate provides:
//!
//! - a typed in-memory representation ([`Program`], [`Subcircuit`],
//!   [`Instruction`], [`GateKind`]);
//! - exact gate semantics ([`GateKind::unitary`]) over a small self-contained
//!   complex/matrix kernel ([`math`]);
//! - a text parser ([`Program::parse`]) and printer (`Display`) that
//!   round-trip;
//! - semantic validation ([`Program::validate`]) and circuit statistics
//!   ([`Program::stats`]).
//!
//! # Example
//!
//! ```
//! use cqasm::Program;
//!
//! # fn main() -> Result<(), cqasm::Error> {
//! let src = "\
//! version 1.0
//! qubits 2
//! .bell
//!   h q[0]
//!   cnot q[0], q[1]
//!   measure q[0]
//!   measure q[1]
//! ";
//! let program = Program::parse(src)?;
//! assert_eq!(program.qubit_count(), 2);
//! assert_eq!(program.subcircuits().len(), 1);
//! // Printing and re-parsing yields the same program.
//! let reprinted = Program::parse(&program.to_string())?;
//! assert_eq!(program, reprinted);
//! # Ok(())
//! # }
//! ```

// Library paths must return typed errors, never abort (CI gates these
// lints); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod error;
pub mod gate;
pub mod instruction;
pub mod math;
pub mod parser;
pub mod program;
pub mod stats;
pub mod writer;

pub use error::Error;
pub use gate::{BlockUnitary, FusedDiagonal, GateKind, GateUnitary, KernelClass};
pub use instruction::{Bit, GateApp, Instruction, Qubit};
pub use program::{
    ErrorModelSpec, Program, ProgramBuilder, Subcircuit, MAX_ITERATIONS, MAX_WAIT_CYCLES,
};
pub use stats::CircuitStats;
