//! Programs and subcircuits: the top-level cQASM containers.

use crate::error::Error;
use crate::instruction::{Bit, GateApp, Instruction, Qubit};
use crate::stats::CircuitStats;
use std::fmt;

/// Largest `wait` cycle count [`Program::validate`] accepts. Bounds the
/// work any single instruction can demand from a scheduler or executor, so
/// a corrupted program cannot stall the stack with a near-infinite idle
/// loop.
pub const MAX_WAIT_CYCLES: u64 = 1_000_000;

/// Largest subcircuit iteration count [`Program::validate`] accepts.
/// Bounds the flattened program size.
pub const MAX_ITERATIONS: u64 = 1_000_000;

/// A named subcircuit (`.name` or `.name(iterations)` in the text syntax).
#[derive(Debug, Clone, PartialEq)]
pub struct Subcircuit {
    name: String,
    iterations: u64,
    instructions: Vec<Instruction>,
}

impl Subcircuit {
    /// Creates an empty subcircuit executed once.
    pub fn new(name: impl Into<String>) -> Self {
        Subcircuit {
            name: name.into(),
            iterations: 1,
            instructions: Vec::new(),
        }
    }

    /// Creates an empty subcircuit repeated `iterations` times.
    pub fn with_iterations(name: impl Into<String>, iterations: u64) -> Self {
        Subcircuit {
            name: name.into(),
            iterations,
            instructions: Vec::new(),
        }
    }

    /// The subcircuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many times the executor repeats this subcircuit.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Mutable access to the instruction sequence (used by compiler passes).
    pub fn instructions_mut(&mut self) -> &mut Vec<Instruction> {
        &mut self.instructions
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }
}

impl Extend<Instruction> for Subcircuit {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

/// A complete cQASM program: a version banner, a qubit count, and a list of
/// subcircuits.
///
/// Construct programs either with [`Program::parse`] from text, or
/// programmatically with [`Program::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    version: String,
    qubit_count: usize,
    subcircuits: Vec<Subcircuit>,
    error_model: Option<ErrorModelSpec>,
}

/// An `error_model` directive: the QX convention of configuring the
/// simulator's noise from inside the assembly file
/// (e.g. `error_model depolarizing_channel, 0.001`).
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorModelSpec {
    /// Model name (e.g. `depolarizing_channel`).
    pub name: String,
    /// Numeric parameters.
    pub params: Vec<f64>,
}

impl Program {
    /// Creates an empty program over `qubit_count` qubits (version `1.0`).
    pub fn new(qubit_count: usize) -> Self {
        Program {
            version: "1.0".to_owned(),
            qubit_count,
            subcircuits: Vec::new(),
            error_model: None,
        }
    }

    /// The `error_model` directive, if the program declares one.
    pub fn error_model(&self) -> Option<&ErrorModelSpec> {
        self.error_model.as_ref()
    }

    /// Sets or clears the `error_model` directive.
    pub fn set_error_model(&mut self, model: Option<ErrorModelSpec>) {
        self.error_model = model;
    }

    /// Starts a fluent builder for programmatic construction.
    ///
    /// # Example
    ///
    /// ```
    /// use cqasm::{GateKind, Program};
    ///
    /// let p = Program::builder(2)
    ///     .subcircuit("bell")
    ///     .gate(GateKind::H, &[0])
    ///     .gate(GateKind::Cnot, &[0, 1])
    ///     .measure_all()
    ///     .build();
    /// assert_eq!(p.stats().two_qubit_gates, 1);
    /// ```
    pub fn builder(qubit_count: usize) -> ProgramBuilder {
        ProgramBuilder {
            program: Program::new(qubit_count),
        }
    }

    /// Parses a cQASM source text. See [`crate::parser`] for the grammar.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] on malformed text and [`Error::Validate`] if
    /// the parsed program is semantically invalid.
    pub fn parse(src: &str) -> Result<Self, Error> {
        let p = crate::parser::parse(src)?;
        p.validate()?;
        Ok(p)
    }

    /// The version banner (normally `"1.0"`).
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Sets the version banner.
    pub fn set_version(&mut self, version: impl Into<String>) {
        self.version = version.into();
    }

    /// Number of qubits the program addresses.
    pub fn qubit_count(&self) -> usize {
        self.qubit_count
    }

    /// The subcircuits in program order.
    pub fn subcircuits(&self) -> &[Subcircuit] {
        &self.subcircuits
    }

    /// Mutable access to the subcircuits (used by compiler passes).
    pub fn subcircuits_mut(&mut self) -> &mut Vec<Subcircuit> {
        &mut self.subcircuits
    }

    /// Appends a subcircuit.
    pub fn push_subcircuit(&mut self, sub: Subcircuit) {
        self.subcircuits.push(sub);
    }

    /// Iterates over every instruction of every subcircuit, expanding
    /// iteration counts (a subcircuit with `iterations = n` contributes its
    /// body `n` times).
    pub fn flat_instructions(&self) -> impl Iterator<Item = &Instruction> + '_ {
        self.subcircuits
            .iter()
            .flat_map(|s| std::iter::repeat_n(s.instructions(), s.iterations() as usize).flatten())
    }

    /// Checks semantic validity: qubit indices in range, non-empty bundles
    /// with disjoint operand sets, classical bit indices in range.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Validate`] describing the first problem found.
    pub fn validate(&self) -> Result<(), Error> {
        for sub in &self.subcircuits {
            if sub.iterations() > MAX_ITERATIONS {
                return Err(Error::validate(format!(
                    "subcircuit `{}` iterates {} times (maximum {MAX_ITERATIONS})",
                    sub.name(),
                    sub.iterations()
                )));
            }
            for ins in sub.instructions() {
                self.validate_instruction(ins, sub.name())?;
            }
        }
        Ok(())
    }

    fn validate_instruction(&self, ins: &Instruction, sub: &str) -> Result<(), Error> {
        let check_qubit = |q: Qubit| -> Result<(), Error> {
            if q.index() >= self.qubit_count {
                return Err(Error::validate(format!(
                    "qubit index {} out of range (program has {} qubits) in subcircuit `{sub}`",
                    q.index(),
                    self.qubit_count
                )));
            }
            Ok(())
        };
        match ins {
            Instruction::Bundle(instrs) => {
                if instrs.is_empty() {
                    return Err(Error::validate(format!(
                        "empty bundle in subcircuit `{sub}`"
                    )));
                }
                let mut seen: Vec<Qubit> = Vec::new();
                for inner in instrs {
                    if matches!(inner, Instruction::Bundle(_)) {
                        return Err(Error::validate(format!(
                            "nested bundle in subcircuit `{sub}`"
                        )));
                    }
                    self.validate_instruction(inner, sub)?;
                    for q in inner.qubits() {
                        if seen.contains(&q) {
                            return Err(Error::validate(format!(
                                "qubit {q} used twice within one bundle in subcircuit `{sub}`"
                            )));
                        }
                        seen.push(q);
                    }
                }
                Ok(())
            }
            Instruction::Cond(bit, g) => {
                if bit.index() >= self.qubit_count {
                    return Err(Error::validate(format!(
                        "bit index {} out of range (program has {} bits) in subcircuit `{sub}`",
                        bit.index(),
                        self.qubit_count
                    )));
                }
                let distinct = distinct_operands(&g.qubits);
                if !distinct {
                    return Err(Error::validate(format!(
                        "repeated operand in `{ins}` in subcircuit `{sub}`"
                    )));
                }
                g.qubits.iter().try_for_each(|q| check_qubit(*q))
            }
            Instruction::Gate(g) => {
                if !distinct_operands(&g.qubits) {
                    return Err(Error::validate(format!(
                        "repeated operand in `{ins}` in subcircuit `{sub}`"
                    )));
                }
                g.qubits.iter().try_for_each(|q| check_qubit(*q))
            }
            Instruction::Wait(cycles) => {
                if *cycles > MAX_WAIT_CYCLES {
                    return Err(Error::validate(format!(
                        "wait of {cycles} cycles exceeds maximum {MAX_WAIT_CYCLES} \
                         in subcircuit `{sub}`"
                    )));
                }
                Ok(())
            }
            other => other.qubits().into_iter().try_for_each(check_qubit),
        }
    }

    /// Computes gate-count / depth statistics over the flattened program.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::of(self)
    }
}

fn distinct_operands(qs: &[Qubit]) -> bool {
    for (i, a) in qs.iter().enumerate() {
        if qs[i + 1..].contains(a) {
            return false;
        }
    }
    true
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::writer::write_program(self, f)
    }
}

/// Fluent builder returned by [`Program::builder`].
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Opens a new subcircuit; subsequent instructions go into it.
    pub fn subcircuit(mut self, name: impl Into<String>) -> Self {
        self.program.push_subcircuit(Subcircuit::new(name));
        self
    }

    /// Opens a new subcircuit repeated `iterations` times.
    pub fn subcircuit_iterated(mut self, name: impl Into<String>, iterations: u64) -> Self {
        self.program
            .push_subcircuit(Subcircuit::with_iterations(name, iterations));
        self
    }

    fn current(&mut self) -> &mut Subcircuit {
        if self.program.subcircuits.is_empty() {
            self.program.push_subcircuit(Subcircuit::new("main"));
        }
        let last = self.program.subcircuits.len() - 1;
        &mut self.program.subcircuits[last]
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the gate arity.
    pub fn gate(mut self, kind: crate::GateKind, qubits: &[usize]) -> Self {
        self.current().push(Instruction::gate(kind, qubits));
        self
    }

    /// Appends an arbitrary instruction.
    pub fn instruction(mut self, ins: Instruction) -> Self {
        self.current().push(ins);
        self
    }

    /// Appends a gate conditioned on classical bit `bit` being one.
    pub fn cond(mut self, bit: usize, kind: crate::GateKind, qubits: &[usize]) -> Self {
        let app = GateApp::new(kind, qubits.iter().map(|&q| Qubit(q)).collect());
        self.current().push(Instruction::Cond(Bit(bit), app));
        self
    }

    /// Appends `prep_z` on a qubit.
    pub fn prep_z(mut self, qubit: usize) -> Self {
        self.current().push(Instruction::PrepZ(Qubit(qubit)));
        self
    }

    /// Appends a measurement of one qubit.
    pub fn measure(mut self, qubit: usize) -> Self {
        self.current().push(Instruction::Measure(Qubit(qubit)));
        self
    }

    /// Appends a measurement of all qubits.
    pub fn measure_all(mut self) -> Self {
        self.current().push(Instruction::MeasureAll);
        self
    }

    /// Finishes building, returning a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Validate`] if the constructed program fails
    /// validation (e.g. an out-of-range qubit index).
    pub fn try_build(self) -> Result<Program, Error> {
        self.program.validate()?;
        Ok(self.program)
    }

    /// Finishes building.
    ///
    /// # Panics
    ///
    /// Panics if the constructed program fails validation; the builder API
    /// is typed, so this only happens on out-of-range qubit indices. Use
    /// [`ProgramBuilder::try_build`] for a fallible variant.
    // The panic here is the documented contract of this convenience API;
    // fallible callers use `try_build`.
    #[allow(clippy::expect_used)]
    pub fn build(self) -> Program {
        self.try_build()
            .expect("builder produced an invalid program")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    #[test]
    fn builder_roundtrip() {
        let p = Program::builder(3)
            .subcircuit("init")
            .prep_z(0)
            .prep_z(1)
            .subcircuit("body")
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build();
        assert_eq!(p.subcircuits().len(), 2);
        assert_eq!(p.subcircuits()[1].name(), "body");
        assert_eq!(p.flat_instructions().count(), 5);
    }

    #[test]
    fn builder_creates_default_subcircuit() {
        let p = Program::builder(1).gate(GateKind::X, &[0]).build();
        assert_eq!(p.subcircuits()[0].name(), "main");
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let mut p = Program::new(2);
        let mut s = Subcircuit::new("s");
        s.push(Instruction::gate(GateKind::H, &[5]));
        p.push_subcircuit(s);
        assert!(matches!(p.validate(), Err(Error::Validate { .. })));
    }

    #[test]
    fn validation_rejects_overlapping_bundle() {
        let mut p = Program::new(2);
        let mut s = Subcircuit::new("s");
        s.push(Instruction::Bundle(vec![
            Instruction::gate(GateKind::X, &[0]),
            Instruction::gate(GateKind::Y, &[0]),
        ]));
        p.push_subcircuit(s);
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn validation_rejects_nested_bundle() {
        let mut p = Program::new(2);
        let mut s = Subcircuit::new("s");
        s.push(Instruction::Bundle(vec![Instruction::Bundle(vec![
            Instruction::gate(GateKind::X, &[0]),
        ])]));
        p.push_subcircuit(s);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_repeated_operand() {
        let mut p = Program::new(2);
        let mut s = Subcircuit::new("s");
        s.instructions_mut()
            .push(Instruction::Gate(crate::instruction::GateApp {
                kind: GateKind::Cnot,
                qubits: vec![Qubit(1), Qubit(1)],
            }));
        p.push_subcircuit(s);
        assert!(p.validate().is_err());
    }

    #[test]
    fn try_build_returns_typed_error() {
        let b = Program::builder(1).gate(GateKind::H, &[0]);
        assert!(b.try_build().is_ok());
        let mut p = Program::new(1);
        let mut s = Subcircuit::new("s");
        s.push(Instruction::gate(GateKind::H, &[7]));
        p.push_subcircuit(s);
        let b = ProgramBuilder { program: p };
        assert!(matches!(b.try_build(), Err(Error::Validate { .. })));
    }

    #[test]
    fn validation_caps_wait_and_iterations() {
        let mut p = Program::new(1);
        let mut s = Subcircuit::new("s");
        s.push(Instruction::Wait(MAX_WAIT_CYCLES + 1));
        p.push_subcircuit(s);
        let e = p.validate().unwrap_err();
        assert!(e.to_string().contains("wait"));

        let mut p = Program::new(1);
        p.push_subcircuit(Subcircuit::with_iterations("loop", MAX_ITERATIONS + 1));
        let e = p.validate().unwrap_err();
        assert!(e.to_string().contains("iterates"));

        // At the caps, both are accepted.
        let mut p = Program::new(1);
        let mut s = Subcircuit::with_iterations("loop", MAX_ITERATIONS);
        s.push(Instruction::Wait(MAX_WAIT_CYCLES));
        p.push_subcircuit(s);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn iterations_expand_in_flat_instructions() {
        let mut p = Program::new(1);
        let mut s = Subcircuit::with_iterations("loop", 3);
        s.push(Instruction::gate(GateKind::X, &[0]));
        p.push_subcircuit(s);
        assert_eq!(p.flat_instructions().count(), 3);
    }
}
