//! Error types for parsing and validating cQASM programs.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The text could not be parsed. Carries the 1-based line and column
    /// of the offending token and a description of what went wrong.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// 1-based column of the offending token (1 when the error applies
        /// to the whole line).
        column: usize,
        /// Human-readable description.
        message: String,
    },
    /// The program parsed but is semantically invalid (e.g. a qubit index
    /// out of range, or overlapping operands inside a bundle).
    Validate {
        /// Human-readable description.
        message: String,
    },
}

impl Error {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        Error::Parse {
            line,
            column: 1,
            message: message.into(),
        }
    }

    pub(crate) fn parse_at(line: usize, column: usize, message: impl Into<String>) -> Self {
        Error::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    pub(crate) fn validate(message: impl Into<String>) -> Self {
        Error::Validate {
            message: message.into(),
        }
    }

    /// The `(line, column)` diagnostic position for parse errors.
    pub fn position(&self) -> Option<(usize, usize)> {
        match self {
            Error::Parse { line, column, .. } => Some((*line, *column)),
            Error::Validate { .. } => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at line {line}, column {column}: {message}"),
            Error::Validate { message } => write!(f, "invalid program: {message}"),
        }
    }
}

impl StdError for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::parse(3, "unknown gate `foo`");
        assert_eq!(
            e.to_string(),
            "parse error at line 3, column 1: unknown gate `foo`"
        );
        let e = Error::parse_at(3, 7, "unknown gate `foo`");
        assert_eq!(
            e.to_string(),
            "parse error at line 3, column 7: unknown gate `foo`"
        );
        let e = Error::validate("qubit index 9 out of range");
        assert_eq!(e.to_string(), "invalid program: qubit index 9 out of range");
    }

    #[test]
    fn position_reporting() {
        assert_eq!(Error::parse_at(2, 5, "x").position(), Some((2, 5)));
        assert_eq!(Error::validate("x").position(), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
