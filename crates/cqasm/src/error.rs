//! Error types for parsing and validating cQASM programs.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The text could not be parsed. Carries the 1-based line number and a
    /// description of what went wrong.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The program parsed but is semantically invalid (e.g. a qubit index
    /// out of range, or overlapping operands inside a bundle).
    Validate {
        /// Human-readable description.
        message: String,
    },
}

impl Error {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        Error::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn validate(message: impl Into<String>) -> Self {
        Error::Validate {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::Validate { message } => write!(f, "invalid program: {message}"),
        }
    }
}

impl StdError for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::parse(3, "unknown gate `foo`");
        assert_eq!(e.to_string(), "parse error at line 3: unknown gate `foo`");
        let e = Error::validate("qubit index 9 out of range");
        assert_eq!(e.to_string(), "invalid program: qubit index 9 out of range");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
