//! Pretty-printer producing parseable cQASM text.
//!
//! `Program` implements `Display` via [`write_program`]; the output
//! round-trips through [`crate::parser::parse`].

use crate::program::Program;
use std::fmt;

/// Writes a program in cQASM text form.
///
/// Used by `impl Display for Program`; exposed for writers that want to
/// stream into any [`fmt::Write`].
pub fn write_program(program: &Program, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    writeln!(f, "version {}", program.version())?;
    writeln!(f, "qubits {}", program.qubit_count())?;
    if let Some(model) = program.error_model() {
        write!(f, "error_model {}", model.name)?;
        for p in &model.params {
            write!(f, ", {p}")?;
        }
        writeln!(f)?;
    }
    for sub in program.subcircuits() {
        writeln!(f)?;
        if sub.iterations() == 1 {
            writeln!(f, ".{}", sub.name())?;
        } else {
            writeln!(f, ".{}({})", sub.name(), sub.iterations())?;
        }
        for ins in sub.instructions() {
            writeln!(f, "  {ins}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::gate::GateKind;
    use crate::instruction::Instruction;
    use crate::program::Program;

    #[test]
    fn roundtrip_simple() {
        let p = Program::builder(3)
            .subcircuit("init")
            .prep_z(0)
            .subcircuit_iterated("body", 2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::Rz(0.25), &[2])
            .instruction(Instruction::Bundle(vec![
                Instruction::gate(GateKind::X, &[0]),
                Instruction::gate(GateKind::Y, &[1]),
            ]))
            .measure_all()
            .build();
        let text = p.to_string();
        let q = Program::parse(&text).expect("reprint parses");
        assert_eq!(p, q);
    }

    #[test]
    fn header_format() {
        let p = Program::builder(4).gate(GateKind::X, &[0]).build();
        let text = p.to_string();
        assert!(text.starts_with("version 1.0\nqubits 4\n"));
        assert!(text.contains(".main\n"));
    }
}
