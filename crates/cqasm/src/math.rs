//! Minimal complex-number and small-matrix kernel shared by the whole stack.
//!
//! The simulator ([`qxsim`](https://docs.rs/qxsim)), the compiler and the QEC
//! layer all need exact gate semantics. Rather than pulling in an external
//! linear-algebra dependency, the stack uses this self-contained kernel: a
//! `Copy` complex type ([`C64`]) and fixed-size unitaries for one- and
//! two-qubit gates plus a general heap-allocated square matrix for larger
//! operators.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Tolerance used by the approximate comparisons in this module.
pub const EPSILON: f64 = 1e-10;

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use cqasm::math::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates the complex number `e^{i theta}` on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2` (the Born-rule probability weight).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by the imaginary unit (cheaper than a full complex multiply).
    #[inline]
    pub fn mul_i(self) -> Self {
        C64::new(-self.im, self.re)
    }

    /// Approximate equality within [`EPSILON`].
    #[inline]
    pub fn approx_eq(self, other: C64) -> bool {
        (self.re - other.re).abs() < EPSILON && (self.im - other.im).abs() < EPSILON
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        C64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// A 2x2 complex matrix: the unitary of a single-qubit gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat2(pub [[C64; 2]; 2]);

/// A 4x4 complex matrix: the unitary of a two-qubit gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4(pub [[C64; 4]; 4]);

impl Mat2 {
    /// The 2x2 identity matrix.
    pub fn identity() -> Self {
        Mat2([[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]])
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Mat2) -> Mat2 {
        let mut out = [[C64::ZERO; 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                for k in 0..2 {
                    *cell += self.0[i][k] * rhs.0[k][j];
                }
            }
        }
        Mat2(out)
    }

    /// Conjugate transpose (the inverse for unitary matrices).
    pub fn dagger(&self) -> Mat2 {
        let m = &self.0;
        Mat2([
            [m[0][0].conj(), m[1][0].conj()],
            [m[0][1].conj(), m[1][1].conj()],
        ])
    }

    /// Whether `self * self.dagger() == I` within [`EPSILON`].
    pub fn is_unitary(&self) -> bool {
        let p = self.matmul(&self.dagger());
        p.approx_eq(&Mat2::identity())
    }

    /// Element-wise approximate equality within [`EPSILON`].
    pub fn approx_eq(&self, other: &Mat2) -> bool {
        self.0
            .iter()
            .flatten()
            .zip(other.0.iter().flatten())
            .all(|(a, b)| a.approx_eq(*b))
    }

    /// Approximate equality up to a global phase factor.
    ///
    /// Two unitaries that differ only by `e^{i phi}` implement the same
    /// physical operation; this comparison is the physically meaningful one.
    pub fn approx_eq_up_to_phase(&self, other: &Mat2) -> bool {
        // Find the first element of `other` with non-negligible magnitude and
        // derive the relative phase from it.
        for i in 0..2 {
            for j in 0..2 {
                if other.0[i][j].abs() > EPSILON {
                    if self.0[i][j].abs() < EPSILON {
                        return false;
                    }
                    let phase = self.0[i][j] / other.0[i][j];
                    if (phase.abs() - 1.0).abs() > 1e-8 {
                        return false;
                    }
                    let scaled = Mat2([
                        [other.0[0][0] * phase, other.0[0][1] * phase],
                        [other.0[1][0] * phase, other.0[1][1] * phase],
                    ]);
                    return self.approx_eq(&scaled);
                }
            }
        }
        false
    }
}

impl Mat4 {
    /// The 4x4 identity matrix.
    pub fn identity() -> Self {
        let mut m = [[C64::ZERO; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = C64::ONE;
        }
        Mat4(m)
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Mat4) -> Mat4 {
        let mut out = [[C64::ZERO; 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                for k in 0..4 {
                    *cell += self.0[i][k] * rhs.0[k][j];
                }
            }
        }
        Mat4(out)
    }

    /// Conjugate transpose (the inverse for unitary matrices).
    pub fn dagger(&self) -> Mat4 {
        let mut out = [[C64::ZERO; 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.0[j][i].conj();
            }
        }
        Mat4(out)
    }

    /// Whether `self * self.dagger() == I` within [`EPSILON`].
    pub fn is_unitary(&self) -> bool {
        let p = self.matmul(&self.dagger());
        p.approx_eq(&Mat4::identity())
    }

    /// Element-wise approximate equality within [`EPSILON`].
    pub fn approx_eq(&self, other: &Mat4) -> bool {
        self.0
            .iter()
            .flatten()
            .zip(other.0.iter().flatten())
            .all(|(a, b)| a.approx_eq(*b))
    }

    /// Kronecker product of two single-qubit unitaries, `a (x) b`.
    ///
    /// The first factor acts on the more significant qubit of the pair.
    pub fn kron(a: &Mat2, b: &Mat2) -> Mat4 {
        let mut out = [[C64::ZERO; 4]; 4];
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    for l in 0..2 {
                        out[i * 2 + k][j * 2 + l] = a.0[i][j] * b.0[k][l];
                    }
                }
            }
        }
        Mat4(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn complex_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert!(((a / b) * b).approx_eq(a));
        assert_eq!(-a, C64::new(-1.0, -2.0));
    }

    #[test]
    fn complex_polar() {
        let z = C64::cis(std::f64::consts::FRAC_PI_4);
        assert!((z.abs() - 1.0).abs() < EPSILON);
        assert!((z.arg() - std::f64::consts::FRAC_PI_4).abs() < EPSILON);
    }

    #[test]
    fn mul_i_matches_full_multiply() {
        let z = C64::new(0.3, -0.7);
        assert!(z.mul_i().approx_eq(z * C64::I));
    }

    #[test]
    fn conj_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert!((z.norm_sqr() - 25.0).abs() < EPSILON);
        assert!((z.abs() - 5.0).abs() < EPSILON);
    }

    #[test]
    fn hadamard_is_unitary_and_self_inverse() {
        let s = C64::real(FRAC_1_SQRT_2);
        let h = Mat2([[s, s], [s, -s]]);
        assert!(h.is_unitary());
        assert!(h.matmul(&h).approx_eq(&Mat2::identity()));
    }

    #[test]
    fn dagger_of_phase_gate() {
        let s = Mat2([[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]]);
        let sdag = s.dagger();
        assert!(s.matmul(&sdag).approx_eq(&Mat2::identity()));
        assert_eq!(sdag.0[1][1], C64::new(0.0, -1.0));
    }

    #[test]
    fn kron_of_identities_is_identity() {
        let id = Mat2::identity();
        assert!(Mat4::kron(&id, &id).approx_eq(&Mat4::identity()));
    }

    #[test]
    fn kron_structure() {
        let x = Mat2([[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]);
        let id = Mat2::identity();
        let m = Mat4::kron(&x, &id);
        // X on the high qubit: |0a> <-> |1a|.
        assert_eq!(m.0[0][2], C64::ONE);
        assert_eq!(m.0[2][0], C64::ONE);
        assert_eq!(m.0[1][3], C64::ONE);
        assert_eq!(m.0[0][0], C64::ZERO);
        assert!(m.is_unitary());
    }

    #[test]
    fn phase_equivalence() {
        let s = C64::real(FRAC_1_SQRT_2);
        let h = Mat2([[s, s], [s, -s]]);
        let phase = C64::cis(1.234);
        let h_phased = Mat2([
            [h.0[0][0] * phase, h.0[0][1] * phase],
            [h.0[1][0] * phase, h.0[1][1] * phase],
        ]);
        assert!(h.approx_eq_up_to_phase(&h_phased));
        let x = Mat2([[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]);
        assert!(!h.approx_eq_up_to_phase(&x));
    }
}
