//! Property-based tests: printing any generated program and re-parsing it
//! yields the identical program, and validation accepts what the builder
//! produces.

use cqasm::{GateKind, Instruction, Program, Qubit};
use proptest::prelude::*;

const QUBITS: usize = 6;

fn arb_gate_kind() -> impl Strategy<Value = GateKind> {
    prop_oneof![
        Just(GateKind::I),
        Just(GateKind::H),
        Just(GateKind::X),
        Just(GateKind::Y),
        Just(GateKind::Z),
        Just(GateKind::S),
        Just(GateKind::Sdag),
        Just(GateKind::T),
        Just(GateKind::Tdag),
        Just(GateKind::X90),
        Just(GateKind::Y90),
        Just(GateKind::Mx90),
        Just(GateKind::My90),
        // Finite angles that print exactly (parser reads full f64 precision).
        (-8i32..8).prop_map(|k| GateKind::Rx(k as f64 * 0.25)),
        (-8i32..8).prop_map(|k| GateKind::Ry(k as f64 * 0.25)),
        (-8i32..8).prop_map(|k| GateKind::Rz(k as f64 * 0.25)),
        Just(GateKind::Cnot),
        Just(GateKind::Cz),
        Just(GateKind::Swap),
        (1u32..6).prop_map(GateKind::CRk),
        Just(GateKind::Toffoli),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let gate = arb_gate_kind().prop_flat_map(|kind| {
        let arity = kind.arity();
        proptest::sample::subsequence((0..QUBITS).collect::<Vec<_>>(), arity)
            .prop_map(move |qs| Instruction::gate(kind, &qs))
    });
    prop_oneof![
        8 => gate,
        1 => (0..QUBITS).prop_map(|q| Instruction::Measure(Qubit(q))),
        1 => (0..QUBITS).prop_map(|q| Instruction::PrepZ(Qubit(q))),
        1 => Just(Instruction::MeasureAll),
        1 => (1u64..20).prop_map(Instruction::Wait),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_instruction(), 1..30).prop_map(|instrs| {
        let mut b = Program::builder(QUBITS).subcircuit("generated");
        for i in instrs {
            b = b.instruction(i);
        }
        b.build()
    })
}

proptest! {
    #[test]
    fn print_parse_roundtrip(p in arb_program()) {
        let text = p.to_string();
        let q = Program::parse(&text).expect("printed program parses");
        prop_assert_eq!(p, q);
    }

    #[test]
    fn builder_output_validates(p in arb_program()) {
        prop_assert!(p.validate().is_ok());
    }

    #[test]
    fn stats_gate_count_matches_flat_walk(p in arb_program()) {
        let expected = p
            .flat_instructions()
            .filter(|i| i.is_unitary_gate())
            .count();
        prop_assert_eq!(p.stats().gates, expected);
    }
}

proptest! {
    /// The parser never panics, whatever bytes it is fed — it returns
    /// `Err` on garbage instead.
    #[test]
    fn parser_never_panics_on_arbitrary_text(src in "\\PC{0,200}") {
        let _ = Program::parse(&src);
    }

    /// Line-structured garbage (plausible-looking tokens) also never
    /// panics and never produces an invalid program.
    #[test]
    fn parser_never_panics_on_token_soup(
        lines in proptest::collection::vec(
            "(qubits|version|h|cnot|rx|measure|\\.sub|\\{|error_model)? ?(q\\[[0-9]{1,3}\\]|b\\[[0-9]\\]|[0-9.]{1,6}|,)*",
            0..12
        )
    ) {
        let src = lines.join("\n");
        if let Ok(p) = Program::parse(&src) {
            prop_assert!(p.validate().is_ok());
        }
    }
}
