//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand` it actually uses: the
//! [`Rng`] convenience trait (`gen`, `gen_bool`, `gen_range`), [`SeedableRng`]
//! with `seed_from_u64`, and a deterministic [`rngs::StdRng`].
//!
//! The generator behind `StdRng` is **xoshiro256++** seeded through SplitMix64
//! — not the ChaCha12 core of upstream `rand`, so seeded streams differ from
//! upstream, but every consumer in this workspace only relies on streams being
//! deterministic per seed, well distributed, and cheap.
//!
//! # Example
//!
//! ```
//! use rand::{Rng, SeedableRng};
//! use rand::rngs::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0..10);
//! assert!(k < 10);
//! // Deterministic per seed.
//! let mut again = StdRng::seed_from_u64(42);
//! let y: f64 = again.gen();
//! assert_eq!(x, y);
//! ```

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable from the "standard" distribution of their type
/// (uniform over `[0, 1)` for floats, uniform over all values for integers
/// and `bool`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * f64::sample_standard(rng)
    }
}

/// The user-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample_standard(self) < p
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The first `f64` that `StdRng::seed_from_u64(seed).gen::<f64>()`
        /// would produce, without materialising the generator.
        ///
        /// The first xoshiro256++ output reads only state words 0 and 3, so
        /// only two of the four SplitMix64 expansions are mixed; hot
        /// sampling loops that consume exactly one draw per derived stream
        /// (one stream per shot) use this to halve their seeding cost.
        #[inline]
        #[must_use]
        pub fn first_f64(seed: u64) -> f64 {
            const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
            let mut sm0 = seed;
            let s0 = splitmix64(&mut sm0);
            let mut sm3 = seed.wrapping_add(3u64.wrapping_mul(GOLDEN));
            let s3 = splitmix64(&mut sm3);
            let bits = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn first_f64_matches_fresh_generator() {
        for seed in (0..10_000u64).chain((0..64).map(|b| 1u64 << b)).chain([
            u64::MAX,
            u64::MAX - 1,
            0xDEAD_BEEF_CAFE_F00D,
        ]) {
            let expect: f64 = StdRng::seed_from_u64(seed).gen();
            assert_eq!(
                StdRng::first_f64(seed).to_bits(),
                expect.to_bits(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<f64> = (0..8).map(|_| a.gen::<f64>()).collect();
        let bv: Vec<f64> = (0..8).map(|_| b.gen::<f64>()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_f64_uniform_mean() {
        let mut r = StdRng::seed_from_u64(99);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&w));
            let x = r.gen_range(0..=4u32);
            assert!(x <= 4);
            let y = r.gen_range(-5..5i32);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(13);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.gen_range(3..3usize);
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(21);
        let _ = draw(&mut r);
        let rr: &mut StdRng = &mut r;
        let _ = draw(rr);
    }
}
