//! The sampler abstraction and sample sets.
//!
//! Mirrors the API shape of annealing SDKs (D-Wave Ocean's samplers):
//! every solver takes an Ising model and a number of reads and returns an
//! energy-sorted sample set.

use crate::ising::Ising;

/// One distinct sampled configuration with its energy and multiplicity.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The spin configuration.
    pub spins: Vec<i8>,
    /// Its Ising energy.
    pub energy: f64,
    /// How many reads returned it.
    pub occurrences: u64,
}

/// A collection of samples, sorted by ascending energy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SampleSet {
    samples: Vec<Sample>,
}

impl SampleSet {
    /// Builds a sample set from raw reads, deduplicating and sorting.
    pub fn from_reads(ising: &Ising, reads: Vec<Vec<i8>>) -> Self {
        let mut samples: Vec<Sample> = Vec::new();
        for spins in reads {
            let energy = ising.energy(&spins);
            if let Some(s) = samples.iter_mut().find(|s| s.spins == spins) {
                s.occurrences += 1;
            } else {
                samples.push(Sample {
                    spins,
                    energy,
                    occurrences: 1,
                });
            }
        }
        samples.sort_by(|a, b| a.energy.total_cmp(&b.energy));
        SampleSet { samples }
    }

    /// The lowest-energy sample, if any reads were taken.
    pub fn best(&self) -> Option<&Sample> {
        self.samples.first()
    }

    /// The lowest energy seen.
    pub fn lowest_energy(&self) -> Option<f64> {
        self.best().map(|s| s.energy)
    }

    /// All distinct samples, ascending energy.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Number of distinct configurations.
    pub fn distinct(&self) -> usize {
        self.samples.len()
    }

    /// Total reads.
    pub fn total_reads(&self) -> u64 {
        self.samples.iter().map(|s| s.occurrences).sum()
    }
}

/// Anything that can sample low-energy states of an Ising model.
pub trait Sampler {
    /// Draws `reads` configurations, aiming for low energy.
    fn sample(&self, ising: &Ising, reads: u64) -> SampleSet;

    /// Human-readable solver name (for experiment tables).
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_set_dedup_and_sort() {
        let mut m = Ising::new(2);
        m.add_coupling(0, 1, -1.0);
        let set =
            SampleSet::from_reads(&m, vec![vec![1, -1], vec![1, 1], vec![1, 1], vec![-1, -1]]);
        assert_eq!(set.distinct(), 3);
        assert_eq!(set.total_reads(), 4);
        assert_eq!(set.lowest_energy(), Some(-1.0));
        let best = set.best().unwrap();
        assert_eq!(best.energy, -1.0);
        // The duplicated ground state has multiplicity 2.
        let ground: Vec<_> = set.iter().filter(|s| s.energy == -1.0).collect();
        assert_eq!(ground.iter().map(|s| s.occurrences).sum::<u64>(), 3);
    }

    #[test]
    fn empty_sample_set() {
        let m = Ising::new(1);
        let set = SampleSet::from_reads(&m, vec![]);
        assert!(set.best().is_none());
        assert_eq!(set.total_reads(), 0);
    }
}
