//! A digital annealer in the style of Fujitsu's "quantum-inspired"
//! machine (§4.2 of the paper): fully-connected, no embedding needed, with
//! parallel trial evaluation and an escape mechanism.
//!
//! The algorithm evaluates *all* single-spin flips each iteration (the
//! hardware does this in parallel), accepts one of the admissible flips
//! uniformly, and when stuck raises a dynamic energy offset so it can walk
//! out of local minima — the published DA strategy.

use crate::ising::Ising;
use crate::sampler::{SampleSet, Sampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Fujitsu-style digital annealer.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitalAnnealer {
    /// Inverse temperature (fixed; the DA relies on the offset escape
    /// rather than a cooling schedule).
    pub beta: f64,
    /// Iterations per read.
    pub iterations: usize,
    /// Offset increase applied when no flip is accepted.
    pub offset_step: f64,
    /// Hardware capacity: maximum number of variables (8192 on the
    /// second-generation DA the paper mentions).
    pub capacity: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DigitalAnnealer {
    fn default() -> Self {
        DigitalAnnealer {
            beta: 2.0,
            iterations: 2_000,
            offset_step: 0.5,
            capacity: 8192,
            seed: 0xD161,
        }
    }
}

impl DigitalAnnealer {
    /// A default-configured digital annealer (8192-node capacity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether a problem fits the machine (fully connected: the only
    /// limit is variable count — no minor embedding, §3.3).
    pub fn fits(&self, ising: &Ising) -> bool {
        ising.len() <= self.capacity
    }

    fn run_once(&self, ising: &Ising, rng: &mut StdRng) -> Vec<i8> {
        let n = ising.len();
        let mut s: Vec<i8> = (0..n)
            .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
            .collect();
        if n == 0 {
            return s;
        }
        let mut best = s.clone();
        let mut best_e = ising.energy(&s);
        let mut cur_e = best_e;
        let mut offset = 0.0f64;
        let mut accepted_flips: Vec<usize> = Vec::with_capacity(n);
        for _ in 0..self.iterations {
            accepted_flips.clear();
            // Parallel trial: evaluate every flip against the offset
            // relaxed Metropolis criterion.
            for i in 0..n {
                let delta = ising.flip_delta(&s, i) - offset;
                if delta <= 0.0 || rng.gen_bool((-self.beta * delta).exp().min(1.0)) {
                    accepted_flips.push(i);
                }
            }
            if accepted_flips.is_empty() {
                offset += self.offset_step;
                continue;
            }
            offset = 0.0;
            let i = accepted_flips[rng.gen_range(0..accepted_flips.len())];
            cur_e += ising.flip_delta(&s, i);
            s[i] = -s[i];
            if cur_e < best_e {
                best_e = cur_e;
                best = s.clone();
            }
        }
        best
    }
}

impl Sampler for DigitalAnnealer {
    fn sample(&self, ising: &Ising, reads: u64) -> SampleSet {
        assert!(
            self.fits(ising),
            "problem of {} variables exceeds the {}-node capacity",
            ising.len(),
            self.capacity
        );
        let mut all = Vec::with_capacity(reads as usize);
        for r in 0..reads {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(r));
            all.push(self.run_once(ising, &mut rng));
        }
        SampleSet::from_reads(ising, all)
    }

    fn name(&self) -> &str {
        "digital-annealer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_ferromagnetic_chain() {
        let mut m = Ising::new(10);
        for i in 0..9 {
            m.add_coupling(i, i + 1, -1.0);
        }
        let set = DigitalAnnealer::new().sample(&m, 5);
        assert_eq!(set.lowest_energy(), Some(-9.0));
    }

    #[test]
    fn matches_brute_force_on_dense_instances() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(44);
        for trial in 0..3 {
            let n = 9;
            let mut m = Ising::new(n);
            for i in 0..n {
                m.add_field(i, rng.gen_range(-1.0..1.0));
                for j in i + 1..n {
                    m.add_coupling(i, j, rng.gen_range(-1.0..1.0));
                }
            }
            let (_, exact) = m.brute_force_minimum();
            let found = DigitalAnnealer::new()
                .with_seed(trial)
                .sample(&m, 10)
                .lowest_energy()
                .unwrap();
            assert!(
                (found - exact).abs() < 1e-9,
                "trial {trial}: DA {found} vs exact {exact}"
            );
        }
    }

    #[test]
    fn capacity_check() {
        let da = DigitalAnnealer::new();
        assert!(da.fits(&Ising::new(8192)));
        assert!(!da.fits(&Ising::new(8193)));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_problem_panics() {
        let da = DigitalAnnealer {
            capacity: 4,
            ..Default::default()
        };
        let m = Ising::new(5);
        let _ = da.sample(&m, 1);
    }
}
