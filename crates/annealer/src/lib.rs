//! # annealer — the quantum annealing substrate
//!
//! The second accelerator class of Bertels et al. (DATE 2020): annealing
//! based optimisation (§3.3, §4.2). The level of abstraction is the
//! classical Ising model, isomorphic to QUBO; hardware comes in two
//! flavours the paper contrasts:
//!
//! - superconducting annealers (D-Wave 2000Q): 2048 qubits on a Chimera
//!   graph with *limited connectivity*, requiring NP-hard minor embedding
//!   ([`chimera`]);
//! - "quantum-inspired" digital annealers (Fujitsu): 8192 nodes, fully
//!   connected, no embedding ([`DigitalAnnealer`]).
//!
//! [`SimulatedAnnealer`] provides both the classical baseline and the
//! sampling engine standing in for the quantum hardware.
//!
//! # Example
//!
//! ```
//! use annealer::{Ising, Sampler, SimulatedAnnealer};
//!
//! let mut model = Ising::new(4);
//! for i in 0..3 {
//!     model.add_coupling(i, i + 1, -1.0); // ferromagnetic chain
//! }
//! let best = SimulatedAnnealer::new().sample(&model, 10);
//! assert_eq!(best.lowest_energy(), Some(-3.0));
//! ```

pub mod chimera;
pub mod digital;
pub mod ising;
pub mod qubo;
pub mod sa;
pub mod sampler;
pub mod sqa;

pub use chimera::{
    clique_embedding, embed_ising, max_clique, Chimera, EmbedError, EmbeddedProblem, Embedding,
};
pub use digital::DigitalAnnealer;
pub use ising::Ising;
pub use qubo::{bits_to_spins, spins_to_bits, Qubo};
pub use sa::SimulatedAnnealer;
pub use sampler::{Sample, SampleSet, Sampler};
pub use sqa::QuantumAnnealer;
