//! The Ising spin model: `E(s) = sum_i h_i s_i + sum_{i<j} J_ij s_i s_j`.
//!
//! The computational model of quantum annealers (§3.3/§4.2 of the paper):
//! spins take values in `{-1, +1}` and the annealer estimates the minimum
//! energy configuration.

use std::collections::HashMap;

/// An Ising model with local fields `h` and couplings `J`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ising {
    h: Vec<f64>,
    /// Couplings keyed by `(min, max)` variable pair.
    j: HashMap<(usize, usize), f64>,
    /// Adjacency: for each spin, its coupled partners and weights.
    adj: Vec<Vec<(usize, f64)>>,
}

impl Ising {
    /// Creates a field-free, coupling-free model over `n` spins.
    pub fn new(n: usize) -> Self {
        Ising {
            h: vec![0.0; n],
            j: HashMap::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of spins.
    pub fn len(&self) -> usize {
        self.h.len()
    }

    /// Whether the model has no spins.
    pub fn is_empty(&self) -> bool {
        self.h.is_empty()
    }

    /// Adds `w` to the local field of spin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn add_field(&mut self, i: usize, w: f64) {
        self.h[i] += w;
    }

    /// Adds `w` to the coupling between `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn add_coupling(&mut self, i: usize, j: usize, w: f64) {
        assert!(i != j, "self-coupling");
        assert!(i < self.len() && j < self.len(), "index out of range");
        let key = (i.min(j), i.max(j));
        *self.j.entry(key).or_insert(0.0) += w;
        // Rebuild adjacency entries for the pair.
        update_adj(&mut self.adj, i, j, self.j[&key]);
        update_adj(&mut self.adj, j, i, self.j[&key]);
    }

    /// The local field of spin `i`.
    pub fn field(&self, i: usize) -> f64 {
        self.h[i]
    }

    /// The coupling between `i` and `j` (0 if absent).
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        let key = (i.min(j), i.max(j));
        self.j.get(&key).copied().unwrap_or(0.0)
    }

    /// All couplings as `((i, j), w)` with `i < j`.
    pub fn couplings(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.j.iter().map(|(&k, &v)| (k, v))
    }

    /// Coupled neighbours of spin `i` with weights.
    pub fn neighbors(&self, i: usize) -> &[(usize, f64)] {
        &self.adj[i]
    }

    /// Total energy of a spin configuration.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != self.len()`.
    pub fn energy(&self, s: &[i8]) -> f64 {
        assert_eq!(s.len(), self.len(), "configuration length mismatch");
        let mut e = 0.0;
        for (i, &hv) in self.h.iter().enumerate() {
            e += hv * s[i] as f64;
        }
        for (&(i, j), &w) in &self.j {
            e += w * (s[i] as f64) * (s[j] as f64);
        }
        e
    }

    /// Energy change from flipping spin `i` in configuration `s`.
    ///
    /// `delta = E(s with s_i flipped) - E(s) = -2 s_i (h_i + sum_j J_ij s_j)`.
    pub fn flip_delta(&self, s: &[i8], i: usize) -> f64 {
        let mut local = self.h[i];
        for &(j, w) in &self.adj[i] {
            local += w * s[j] as f64;
        }
        -2.0 * s[i] as f64 * local
    }

    /// Exhaustively finds a minimum-energy configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n > 25`.
    pub fn brute_force_minimum(&self) -> (Vec<i8>, f64) {
        let n = self.len();
        assert!(n <= 25, "brute force limited to 25 spins");
        let mut best = (vec![1i8; n], f64::INFINITY);
        for bits in 0..(1u64 << n) {
            let s: Vec<i8> = (0..n)
                .map(|i| if (bits >> i) & 1 == 1 { -1 } else { 1 })
                .collect();
            let e = self.energy(&s);
            if e < best.1 {
                best = (s, e);
            }
        }
        best
    }
}

fn update_adj(adj: &mut [Vec<(usize, f64)>], from: usize, to: usize, w: f64) {
    if let Some(entry) = adj[from].iter_mut().find(|(t, _)| *t == to) {
        entry.1 = w;
    } else {
        adj[from].push((to, w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_of_ferromagnet() {
        // Two spins, J = -1: aligned states have energy -1.
        let mut m = Ising::new(2);
        m.add_coupling(0, 1, -1.0);
        assert_eq!(m.energy(&[1, 1]), -1.0);
        assert_eq!(m.energy(&[-1, -1]), -1.0);
        assert_eq!(m.energy(&[1, -1]), 1.0);
    }

    #[test]
    fn field_biases_spin() {
        let mut m = Ising::new(1);
        m.add_field(0, 2.0);
        assert_eq!(m.energy(&[1]), 2.0);
        assert_eq!(m.energy(&[-1]), -2.0);
        let (s, e) = m.brute_force_minimum();
        assert_eq!(s, vec![-1]);
        assert_eq!(e, -2.0);
    }

    #[test]
    fn flip_delta_matches_energy_difference() {
        let mut m = Ising::new(4);
        m.add_field(0, 0.5);
        m.add_field(2, -1.0);
        m.add_coupling(0, 1, -1.0);
        m.add_coupling(1, 2, 2.0);
        m.add_coupling(0, 3, 0.7);
        let s = vec![1i8, -1, 1, -1];
        for i in 0..4 {
            let mut s2 = s.clone();
            s2[i] = -s2[i];
            let exact = m.energy(&s2) - m.energy(&s);
            let delta = m.flip_delta(&s, i);
            assert!((exact - delta).abs() < 1e-12, "spin {i}");
        }
    }

    #[test]
    fn coupling_accumulates() {
        let mut m = Ising::new(2);
        m.add_coupling(0, 1, 1.0);
        m.add_coupling(1, 0, 0.5);
        assert_eq!(m.coupling(0, 1), 1.5);
        assert_eq!(m.neighbors(0), &[(1, 1.5)]);
    }

    #[test]
    fn frustrated_triangle_minimum() {
        // Antiferromagnetic triangle: minimum energy is -J (one unsatisfied
        // edge), i.e. -1 + -1 + 1 = -1 with J = 1.
        let mut m = Ising::new(3);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            m.add_coupling(a, b, 1.0);
        }
        let (_, e) = m.brute_force_minimum();
        assert_eq!(e, -1.0);
    }

    #[test]
    #[should_panic(expected = "self-coupling")]
    fn rejects_self_coupling() {
        Ising::new(2).add_coupling(1, 1, 1.0);
    }
}
