//! Simulated **quantum** annealing (SQA): the closest software model of a
//! superconducting quantum annealer.
//!
//! Real annealers (D-Wave, §4.2 of the paper) evolve the transverse-field
//! Ising Hamiltonian `H(s) = A(s) sum_i sigma^x_i + B(s) H_problem`. The
//! standard classical simulation is path-integral Monte-Carlo: the
//! quantum system at inverse temperature `beta` maps (Suzuki–Trotter) to
//! `P` coupled classical replicas ("imaginary-time slices") with a
//! ferromagnetic inter-slice coupling `J_perp` that strengthens as the
//! transverse field is annealed away. Quantum tunnelling appears as
//! coordinated multi-slice moves.

use crate::ising::Ising;
use crate::sampler::{SampleSet, Sampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A path-integral Monte-Carlo quantum annealer.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumAnnealer {
    /// Trotter slices (replicas).
    pub slices: usize,
    /// Inverse temperature of the quantum system.
    pub beta: f64,
    /// Initial transverse field strength.
    pub gamma_start: f64,
    /// Final transverse field strength (near zero).
    pub gamma_end: f64,
    /// Annealing steps.
    pub steps: usize,
    /// Sweeps per annealing step.
    pub sweeps_per_step: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QuantumAnnealer {
    fn default() -> Self {
        QuantumAnnealer {
            slices: 16,
            beta: 8.0,
            gamma_start: 3.0,
            gamma_end: 0.01,
            steps: 60,
            sweeps_per_step: 2,
            seed: 0x50A1,
        }
    }
}

impl QuantumAnnealer {
    /// A default-configured quantum annealer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// One full anneal; returns the best slice configuration seen.
    fn anneal_once(&self, ising: &Ising, rng: &mut StdRng) -> Vec<i8> {
        let n = ising.len();
        let p = self.slices;
        if n == 0 {
            return Vec::new();
        }
        // replicas[k][i]: spin i in slice k.
        let mut replicas: Vec<Vec<i8>> = (0..p)
            .map(|_| {
                (0..n)
                    .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
                    .collect()
            })
            .collect();
        let beta_slice = self.beta / p as f64;
        let mut best: Vec<i8> = replicas[0].clone();
        let mut best_e = ising.energy(&best);

        let ratio = if self.steps > 1 {
            (self.gamma_end / self.gamma_start).powf(1.0 / (self.steps as f64 - 1.0))
        } else {
            1.0
        };
        let mut gamma = self.gamma_start;
        for _ in 0..self.steps {
            // Inter-slice coupling from the Suzuki-Trotter mapping:
            // J_perp = -(1/(2 beta_slice)) ln tanh(beta_slice * gamma).
            let t = (beta_slice * gamma).tanh();
            let j_perp = if t > 0.0 {
                -0.5 / beta_slice * t.ln()
            } else {
                f64::INFINITY
            };
            for _ in 0..self.sweeps_per_step {
                for k in 0..p {
                    let up = (k + 1) % p;
                    let down = (k + p - 1) % p;
                    for i in 0..n {
                        // Problem-energy delta within the slice, scaled
                        // by beta_slice; plus inter-slice kinetic term.
                        let d_problem = ising.flip_delta(&replicas[k], i);
                        let s = replicas[k][i] as f64;
                        let neighbours = replicas[up][i] as f64 + replicas[down][i] as f64;
                        let d_kinetic = 2.0 * j_perp * s * neighbours;
                        let delta = beta_slice * d_problem + beta_slice * d_kinetic;
                        if delta <= 0.0 || rng.gen_bool((-delta).exp().min(1.0)) {
                            replicas[k][i] = -replicas[k][i];
                            let e = ising.energy(&replicas[k]);
                            if e < best_e {
                                best_e = e;
                                best = replicas[k].clone();
                            }
                        }
                    }
                }
                // Global move: flip one spin across every slice at once
                // (a "quantum" tunnelling move; costs no kinetic energy).
                let i = rng.gen_range(0..n);
                let d_total: f64 =
                    replicas.iter().map(|r| ising.flip_delta(r, i)).sum::<f64>() * beta_slice;
                if d_total <= 0.0 || rng.gen_bool((-d_total).exp().min(1.0)) {
                    for r in replicas.iter_mut() {
                        r[i] = -r[i];
                    }
                    let e = ising.energy(&replicas[0]);
                    if e < best_e {
                        best_e = e;
                        best = replicas[0].clone();
                    }
                }
            }
            gamma *= ratio;
        }
        // Final readout: pick the best slice.
        for r in &replicas {
            let e = ising.energy(r);
            if e < best_e {
                best_e = e;
                best = r.clone();
            }
        }
        best
    }
}

impl Sampler for QuantumAnnealer {
    fn sample(&self, ising: &Ising, reads: u64) -> SampleSet {
        let mut all = Vec::with_capacity(reads as usize);
        for r in 0..reads {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(r));
            all.push(self.anneal_once(ising, &mut rng));
        }
        SampleSet::from_reads(ising, all)
    }

    fn name(&self) -> &str {
        "quantum-annealer-piqmc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_ferromagnetic_chain() {
        let mut m = Ising::new(8);
        for i in 0..7 {
            m.add_coupling(i, i + 1, -1.0);
        }
        let set = QuantumAnnealer::new().sample(&m, 8);
        assert_eq!(set.lowest_energy(), Some(-7.0));
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(60);
        for trial in 0..4 {
            let n = 8;
            let mut m = Ising::new(n);
            for i in 0..n {
                m.add_field(i, rng.gen_range(-1.0..1.0));
                for j in i + 1..n {
                    if rng.gen_bool(0.5) {
                        m.add_coupling(i, j, rng.gen_range(-1.0..1.0));
                    }
                }
            }
            let (_, exact) = m.brute_force_minimum();
            let found = QuantumAnnealer::new()
                .with_seed(trial)
                .sample(&m, 15)
                .lowest_energy()
                .unwrap();
            assert!(
                (found - exact).abs() < 1e-9,
                "trial {trial}: SQA {found} vs exact {exact}"
            );
        }
    }

    #[test]
    fn tunnels_through_a_tall_thin_barrier() {
        // A two-cluster model where the clusters must flip together:
        // strong internal ferromagnet + weak global bias. Single-spin
        // dynamics must break a strong bond to move between minima; the
        // global (tunnelling) move crosses directly.
        let n = 6;
        let mut m = Ising::new(n);
        for i in 0..n - 1 {
            m.add_coupling(i, i + 1, -2.0);
        }
        // Bias towards all-down being the true ground state.
        for i in 0..n {
            m.add_field(i, 0.1);
        }
        let set = QuantumAnnealer::new().with_seed(3).sample(&m, 10);
        let best = set.best().unwrap();
        assert!(
            best.spins.iter().all(|&s| s == -1),
            "expected the biased ground state, got {:?}",
            best.spins
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut m = Ising::new(5);
        for i in 0..4 {
            m.add_coupling(i, i + 1, 1.0);
        }
        let a = QuantumAnnealer::new().with_seed(1).sample(&m, 4);
        let b = QuantumAnnealer::new().with_seed(1).sample(&m, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_model_is_fine() {
        let m = Ising::new(0);
        let set = QuantumAnnealer::new().sample(&m, 2);
        assert_eq!(set.lowest_energy(), Some(0.0));
    }
}
