//! Quadratic Unconstrained Binary Optimisation (QUBO) models.
//!
//! §3.3 of the paper: "the optimisation problem is modelled as a QUBO
//! expressed by: minimise `y = x^t Q x`", with `x` binary and `Q` an upper
//! triangular matrix of constants, and "quantum annealers use the Ising
//! model ... isomorphic to the QUBO model".

use crate::ising::Ising;
use std::fmt;

/// A QUBO instance: minimise `x^T Q x` over binary `x`.
///
/// `Q` is stored upper-triangular: `q[i][j]` with `i <= j`; the diagonal
/// holds linear terms (`x_i^2 = x_i`).
#[derive(Debug, Clone, PartialEq)]
pub struct Qubo {
    n: usize,
    /// Dense upper-triangular storage: index by `tri_index(i, j, n)`.
    q: Vec<f64>,
}

fn tri_index(i: usize, j: usize, n: usize) -> usize {
    debug_assert!(i <= j && j < n);
    i * n + j - i * (i + 1) / 2
}

impl Qubo {
    /// Creates a zero QUBO over `n` variables.
    pub fn new(n: usize) -> Self {
        Qubo {
            n,
            q: vec![0.0; n * (n + 1) / 2],
        }
    }

    /// Number of binary variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the model has no variables.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The coefficient `Q[i][j]` (order-insensitive).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (i.min(j), i.max(j));
        self.q[tri_index(a, b, self.n)]
    }

    /// Sets the coefficient `Q[i][j]` (order-insensitive).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set(&mut self, i: usize, j: usize, w: f64) {
        assert!(i < self.n && j < self.n, "index out of range");
        let (a, b) = (i.min(j), i.max(j));
        self.q[tri_index(a, b, self.n)] = w;
    }

    /// Adds `w` to the coefficient `Q[i][j]`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn add(&mut self, i: usize, j: usize, w: f64) {
        assert!(i < self.n && j < self.n, "index out of range");
        let (a, b) = (i.min(j), i.max(j));
        self.q[tri_index(a, b, self.n)] += w;
    }

    /// Objective value `x^T Q x` for an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    #[allow(clippy::needless_range_loop)] // index pairs (i, j) read more clearly
    pub fn energy(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.n, "assignment length mismatch");
        let mut e = 0.0;
        for i in 0..self.n {
            if !x[i] {
                continue;
            }
            for j in i..self.n {
                if x[j] {
                    e += self.q[tri_index(i, j, self.n)];
                }
            }
        }
        e
    }

    /// Converts to the isomorphic Ising model via `x_i = (1 - s_i) / 2`
    /// (spin up `s = +1` ↔ `x = 0`). Returns the Ising model and the
    /// constant offset such that
    /// `qubo.energy(x) = ising.energy(s) + offset`.
    pub fn to_ising(&self) -> (Ising, f64) {
        let n = self.n;
        let mut h = vec![0.0; n];
        let mut ising = Ising::new(n);
        let mut offset = 0.0;
        for i in 0..n {
            for j in i..n {
                let w = self.q[tri_index(i, j, n)];
                if w == 0.0 {
                    continue;
                }
                if i == j {
                    // x_i = (1 - s_i)/2: w*x = w/2 - (w/2) s_i.
                    offset += w / 2.0;
                    h[i] -= w / 2.0;
                } else {
                    // w * x_i x_j = w/4 (1 - s_i - s_j + s_i s_j).
                    offset += w / 4.0;
                    h[i] -= w / 4.0;
                    h[j] -= w / 4.0;
                    ising.add_coupling(i, j, w / 4.0);
                }
            }
        }
        for (i, hv) in h.into_iter().enumerate() {
            ising.add_field(i, hv);
        }
        (ising, offset)
    }

    /// Exhaustively finds the minimum-energy assignment.
    ///
    /// # Panics
    ///
    /// Panics if `n > 25` (enumeration would be too large).
    pub fn brute_force_minimum(&self) -> (Vec<bool>, f64) {
        assert!(self.n <= 25, "brute force limited to 25 variables");
        let mut best = (vec![false; self.n], f64::INFINITY);
        for bits in 0..(1u64 << self.n) {
            let x: Vec<bool> = (0..self.n).map(|i| (bits >> i) & 1 == 1).collect();
            let e = self.energy(&x);
            if e < best.1 {
                best = (x, e);
            }
        }
        best
    }
}

impl fmt::Display for Qubo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "qubo over {} variables:", self.n)?;
        for i in 0..self.n {
            for j in i..self.n {
                let w = self.get(i, j);
                if w != 0.0 {
                    writeln!(f, "  Q[{i}][{j}] = {w}")?;
                }
            }
        }
        Ok(())
    }
}

/// Converts a spin vector to binary via `x = (1 - s) / 2`.
pub fn spins_to_bits(s: &[i8]) -> Vec<bool> {
    s.iter().map(|&v| v < 0).collect()
}

/// Converts a binary vector to spins via `s = 1 - 2x`.
pub fn bits_to_spins(x: &[bool]) -> Vec<i8> {
    x.iter().map(|&b| if b { -1 } else { 1 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_computation() {
        let mut q = Qubo::new(3);
        q.set(0, 0, 1.0);
        q.set(0, 1, -2.0);
        q.set(2, 2, 3.0);
        assert_eq!(q.energy(&[false, false, false]), 0.0);
        assert_eq!(q.energy(&[true, false, false]), 1.0);
        assert_eq!(q.energy(&[true, true, false]), -1.0);
        assert_eq!(q.energy(&[true, true, true]), 2.0);
    }

    #[test]
    fn get_set_symmetric() {
        let mut q = Qubo::new(4);
        q.set(3, 1, 5.0);
        assert_eq!(q.get(1, 3), 5.0);
        assert_eq!(q.get(3, 1), 5.0);
        q.add(1, 3, 1.0);
        assert_eq!(q.get(1, 3), 6.0);
    }

    #[test]
    fn ising_isomorphism_on_all_assignments() {
        let mut q = Qubo::new(4);
        q.set(0, 0, 2.0);
        q.set(1, 1, -1.0);
        q.set(0, 1, 3.0);
        q.set(1, 2, -2.5);
        q.set(0, 3, 0.5);
        q.set(2, 3, 1.5);
        let (ising, offset) = q.to_ising();
        for bits in 0..16u64 {
            let x: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
            let s = bits_to_spins(&x);
            let eq = q.energy(&x);
            let ei = ising.energy(&s) + offset;
            assert!(
                (eq - ei).abs() < 1e-9,
                "assignment {x:?}: qubo {eq} vs ising {ei}"
            );
        }
    }

    #[test]
    fn spin_bit_roundtrip() {
        let x = vec![true, false, true, true];
        assert_eq!(spins_to_bits(&bits_to_spins(&x)), x);
    }

    #[test]
    fn brute_force_finds_known_minimum() {
        // Minimise (x0 - x1)^2-ish: Q = x0 + x1 - 2 x0 x1 has minima at
        // 00 and 11 with energy 0.
        let mut q = Qubo::new(2);
        q.set(0, 0, 1.0);
        q.set(1, 1, 1.0);
        q.set(0, 1, -2.0);
        let (_, e) = q.brute_force_minimum();
        assert_eq!(e, 0.0);
        // Biased: reward x0=1.
        let mut q = Qubo::new(2);
        q.set(0, 0, -1.0);
        let (x, e) = q.brute_force_minimum();
        assert!(x[0]);
        assert_eq!(e, -1.0);
    }
}
