//! Simulated annealing: the classical baseline and the software stand-in
//! for the quantum annealer hardware we do not have.
//!
//! The paper's hybrid-optimisation stack runs "small chunks of
//! quantum circuits/anneals ... in burst, measured, and restarted"; this
//! sampler plays the anneal role, with a geometric inverse-temperature
//! schedule and Metropolis acceptance.

use crate::ising::Ising;
use crate::sampler::{SampleSet, Sampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A simulated annealing sampler over Ising models.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedAnnealer {
    /// Initial inverse temperature.
    pub beta_start: f64,
    /// Final inverse temperature.
    pub beta_end: f64,
    /// Number of temperature steps.
    pub steps: usize,
    /// Monte-Carlo sweeps (full spin passes) per temperature step.
    pub sweeps_per_step: usize,
    /// RNG seed; each read uses `seed + read_index`.
    pub seed: u64,
}

impl Default for SimulatedAnnealer {
    fn default() -> Self {
        SimulatedAnnealer {
            beta_start: 0.1,
            beta_end: 10.0,
            steps: 64,
            sweeps_per_step: 4,
            seed: 0xA11EA1,
        }
    }
}

impl SimulatedAnnealer {
    /// A default-configured annealer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs one anneal from a random start and returns the final state.
    pub fn anneal_once(&self, ising: &Ising, rng: &mut StdRng) -> Vec<i8> {
        let n = ising.len();
        let mut s: Vec<i8> = (0..n)
            .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
            .collect();
        if n == 0 {
            return s;
        }
        let ratio = if self.steps > 1 {
            (self.beta_end / self.beta_start).powf(1.0 / (self.steps as f64 - 1.0))
        } else {
            1.0
        };
        let mut beta = self.beta_start;
        for _ in 0..self.steps {
            for _ in 0..self.sweeps_per_step {
                for i in 0..n {
                    let delta = ising.flip_delta(&s, i);
                    if delta <= 0.0 || rng.gen_bool((-beta * delta).exp().min(1.0)) {
                        s[i] = -s[i];
                    }
                }
            }
            beta *= ratio;
        }
        s
    }
}

impl Sampler for SimulatedAnnealer {
    fn sample(&self, ising: &Ising, reads: u64) -> SampleSet {
        let mut all = Vec::with_capacity(reads as usize);
        for r in 0..reads {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(r));
            all.push(self.anneal_once(ising, &mut rng));
        }
        SampleSet::from_reads(ising, all)
    }

    fn name(&self) -> &str {
        "simulated-annealing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_ferromagnetic_ground_state() {
        let mut m = Ising::new(8);
        for i in 0..7 {
            m.add_coupling(i, i + 1, -1.0);
        }
        let set = SimulatedAnnealer::new().sample(&m, 10);
        assert_eq!(set.lowest_energy(), Some(-7.0));
        let best = set.best().unwrap();
        assert!(best.spins.iter().all(|&s| s == best.spins[0]));
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(33);
        for trial in 0..5 {
            let n = 10;
            let mut m = Ising::new(n);
            for i in 0..n {
                m.add_field(i, rng.gen_range(-1.0..1.0));
                for j in i + 1..n {
                    if rng.gen_bool(0.4) {
                        m.add_coupling(i, j, rng.gen_range(-1.0..1.0));
                    }
                }
            }
            let (_, exact) = m.brute_force_minimum();
            let set = SimulatedAnnealer::new().with_seed(trial).sample(&m, 20);
            let found = set.lowest_energy().unwrap();
            assert!(
                (found - exact).abs() < 1e-9,
                "trial {trial}: SA {found} vs exact {exact}"
            );
        }
    }

    #[test]
    fn respects_fields() {
        let mut m = Ising::new(3);
        m.add_field(0, 1.0);
        m.add_field(1, -1.0);
        let set = SimulatedAnnealer::new().sample(&m, 5);
        let best = set.best().unwrap();
        assert_eq!(best.spins[0], -1);
        assert_eq!(best.spins[1], 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut m = Ising::new(6);
        for i in 0..5 {
            m.add_coupling(i, i + 1, 1.0);
        }
        let a = SimulatedAnnealer::new().with_seed(9).sample(&m, 5);
        let b = SimulatedAnnealer::new().with_seed(9).sample(&m, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_model() {
        let m = Ising::new(0);
        let set = SimulatedAnnealer::new().sample(&m, 3);
        assert_eq!(set.lowest_energy(), Some(0.0));
    }
}
