//! The Chimera topology of D-Wave annealers and minor embedding.
//!
//! §3.3/§4.2 of the paper: superconducting annealers have *limited
//! connectivity*, so a problem must be minor-embedded — "combining several
//! physical qubits into a logical qubit" — which "considerably increases
//! the number of required qubits and also \[affects\] the quality of the
//! solution". The D-Wave 2000Q is a `C_16` Chimera: a 16x16 grid of
//! `K_{4,4}` unit cells (2048 qubits, 6016 couplers).

use crate::ising::Ising;
use std::collections::{HashMap, VecDeque};

/// A Chimera graph `C_m`: an `m x m` grid of `K_{4,4}` cells.
///
/// Qubit addressing: cell `(r, c)`, side (`0` = vertical partition,
/// couples north/south; `1` = horizontal partition, couples east/west),
/// offset `0..4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chimera {
    m: usize,
}

impl Chimera {
    /// Creates `C_m`.
    pub fn new(m: usize) -> Self {
        Chimera { m }
    }

    /// The D-Wave 2000Q topology, `C_16`.
    pub fn dwave_2000q() -> Self {
        Chimera::new(16)
    }

    /// Grid dimension `m`.
    pub fn dimension(&self) -> usize {
        self.m
    }

    /// Total qubits: `8 m^2`.
    pub fn qubit_count(&self) -> usize {
        8 * self.m * self.m
    }

    /// Total couplers: `16 m^2` intra-cell plus `8 m (m-1)` inter-cell.
    pub fn coupler_count(&self) -> usize {
        16 * self.m * self.m + 8 * self.m * (self.m - 1)
    }

    /// Packs an address into a qubit id.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    pub fn id(&self, r: usize, c: usize, side: usize, offset: usize) -> usize {
        assert!(r < self.m && c < self.m && side < 2 && offset < 4);
        ((r * self.m + c) * 2 + side) * 4 + offset
    }

    /// Unpacks a qubit id into `(row, col, side, offset)`.
    pub fn coords(&self, id: usize) -> (usize, usize, usize, usize) {
        let offset = id % 4;
        let side = (id / 4) % 2;
        let cell = id / 8;
        (cell / self.m, cell % self.m, side, offset)
    }

    /// Whether two qubits share a coupler.
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let (ra, ca, sa, oa) = self.coords(a);
        let (rb, cb, sb, ob) = self.coords(b);
        if ra == rb && ca == cb {
            // Intra-cell: complete bipartite between the two sides.
            return sa != sb;
        }
        if sa != sb || oa != ob {
            return false;
        }
        match sa {
            0 => ca == cb && ra.abs_diff(rb) == 1, // vertical: north/south
            _ => ra == rb && ca.abs_diff(cb) == 1, // horizontal: east/west
        }
    }

    /// Neighbouring qubits of `q`.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        let (r, c, side, offset) = self.coords(q);
        let mut out = Vec::with_capacity(6);
        // Intra-cell: the four qubits on the other side.
        for o in 0..4 {
            out.push(self.id(r, c, 1 - side, o));
        }
        match side {
            0 => {
                if r > 0 {
                    out.push(self.id(r - 1, c, 0, offset));
                }
                if r + 1 < self.m {
                    out.push(self.id(r + 1, c, 0, offset));
                }
            }
            _ => {
                if c > 0 {
                    out.push(self.id(r, c - 1, 1, offset));
                }
                if c + 1 < self.m {
                    out.push(self.id(r, c + 1, 1, offset));
                }
            }
        }
        out
    }
}

/// A minor embedding: one chain of physical qubits per logical variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Embedding {
    chains: Vec<Vec<usize>>,
}

/// Why an embedding is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbedError {
    /// Two chains share a physical qubit.
    Overlap(usize),
    /// A chain is not connected in the hardware graph.
    DisconnectedChain(usize),
    /// No coupler exists between two chains that must interact.
    MissingCoupler(usize, usize),
}

impl std::fmt::Display for EmbedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbedError::Overlap(q) => write!(f, "physical qubit {q} used by two chains"),
            EmbedError::DisconnectedChain(i) => write!(f, "chain {i} is disconnected"),
            EmbedError::MissingCoupler(i, j) => {
                write!(f, "no coupler between chains {i} and {j}")
            }
        }
    }
}

impl std::error::Error for EmbedError {}

impl Embedding {
    /// The chains (indexed by logical variable).
    pub fn chains(&self) -> &[Vec<usize>] {
        &self.chains
    }

    /// Number of logical variables.
    pub fn logical_count(&self) -> usize {
        self.chains.len()
    }

    /// Total physical qubits used.
    pub fn physical_count(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Longest chain length.
    pub fn max_chain_len(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Validates the embedding on `chimera` assuming all logical pairs
    /// interact (clique requirement).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify_clique(&self, chimera: &Chimera) -> Result<(), EmbedError> {
        // Disjointness.
        let mut seen = HashMap::new();
        for (i, chain) in self.chains.iter().enumerate() {
            for &q in chain {
                if seen.insert(q, i).is_some() {
                    return Err(EmbedError::Overlap(q));
                }
            }
        }
        // Connectivity of each chain.
        for (i, chain) in self.chains.iter().enumerate() {
            if !chain_connected(chain, chimera) {
                return Err(EmbedError::DisconnectedChain(i));
            }
        }
        // Every pair of chains has a coupler.
        for i in 0..self.chains.len() {
            for j in i + 1..self.chains.len() {
                let coupled = self.chains[i]
                    .iter()
                    .any(|&a| self.chains[j].iter().any(|&b| chimera.are_coupled(a, b)));
                if !coupled {
                    return Err(EmbedError::MissingCoupler(i, j));
                }
            }
        }
        Ok(())
    }

    /// Decodes a physical sample by majority vote over each chain; ties
    /// resolve to `+1`. Returns `(logical spins, broken chain count)`.
    pub fn decode(&self, physical: &HashMap<usize, i8>) -> (Vec<i8>, usize) {
        let mut logical = Vec::with_capacity(self.chains.len());
        let mut broken = 0;
        for chain in &self.chains {
            let up = chain
                .iter()
                .filter(|q| physical.get(q).copied().unwrap_or(1) > 0)
                .count();
            let down = chain.len() - up;
            if up != 0 && down != 0 {
                broken += 1;
            }
            logical.push(if up >= down { 1 } else { -1 });
        }
        (logical, broken)
    }
}

fn chain_connected(chain: &[usize], chimera: &Chimera) -> bool {
    if chain.is_empty() {
        return false;
    }
    let set: std::collections::HashSet<usize> = chain.iter().copied().collect();
    let mut seen = std::collections::HashSet::new();
    let mut queue = VecDeque::from([chain[0]]);
    seen.insert(chain[0]);
    while let Some(q) = queue.pop_front() {
        for nb in chimera.neighbors(q) {
            if set.contains(&nb) && seen.insert(nb) {
                queue.push_back(nb);
            }
        }
    }
    seen.len() == chain.len()
}

/// The standard cross-shaped clique embedding: `K_n` fits `C_m` iff
/// `n <= 4m`, with chains of length `2m`.
///
/// Variable `i` (row `r = i/4`, offset `o = i%4`) owns the horizontal-side
/// qubits of offset `o` across row `r` plus the vertical-side qubits of
/// offset `o` down column `r`.
pub fn clique_embedding(n: usize, chimera: &Chimera) -> Option<Embedding> {
    let m = chimera.dimension();
    if n > 4 * m {
        return None;
    }
    let mut chains = Vec::with_capacity(n);
    for i in 0..n {
        let r = i / 4;
        let o = i % 4;
        let mut chain = Vec::with_capacity(2 * m);
        for c in 0..m {
            chain.push(chimera.id(r, c, 1, o)); // horizontal strip (row r)
        }
        for rr in 0..m {
            chain.push(chimera.id(rr, r, 0, o)); // vertical strip (col r)
        }
        chains.push(chain);
    }
    Some(Embedding { chains })
}

/// Largest clique size embeddable on `chimera` with this construction.
pub fn max_clique(chimera: &Chimera) -> usize {
    4 * chimera.dimension()
}

/// Embeds a (dense) logical Ising model onto Chimera hardware.
///
/// Chain edges get a ferromagnetic coupling `-chain_strength`; logical
/// fields spread uniformly over their chain; each logical coupling is
/// placed on one available physical coupler. Returns the physical model
/// (over a *compacted* index space) together with the embedding and the
/// compaction map.
pub fn embed_ising(
    logical: &Ising,
    chimera: &Chimera,
    chain_strength: f64,
) -> Option<EmbeddedProblem> {
    let n = logical.len();
    let embedding = clique_embedding(n, chimera)?;
    // Compact the used physical qubits.
    let mut phys_index: HashMap<usize, usize> = HashMap::new();
    for chain in embedding.chains() {
        for &q in chain {
            let next = phys_index.len();
            phys_index.entry(q).or_insert(next);
        }
    }
    let mut physical = Ising::new(phys_index.len());
    // Chain ferromagnetic couplings along hardware edges within the chain.
    for chain in embedding.chains() {
        for (a_pos, &a) in chain.iter().enumerate() {
            for &b in chain.iter().skip(a_pos + 1) {
                if chimera.are_coupled(a, b) {
                    physical.add_coupling(phys_index[&a], phys_index[&b], -chain_strength);
                }
            }
        }
    }
    // Fields spread over chains.
    for (i, chain) in embedding.chains().iter().enumerate() {
        let share = logical.field(i) / chain.len() as f64;
        if share != 0.0 {
            for &q in chain {
                physical.add_field(phys_index[&q], share);
            }
        }
    }
    // Logical couplings on the first available inter-chain coupler.
    for ((i, j), w) in logical.couplings() {
        if w == 0.0 {
            continue;
        }
        let mut placed = false;
        'outer: for &a in &embedding.chains()[i] {
            for &b in &embedding.chains()[j] {
                if chimera.are_coupled(a, b) {
                    physical.add_coupling(phys_index[&a], phys_index[&b], w);
                    placed = true;
                    break 'outer;
                }
            }
        }
        if !placed {
            return None;
        }
    }
    Some(EmbeddedProblem {
        physical,
        embedding,
        phys_index,
    })
}

/// An embedded problem: the physical Ising model plus decode metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddedProblem {
    /// The hardware-level Ising model over compacted indices.
    pub physical: Ising,
    /// Chains per logical variable (hardware qubit ids).
    pub embedding: Embedding,
    /// Hardware qubit id → compact physical index.
    pub phys_index: HashMap<usize, usize>,
}

impl EmbeddedProblem {
    /// Decodes a physical sample (compact index space) into logical spins.
    /// Returns `(logical spins, broken chains)`.
    pub fn decode(&self, sample: &[i8]) -> (Vec<i8>, usize) {
        let by_hw: HashMap<usize, i8> = self
            .phys_index
            .iter()
            .map(|(&hw, &idx)| (hw, sample[idx]))
            .collect();
        self.embedding.decode(&by_hw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::SimulatedAnnealer;
    use crate::sampler::Sampler;

    #[test]
    fn dwave_2000q_dimensions() {
        let c = Chimera::dwave_2000q();
        assert_eq!(c.qubit_count(), 2048);
        assert_eq!(c.coupler_count(), 6016);
    }

    #[test]
    fn id_coords_roundtrip() {
        let c = Chimera::new(4);
        for id in 0..c.qubit_count() {
            let (r, cc, s, o) = c.coords(id);
            assert_eq!(c.id(r, cc, s, o), id);
        }
    }

    #[test]
    fn coupling_structure() {
        let c = Chimera::new(2);
        // Intra-cell: vertical 0 couples to all horizontal.
        let v0 = c.id(0, 0, 0, 0);
        for o in 0..4 {
            assert!(c.are_coupled(v0, c.id(0, 0, 1, o)));
            assert!(!c.are_coupled(v0, c.id(0, 0, 0, o)), "same side uncoupled");
        }
        // Inter-cell vertical: same column, adjacent rows, same offset.
        assert!(c.are_coupled(c.id(0, 0, 0, 2), c.id(1, 0, 0, 2)));
        assert!(!c.are_coupled(c.id(0, 0, 0, 2), c.id(1, 0, 0, 3)));
        // Inter-cell horizontal: same row, adjacent cols.
        assert!(c.are_coupled(c.id(0, 0, 1, 1), c.id(0, 1, 1, 1)));
        assert!(!c.are_coupled(c.id(0, 0, 1, 1), c.id(1, 1, 1, 1)));
    }

    #[test]
    fn neighbor_list_is_symmetric() {
        let c = Chimera::new(3);
        for q in 0..c.qubit_count() {
            for nb in c.neighbors(q) {
                assert!(c.are_coupled(q, nb), "{q} ~ {nb}");
                assert!(c.neighbors(nb).contains(&q));
            }
        }
    }

    #[test]
    fn clique_embedding_is_valid_up_to_4m() {
        let c = Chimera::new(4);
        let e = clique_embedding(16, &c).expect("K16 fits C4");
        e.verify_clique(&c).expect("valid embedding");
        assert_eq!(e.max_chain_len(), 8); // 2m
        assert!(clique_embedding(17, &c).is_none());
    }

    #[test]
    fn dwave_2000q_max_clique_is_64() {
        let c = Chimera::dwave_2000q();
        assert_eq!(max_clique(&c), 64);
        let e = clique_embedding(64, &c).expect("K64 fits");
        e.verify_clique(&c).expect("valid K64 embedding");
        assert_eq!(e.physical_count(), 64 * 32);
    }

    #[test]
    fn embedded_problem_recovers_logical_optimum() {
        // Frustrated 5-spin dense model, solved natively vs embedded.
        let mut logical = Ising::new(5);
        logical.add_field(0, 0.6);
        logical.add_field(3, -0.4);
        for i in 0..5 {
            for j in i + 1..5 {
                logical.add_coupling(i, j, if (i + j) % 2 == 0 { 0.5 } else { -0.5 });
            }
        }
        let (_, exact) = logical.brute_force_minimum();
        let chimera = Chimera::new(2);
        let emb = embed_ising(&logical, &chimera, 2.0).expect("K5 fits C2");
        let sa = SimulatedAnnealer::new().with_seed(7);
        let set = sa.sample(&emb.physical, 30);
        let best = set.best().unwrap();
        let (decoded, broken) = emb.decode(&best.spins);
        let achieved = logical.energy(&decoded);
        assert!(
            (achieved - exact).abs() < 1e-9,
            "embedded solve {achieved} vs exact {exact} ({broken} broken chains)"
        );
    }

    #[test]
    fn decode_counts_broken_chains() {
        let c = Chimera::new(2);
        let e = clique_embedding(2, &c).unwrap();
        let mut sample = HashMap::new();
        // Chain 0 uniformly up; chain 1 split.
        for &q in &e.chains()[0] {
            sample.insert(q, 1i8);
        }
        for (k, &q) in e.chains()[1].iter().enumerate() {
            sample.insert(q, if k % 2 == 0 { 1 } else { -1 });
        }
        let (spins, broken) = e.decode(&sample);
        assert_eq!(spins[0], 1);
        assert_eq!(broken, 1);
    }
}
