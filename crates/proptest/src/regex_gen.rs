//! A tiny regex-driven string *generator* (not matcher) backing the
//! string-literal [`Strategy`](crate::Strategy) impls.
//!
//! Supported subset — everything the workspace's property tests use:
//!
//! - literal characters, and `\x` escapes of metacharacters (`\.`, `\[`, ...);
//! - `\PC`, generating an arbitrary printable character;
//! - character classes `[...]` with literal chars and `a-z` ranges;
//! - groups `( ... | ... )` with alternation;
//! - quantifiers `?`, `*`, `+` and `{m,n}` / `{n}` on the preceding atom
//!   (`*`/`+` are capped at 8 repetitions).

use crate::TestRng;
use rand::Rng;

const STAR_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    Printable,
    Class(Vec<(char, char)>),
    Group(Vec<Vec<(Node, Quant)>>),
}

#[derive(Debug, Clone, Copy)]
struct Quant {
    min: u32,
    max: u32,
}

const ONCE: Quant = Quant { min: 1, max: 1 };

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset (unbalanced brackets,
/// dangling quantifiers).
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let seq = parse_sequence(&chars, &mut pos, /*in_group=*/ false);
    assert!(
        pos == chars.len(),
        "unsupported regex `{pattern}`: trailing input at {pos}"
    );
    let mut out = String::new();
    emit_sequence(&seq, rng, &mut out);
    out
}

fn parse_sequence(chars: &[char], pos: &mut usize, in_group: bool) -> Vec<(Node, Quant)> {
    let mut seq = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        if in_group && (c == '|' || c == ')') {
            break;
        }
        let node = match c {
            '(' => {
                *pos += 1;
                let mut alts = vec![parse_sequence(chars, pos, true)];
                while *pos < chars.len() && chars[*pos] == '|' {
                    *pos += 1;
                    alts.push(parse_sequence(chars, pos, true));
                }
                assert!(
                    *pos < chars.len() && chars[*pos] == ')',
                    "unbalanced group in regex"
                );
                *pos += 1;
                Node::Group(alts)
            }
            '[' => {
                *pos += 1;
                let mut ranges = Vec::new();
                while *pos < chars.len() && chars[*pos] != ']' {
                    let mut lo = chars[*pos];
                    if lo == '\\' {
                        *pos += 1;
                        lo = chars[*pos];
                    }
                    *pos += 1;
                    if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                        let hi = chars[*pos + 1];
                        *pos += 2;
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(
                    *pos < chars.len() && chars[*pos] == ']',
                    "unbalanced class in regex"
                );
                *pos += 1;
                Node::Class(ranges)
            }
            '\\' => {
                *pos += 1;
                let e = chars[*pos];
                *pos += 1;
                if e == 'P' || e == 'p' {
                    // `\PC` / `\pC`-style unicode category: treat as
                    // "printable character" (the only use in this repo).
                    assert!(*pos < chars.len(), "dangling \\P in regex");
                    *pos += 1; // consume the category letter
                    Node::Printable
                } else {
                    Node::Literal(e)
                }
            }
            _ => {
                *pos += 1;
                Node::Literal(c)
            }
        };
        let quant = parse_quant(chars, pos);
        seq.push((node, quant));
    }
    seq
}

fn parse_quant(chars: &[char], pos: &mut usize) -> Quant {
    if *pos >= chars.len() {
        return ONCE;
    }
    match chars[*pos] {
        '?' => {
            *pos += 1;
            Quant { min: 0, max: 1 }
        }
        '*' => {
            *pos += 1;
            Quant {
                min: 0,
                max: STAR_CAP,
            }
        }
        '+' => {
            *pos += 1;
            Quant {
                min: 1,
                max: STAR_CAP,
            }
        }
        '{' => {
            *pos += 1;
            let mut digits = String::new();
            while chars[*pos].is_ascii_digit() {
                digits.push(chars[*pos]);
                *pos += 1;
            }
            let min: u32 = digits.parse().expect("repetition count");
            let max = if chars[*pos] == ',' {
                *pos += 1;
                let mut digits = String::new();
                while chars[*pos].is_ascii_digit() {
                    digits.push(chars[*pos]);
                    *pos += 1;
                }
                digits.parse().expect("repetition bound")
            } else {
                min
            };
            assert!(chars[*pos] == '}', "unbalanced repetition in regex");
            *pos += 1;
            Quant { min, max }
        }
        _ => ONCE,
    }
}

fn emit_sequence(seq: &[(Node, Quant)], rng: &mut TestRng, out: &mut String) {
    for (node, quant) in seq {
        let reps = rng.gen_range(quant.min..=quant.max);
        for _ in 0..reps {
            emit_node(node, rng, out);
        }
    }
}

fn emit_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Printable => {
            // Mostly printable ASCII; occasionally a non-ASCII codepoint to
            // exercise multi-byte handling.
            if rng.gen_bool(0.9) {
                out.push(rng.gen_range(0x20u32..0x7F) as u8 as char);
            } else {
                let options = ['é', 'Ω', '中', '∀', '🙂'];
                out.push(options[rng.gen_range(0..options.len())]);
            }
        }
        Node::Class(ranges) => {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            let c = rng.gen_range(lo as u32..=hi as u32);
            out.push(char::from_u32(c).expect("class range stays in valid chars"));
        }
        Node::Group(alts) => {
            let alt = &alts[rng.gen_range(0..alts.len())];
            emit_sequence(alt, rng, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::new_test_rng;

    #[test]
    fn literals_pass_through() {
        let mut rng = new_test_rng(1);
        assert_eq!(generate("qubits 2", &mut rng), "qubits 2");
    }

    #[test]
    fn escapes_are_literal() {
        let mut rng = new_test_rng(1);
        assert_eq!(generate("\\.sub\\{", &mut rng), ".sub{");
    }

    #[test]
    fn classes_and_bounds() {
        let mut rng = new_test_rng(2);
        for _ in 0..200 {
            let s = generate("[0-9]{1,3}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 3, "{s:?}");
            assert!(s.bytes().all(|b| b.is_ascii_digit()), "{s:?}");
        }
    }

    #[test]
    fn alternation_picks_each_arm() {
        let mut rng = new_test_rng(3);
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..100 {
            match generate("(aa|bb)", &mut rng).as_str() {
                "aa" => seen_a = true,
                "bb" => seen_b = true,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(seen_a && seen_b);
    }

    #[test]
    fn printable_category() {
        let mut rng = new_test_rng(4);
        for _ in 0..100 {
            let s = generate("\\PC{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn token_soup_pattern_from_the_test_suite() {
        let mut rng = new_test_rng(5);
        for _ in 0..100 {
            // The exact pattern tests/roundtrip.rs feeds the parser.
            let _ = generate(
                "(qubits|version|h|cnot|rx|measure|\\.sub|\\{|error_model)? ?(q\\[[0-9]{1,3}\\]|b\\[[0-9]\\]|[0-9.]{1,6}|,)*",
                &mut rng,
            );
        }
    }

    #[test]
    fn optional_literal() {
        let mut rng = new_test_rng(6);
        let mut empty = false;
        let mut full = false;
        for _ in 0..100 {
            match generate("x?", &mut rng).as_str() {
                "" => empty = true,
                "x" => full = true,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(empty && full);
    }
}
