//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of proptest that the workspace's property tests use:
//!
//! - the [`Strategy`] trait with `prop_map` / `prop_flat_map`;
//! - [`Just`], integer/float range strategies, tuple strategies, and
//!   string-literal strategies driven by a mini regex generator;
//! - [`collection::vec`] and [`sample::subsequence`];
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! - [`ProptestConfig`] with `with_cases`.
//!
//! There is **no shrinking**: a failing case panics with the case number so
//! the deterministic per-test RNG stream can reproduce it.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

pub mod regex_gen;

/// The RNG handed to strategies. Deterministic per test function.
pub type TestRng = StdRng;

/// Creates the deterministic RNG behind one `proptest!` test function.
/// (Public so the macro expansion can call it from any crate.)
pub fn new_test_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// Runtime configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// String literals are strategies: the literal is interpreted as a regex
/// and generates matching strings (see [`regex_gen`] for the supported
/// subset).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

/// Weighted union of strategies, built by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> Union<V> {
    /// Creates a union from weighted arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding a random subsequence of exactly `count` elements
    /// of `values`, preserving their original relative order.
    ///
    /// # Panics
    ///
    /// Panics (on generation) if `count > values.len()`.
    pub fn subsequence<T: Clone>(values: Vec<T>, count: usize) -> Subsequence<T> {
        Subsequence { values, count }
    }

    /// Output of [`subsequence`].
    pub struct Subsequence<T> {
        values: Vec<T>,
        count: usize,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            assert!(
                self.count <= self.values.len(),
                "subsequence of {} from {} elements",
                self.count,
                self.values.len()
            );
            // Partial Fisher-Yates over the index set, then restore order.
            let mut idx: Vec<usize> = (0..self.values.len()).collect();
            for i in 0..self.count {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            let mut chosen = idx[..self.count].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

/// Picks one strategy from weighted (`w => strat`) or unweighted arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        if a != b {
            return Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
}

/// Declares property tests. Each `fn name(binding in strategy, ...)` body
/// runs for the configured number of random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($config) $($rest)*);
    };
    (@block ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Deterministic stream, perturbed per test name.
                let mut seed: u64 = 0xA11C_E5EE_D000_0000;
                for b in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(31).wrapping_add(b as u64);
                }
                let mut rng = $crate::new_test_rng(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let result: Result<(), String> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(msg) = result {
                        panic!(
                            "proptest `{}` failed at case {case}/{}: {msg}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tag {
        A,
        B(i32),
    }

    fn arb_tag() -> impl Strategy<Value = Tag> {
        prop_oneof![
            3 => Just(Tag::A),
            1 => (-4i32..4).prop_map(Tag::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 2usize..9, y in -1.0..1.0) {
            prop_assert!((2..9).contains(&x), "x={x}");
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps(v in collection_of_tags()) {
            for t in &v {
                if let Tag::B(k) = t {
                    prop_assert!((-4..4).contains(k));
                }
            }
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn subsequences_are_sorted_and_distinct(qs in crate::sample::subsequence((0..8usize).collect::<Vec<_>>(), 3)) {
            prop_assert_eq!(qs.len(), 3);
            prop_assert!(qs.windows(2).all(|w| w[0] < w[1]), "{qs:?}");
        }

        #[test]
        fn regex_strategy_generates_matching(s in "[0-9]{1,3}") {
            prop_assert!(!s.is_empty() && s.len() <= 3, "{s:?}");
            prop_assert!(s.bytes().all(|b| b.is_ascii_digit()), "{s:?}");
        }
    }

    fn collection_of_tags() -> impl Strategy<Value = Vec<Tag>> {
        crate::collection::vec(arb_tag(), 0..10)
    }

    #[test]
    fn union_respects_weights_roughly() {
        use rand::SeedableRng;
        let s = arb_tag();
        let mut rng = crate::TestRng::seed_from_u64(1);
        let n = 4000;
        let a = (0..n)
            .filter(|_| matches!(s.generate(&mut rng), Tag::A))
            .count();
        let frac = a as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.05, "A fraction {frac}");
    }

    #[test]
    fn flat_map_builds_dependent_values() {
        use rand::SeedableRng;
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0usize..10, n..n + 1));
        let mut rng = crate::TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
