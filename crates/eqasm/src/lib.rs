//! # eqasm — executable QASM and the quantum micro-architecture
//!
//! This crate is the bottom digital layer of the full-stack accelerator of
//! Bertels et al. (DATE 2020, §2.5 and §3.1): the eQASM instruction set
//! ([`EqasmProgram`]), the backend compiler pass from scheduled cQASM
//! ([`translate()`]), the retargetable micro-code unit ([`MicrocodeTable`])
//! and a cycle-accurate micro-architecture executor
//! ([`MicroArchitecture`]) that drives either the QX simulator
//! ([`QxDevice`]) or a pulse-only sink ([`PulseOnlyDevice`]).
//!
//! The end-to-end pipeline of Fig 6 — algorithm → OpenQL → cQASM → eQASM →
//! micro-code → code-words → pulses — runs entirely in software here; the
//! analogue transduction is replaced by timestamped [`PulseEvent`] records.
//!
//! # Example
//!
//! ```
//! use eqasm::{MicroArchitecture, QxDevice, translate};
//! use openql::{Compiler, Kernel, Platform, QuantumProgram};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut k = Kernel::new("bell", 2);
//! k.h(0).cnot(0, 1).measure_all();
//! let mut p = QuantumProgram::new("demo", 2);
//! p.add_kernel(k);
//!
//! let out = Compiler::new(Platform::superconducting_grid(1, 2)).compile(&p)?;
//! let eq = translate(&out.schedule)?;
//! let mut device = QxDevice::perfect(2);
//! let trace = MicroArchitecture::superconducting().execute(&eq, &mut device)?;
//! assert_eq!(trace.bit(0), trace.bit(1)); // Bell correlation
//! # Ok(())
//! # }
//! ```

// Library paths must return typed errors, never abort (CI gates these
// lints); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod device;
pub mod isa;
pub mod microarch;
pub mod microcode;
pub mod translate;

pub use device::{PulseOnlyDevice, QuantumDevice, QxDevice};
pub use isa::{Condition, EqInstruction, EqasmProgram, Operand, QOp, QOpcode};
pub use microarch::{ExecError, ExecutionTrace, MicroArchitecture, PulseEvent};
pub use microcode::{ChannelKind, CodewordEntry, MicrocodeTable};
pub use translate::{translate, translate_traced, verify_translation, TranslateError};
