//! The eQASM instruction set (after Fu et al., reference 27 of the paper).
//!
//! eQASM is the *executable* QASM: the compiler backend lowers cQASM into
//! this ISA, which a classical micro-architecture executes with
//! nanosecond-precise timing. The set combines:
//!
//! - classical ALU/branch instructions executed by the control processor;
//! - target-register setup (`SMIS`/`SMIT`) naming qubit (pair) masks;
//! - timing instructions (`QWAIT`);
//! - very-long-instruction-word quantum bundles, each carrying a
//!   *pre-interval* — the number of cycles between the previous bundle's
//!   issue point and this one.

use cqasm::GateKind;
use std::fmt;

/// Comparison conditions for branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// Branch always.
    Always,
    /// Branch if the last comparison was equal.
    Eq,
    /// Branch if the last comparison was not equal.
    Ne,
    /// Branch if less than.
    Lt,
    /// Branch if greater than or equal.
    Ge,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Condition::Always => "always",
            Condition::Eq => "eq",
            Condition::Ne => "ne",
            Condition::Lt => "lt",
            Condition::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// A quantum operation inside a bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct QOp {
    /// What to apply.
    pub opcode: QOpcode,
    /// Which target register selects the operand qubits.
    pub operand: Operand,
}

/// Quantum opcodes the micro-code unit understands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QOpcode {
    /// A unitary from the cQASM library (must be platform-native).
    Gate(GateKind),
    /// Z-basis measurement.
    MeasZ,
    /// Initialisation to `|0>`.
    PrepZ,
}

impl QOpcode {
    /// Mnemonic used for micro-code lookup and disassembly.
    pub fn mnemonic(&self) -> String {
        match self {
            QOpcode::Gate(g) => g.mnemonic().to_owned(),
            QOpcode::MeasZ => "measz".to_owned(),
            QOpcode::PrepZ => "prepz".to_owned(),
        }
    }
}

/// A target-register operand: `S` registers hold single-qubit masks, `T`
/// registers hold qubit-pair lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Single-qubit target register index.
    S(u8),
    /// Two-qubit target register index.
    T(u8),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::S(i) => write!(f, "s{i}"),
            Operand::T(i) => write!(f, "t{i}"),
        }
    }
}

/// One eQASM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum EqInstruction {
    /// Load immediate into a general-purpose register.
    Ldi {
        /// Destination register.
        rd: u8,
        /// Immediate value.
        imm: i64,
    },
    /// `rd = rs + rt`.
    Add {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd = rs - rt`.
    Sub {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// Fetch measurement result of a qubit into a register.
    Fmr {
        /// Destination register.
        rd: u8,
        /// Physical qubit whose measurement result file is read.
        qubit: usize,
    },
    /// Compare two registers, setting flags for a following branch.
    Cmp {
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// Relative branch by `offset` instructions when `cond` holds.
    Br {
        /// Branch condition.
        cond: Condition,
        /// Signed instruction offset from the *next* instruction.
        offset: i64,
    },
    /// Define a single-qubit target mask.
    Smis {
        /// S-register to define.
        sd: u8,
        /// Qubits in the mask.
        qubits: Vec<usize>,
    },
    /// Define a two-qubit target list.
    Smit {
        /// T-register to define.
        td: u8,
        /// Ordered qubit pairs.
        pairs: Vec<(usize, usize)>,
    },
    /// Advance the quantum timing queue by `cycles`.
    Qwait {
        /// Idle cycles.
        cycles: u64,
    },
    /// A quantum bundle: all `ops` issue `pre_interval` cycles after the
    /// previous bundle's issue point.
    Bundle {
        /// Cycles since the previous quantum issue point.
        pre_interval: u64,
        /// Parallel quantum operations.
        ops: Vec<QOp>,
    },
    /// No operation.
    Nop,
    /// Halt execution.
    Stop,
}

impl fmt::Display for EqInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EqInstruction::Ldi { rd, imm } => write!(f, "ldi r{rd}, {imm}"),
            EqInstruction::Add { rd, rs, rt } => write!(f, "add r{rd}, r{rs}, r{rt}"),
            EqInstruction::Sub { rd, rs, rt } => write!(f, "sub r{rd}, r{rs}, r{rt}"),
            EqInstruction::Fmr { rd, qubit } => write!(f, "fmr r{rd}, q{qubit}"),
            EqInstruction::Cmp { rs, rt } => write!(f, "cmp r{rs}, r{rt}"),
            EqInstruction::Br { cond, offset } => write!(f, "br {cond}, {offset:+}"),
            EqInstruction::Smis { sd, qubits } => {
                write!(f, "smis s{sd}, {{")?;
                for (i, q) in qubits.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{q}")?;
                }
                write!(f, "}}")
            }
            EqInstruction::Smit { td, pairs } => {
                write!(f, "smit t{td}, {{")?;
                for (i, (a, b)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "({a},{b})")?;
                }
                write!(f, "}}")
            }
            EqInstruction::Qwait { cycles } => write!(f, "qwait {cycles}"),
            EqInstruction::Bundle { pre_interval, ops } => {
                write!(f, "{pre_interval}: ")?;
                for (i, op) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{} {}", op.opcode.mnemonic(), op.operand)?;
                }
                Ok(())
            }
            EqInstruction::Nop => f.write_str("nop"),
            EqInstruction::Stop => f.write_str("stop"),
        }
    }
}

/// A complete eQASM program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EqasmProgram {
    instructions: Vec<EqInstruction>,
    qubit_count: usize,
}

impl EqasmProgram {
    /// Creates an empty program over `qubit_count` physical qubits.
    pub fn new(qubit_count: usize) -> Self {
        EqasmProgram {
            instructions: Vec::new(),
            qubit_count,
        }
    }

    /// Physical qubits addressed.
    pub fn qubit_count(&self) -> usize {
        self.qubit_count
    }

    /// The instruction stream.
    pub fn instructions(&self) -> &[EqInstruction] {
        &self.instructions
    }

    /// Mutable access to the instruction stream (fault injection and
    /// program surgery in tests and the chaos harness).
    pub fn instructions_mut(&mut self) -> &mut [EqInstruction] {
        &mut self.instructions
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: EqInstruction) {
        self.instructions.push(instruction);
    }

    /// Number of quantum bundles in the stream.
    pub fn bundle_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, EqInstruction::Bundle { .. }))
            .count()
    }
}

impl Extend<EqInstruction> for EqasmProgram {
    fn extend<T: IntoIterator<Item = EqInstruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

impl fmt::Display for EqasmProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# eqasm, {} qubits", self.qubit_count)?;
        for ins in &self.instructions {
            writeln!(f, "{ins}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            EqInstruction::Ldi { rd: 1, imm: -3 }.to_string(),
            "ldi r1, -3"
        );
        assert_eq!(
            EqInstruction::Smis {
                sd: 2,
                qubits: vec![0, 3]
            }
            .to_string(),
            "smis s2, {0, 3}"
        );
        assert_eq!(
            EqInstruction::Smit {
                td: 0,
                pairs: vec![(0, 1)]
            }
            .to_string(),
            "smit t0, {(0,1)}"
        );
        assert_eq!(EqInstruction::Qwait { cycles: 4 }.to_string(), "qwait 4");
        assert_eq!(
            EqInstruction::Br {
                cond: Condition::Eq,
                offset: 2
            }
            .to_string(),
            "br eq, +2"
        );
        let b = EqInstruction::Bundle {
            pre_interval: 1,
            ops: vec![
                QOp {
                    opcode: QOpcode::Gate(GateKind::X90),
                    operand: Operand::S(0),
                },
                QOp {
                    opcode: QOpcode::Gate(GateKind::Cz),
                    operand: Operand::T(1),
                },
            ],
        };
        assert_eq!(b.to_string(), "1: x90 s0 | cz t1");
    }

    #[test]
    fn program_accumulates() {
        let mut p = EqasmProgram::new(2);
        p.push(EqInstruction::Smis {
            sd: 0,
            qubits: vec![0],
        });
        p.push(EqInstruction::Bundle {
            pre_interval: 0,
            ops: vec![QOp {
                opcode: QOpcode::Gate(GateKind::X90),
                operand: Operand::S(0),
            }],
        });
        p.push(EqInstruction::Stop);
        assert_eq!(p.instructions().len(), 3);
        assert_eq!(p.bundle_count(), 1);
        assert!(p.to_string().contains("x90 s0"));
    }

    #[test]
    fn opcode_mnemonics() {
        assert_eq!(QOpcode::MeasZ.mnemonic(), "measz");
        assert_eq!(QOpcode::Gate(GateKind::Cz).mnemonic(), "cz");
        assert_eq!(QOpcode::PrepZ.mnemonic(), "prepz");
    }
}
