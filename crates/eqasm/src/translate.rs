//! The backend compiler pass: scheduled cQASM → eQASM.
//!
//! This is the "second back-end compiler pass that translates cQASM into
//! the eQASM version" described in §3.1 of the paper. The input is an
//! OpenQL [`openql::Schedule`] (cycle-annotated instructions in physical
//! operand space); the output is an [`EqasmProgram`] whose bundles carry
//! pre-interval timing and whose operands are SMIS/SMIT target registers.

use crate::isa::{Condition, EqInstruction, EqasmProgram, Operand, QOp, QOpcode};
use cqasm::{GateKind, Instruction};
use openql::Schedule;
use std::collections::HashMap;
use std::error::Error as StdError;
use std::fmt;

/// Errors from the backend pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The instruction cannot be expressed in eQASM (e.g. a gate of arity
    /// three reached the backend; decompose first).
    Unsupported(String),
    /// Differential verification found the eQASM diverging from its
    /// cQASM source (see [`verify_translation`]).
    VerificationFailed(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Unsupported(m) => write!(f, "cannot translate to eqasm: {m}"),
            TranslateError::VerificationFailed(m) => {
                write!(f, "eqasm translation failed differential verification: {m}")
            }
        }
    }
}

impl StdError for TranslateError {}

/// Scratch registers used by conditional-gate expansion.
const REG_ZERO: u8 = 0;
const REG_MEAS: u8 = 1;

/// Round-robin allocator for target registers, reusing exact mask matches.
struct TargetRegs<K> {
    map: HashMap<K, u8>,
    next: u8,
    capacity: u8,
}

impl<K: std::hash::Hash + Eq + Clone> TargetRegs<K> {
    fn new(capacity: u8) -> Self {
        TargetRegs {
            map: HashMap::new(),
            next: 0,
            capacity,
        }
    }

    /// Returns `(register, needs_definition)`.
    fn get(&mut self, key: &K) -> (u8, bool) {
        if let Some(&r) = self.map.get(key) {
            return (r, false);
        }
        let r = self.next;
        self.next = (self.next + 1) % self.capacity;
        // Evict whatever key previously used this register.
        self.map.retain(|_, v| *v != r);
        self.map.insert(key.clone(), r);
        (r, true)
    }
}

/// [`translate`] under a telemetry span (category `eqasm`), recording the
/// emitted instruction and bundle counts.
///
/// # Errors
///
/// Same as [`translate`].
pub fn translate_traced(
    schedule: &Schedule,
    telemetry: &qca_telemetry::Telemetry,
) -> Result<EqasmProgram, TranslateError> {
    let out = {
        let _span = telemetry.span("eqasm", "translate");
        translate(schedule)?
    };
    if telemetry.is_enabled() {
        telemetry.incr("eqasm.translations", 1);
        telemetry.incr(
            "eqasm.instructions.emitted",
            out.instructions().len() as u64,
        );
        telemetry.incr("eqasm.bundles.emitted", out.bundle_count() as u64);
    }
    Ok(out)
}

/// Translates a schedule into eQASM.
///
/// # Errors
///
/// Returns [`TranslateError::Unsupported`] for instructions outside the
/// eQASM model (three-qubit gates, nested bundles).
pub fn translate(schedule: &Schedule) -> Result<EqasmProgram, TranslateError> {
    let n = schedule.qubit_count();
    let mut out = EqasmProgram::new(n);
    let mut sregs: TargetRegs<Vec<usize>> = TargetRegs::new(32);
    let mut tregs: TargetRegs<Vec<(usize, usize)>> = TargetRegs::new(32);
    out.push(EqInstruction::Ldi {
        rd: REG_ZERO,
        imm: 0,
    });

    let mut prev_issue: u64 = 0;
    let items = schedule.items();
    let mut i = 0usize;
    while i < items.len() {
        let start = items[i].start;
        // Collect the cycle's instructions.
        let mut slot = Vec::new();
        while i < items.len() && items[i].start == start {
            slot.push(&items[i].instruction);
            i += 1;
        }
        let pre_interval = start - prev_issue;
        prev_issue = start;

        // Split unconditional ops from conditionals.
        let mut ops: Vec<QOp> = Vec::new();
        let mut conditionals: Vec<(usize, &cqasm::GateApp)> = Vec::new();
        // Group unconditional gates by (opcode, arity) preserving kind
        // equality, accumulating masks.
        let mut one_q: Vec<(GateKind, Vec<usize>)> = Vec::new();
        let mut two_q: Vec<(GateKind, Vec<(usize, usize)>)> = Vec::new();
        let mut meas: Vec<usize> = Vec::new();
        let mut preps: Vec<usize> = Vec::new();

        for ins in slot {
            match ins {
                Instruction::Gate(g) => match g.qubits.len() {
                    1 => add_grouped(&mut one_q, g.kind, g.qubits[0].index()),
                    2 => add_grouped_pairs(
                        &mut two_q,
                        g.kind,
                        (g.qubits[0].index(), g.qubits[1].index()),
                    ),
                    _ => {
                        return Err(TranslateError::Unsupported(format!(
                            "{}-qubit gate `{}`",
                            g.qubits.len(),
                            g.kind
                        )));
                    }
                },
                Instruction::Cond(bit, g) => conditionals.push((bit.index(), g)),
                Instruction::Measure(q) => meas.push(q.index()),
                Instruction::MeasureAll => meas.extend(0..n),
                Instruction::PrepZ(q) => preps.push(q.index()),
                Instruction::Wait(_) | Instruction::Display => {}
                Instruction::Bundle(_) => {
                    return Err(TranslateError::Unsupported(
                        "nested bundle in schedule".to_owned(),
                    ));
                }
            }
        }

        for (kind, qubits) in &one_q {
            let (reg, fresh) = sregs.get(qubits);
            if fresh {
                out.push(EqInstruction::Smis {
                    sd: reg,
                    qubits: qubits.clone(),
                });
            }
            ops.push(QOp {
                opcode: QOpcode::Gate(*kind),
                operand: Operand::S(reg),
            });
        }
        for (kind, pairs) in &two_q {
            let (reg, fresh) = tregs.get(pairs);
            if fresh {
                out.push(EqInstruction::Smit {
                    td: reg,
                    pairs: pairs.clone(),
                });
            }
            ops.push(QOp {
                opcode: QOpcode::Gate(*kind),
                operand: Operand::T(reg),
            });
        }
        if !preps.is_empty() {
            let mut qs = preps.clone();
            qs.sort_unstable();
            let (reg, fresh) = sregs.get(&qs);
            if fresh {
                out.push(EqInstruction::Smis {
                    sd: reg,
                    qubits: qs,
                });
            }
            ops.push(QOp {
                opcode: QOpcode::PrepZ,
                operand: Operand::S(reg),
            });
        }
        if !meas.is_empty() {
            let mut qs = meas.clone();
            qs.sort_unstable();
            qs.dedup();
            let (reg, fresh) = sregs.get(&qs);
            if fresh {
                out.push(EqInstruction::Smis {
                    sd: reg,
                    qubits: qs,
                });
            }
            ops.push(QOp {
                opcode: QOpcode::MeasZ,
                operand: Operand::S(reg),
            });
        }

        if !ops.is_empty() {
            out.push(EqInstruction::Bundle { pre_interval, ops });
        } else if pre_interval > 0 && conditionals.is_empty() {
            out.push(EqInstruction::Qwait {
                cycles: pre_interval,
            });
        }

        // Conditional gates: fetch the measurement result and branch over a
        // single-op bundle when the bit is zero.
        for (bit, g) in conditionals {
            if g.qubits.len() != 1 {
                return Err(TranslateError::Unsupported(
                    "conditional multi-qubit gate".to_owned(),
                ));
            }
            out.push(EqInstruction::Fmr {
                rd: REG_MEAS,
                qubit: bit,
            });
            out.push(EqInstruction::Cmp {
                rs: REG_MEAS,
                rt: REG_ZERO,
            });
            let qubits = vec![g.qubits[0].index()];
            let (reg, fresh) = sregs.get(&qubits);
            if fresh {
                out.push(EqInstruction::Smis { sd: reg, qubits });
            }
            out.push(EqInstruction::Br {
                cond: Condition::Eq,
                offset: 1,
            });
            out.push(EqInstruction::Bundle {
                pre_interval: 0,
                ops: vec![QOp {
                    opcode: QOpcode::Gate(g.kind),
                    operand: Operand::S(reg),
                }],
            });
        }
    }
    out.push(EqInstruction::Stop);
    Ok(out)
}

/// Differentially verifies a translation: reconstructs the gate sequence
/// the eQASM program executes (replaying SMIS/SMIT register definitions
/// through its bundles) and checks it implements the same unitary as the
/// scheduled cQASM, up to global phase, on circuits of up to
/// [`openql::MAX_VERIFY_QUBITS`] qubits.
///
/// Conditional execution is reconstructed too: the translator's
/// `fmr; cmp; br eq, 1; bundle` pattern round-trips to a cQASM
/// binary-controlled gate, and the per-branch verifier checks every
/// assignment of measurement outcomes.
///
/// Returns `Ok(true)` when the check ran and passed and `Ok(false)` when
/// the program is outside the decidable shape (too large, mid-circuit
/// state preparation, control flow not matching the translator's
/// conditional pattern).
///
/// # Errors
///
/// [`TranslateError::VerificationFailed`] when the eQASM provably
/// diverges from the schedule.
pub fn verify_translation(
    schedule: &Schedule,
    program: &EqasmProgram,
) -> Result<bool, TranslateError> {
    let n = schedule.qubit_count();
    let Some(reconstructed) = reconstruct(program, n) else {
        return Ok(false);
    };
    let reconstructed = reconstructed
        .try_build()
        .map_err(|e| TranslateError::VerificationFailed(format!("bad operands in eqasm: {e}")))?;
    match openql::verify_pass(&schedule.to_program(), &reconstructed, "translate") {
        Ok(ran) => Ok(ran),
        Err(e) => Err(TranslateError::VerificationFailed(e.to_string())),
    }
}

/// Replays an eQASM program's mask-register state to recover the cQASM
/// gate/measure sequence it encodes, including the translator's
/// conditional pattern (`fmr rd, q; cmp rd, zero; br eq, 1; bundle`),
/// which round-trips to `c-<gate> b[q], ...`. `None` when the program
/// uses control flow outside that pattern.
fn reconstruct(program: &EqasmProgram, n: usize) -> Option<cqasm::ProgramBuilder> {
    let mut sregs: HashMap<u8, Vec<usize>> = HashMap::new();
    let mut tregs: HashMap<u8, Vec<(usize, usize)>> = HashMap::new();
    // Registers currently holding the constant zero, so the cmp against
    // the measurement register can be recognised in either operand order.
    let mut zero_regs: Vec<u8> = Vec::new();
    let mut b = cqasm::Program::builder(n);
    let instrs = program.instructions();
    let mut i = 0usize;
    while i < instrs.len() {
        match &instrs[i] {
            EqInstruction::Smis { sd, qubits } => {
                sregs.insert(*sd, qubits.clone());
            }
            EqInstruction::Smit { td, pairs } => {
                tregs.insert(*td, pairs.clone());
            }
            EqInstruction::Bundle { ops, .. } => {
                for op in ops {
                    b = reconstruct_op(op, &sregs, &tregs, b)?;
                }
            }
            EqInstruction::Ldi { rd, imm } => {
                zero_regs.retain(|r| r != rd);
                if *imm == 0 {
                    zero_regs.push(*rd);
                }
            }
            EqInstruction::Add { rd, .. } | EqInstruction::Sub { rd, .. } => {
                // Conservative: an arithmetic result is not a known zero.
                zero_regs.retain(|r| r != rd);
            }
            EqInstruction::Qwait { .. } | EqInstruction::Nop | EqInstruction::Stop => {}
            EqInstruction::Fmr { rd, qubit } => {
                // Expect the conditional pattern emitted by `translate`:
                //   fmr rd, q ; cmp rd, zero ; [smis/smit ...] ; br eq, 1 ;
                //   bundle { <gates> }
                // `br eq, 1` skips the bundle when the bit equals zero, so
                // the bundle's gates execute iff bit q is one.
                let bit = *qubit;
                let meas_reg = *rd;
                zero_regs.retain(|r| r != &meas_reg);
                let mut j = i + 1;
                let EqInstruction::Cmp { rs, rt } = instrs.get(j)? else {
                    return None;
                };
                let against_zero = (*rs == meas_reg && zero_regs.contains(rt))
                    || (*rt == meas_reg && zero_regs.contains(rs));
                if !against_zero {
                    return None;
                }
                j += 1;
                while let Some(EqInstruction::Smis { sd, qubits }) = instrs.get(j) {
                    sregs.insert(*sd, qubits.clone());
                    j += 1;
                }
                let EqInstruction::Br {
                    cond: Condition::Eq,
                    offset: 1,
                } = instrs.get(j)?
                else {
                    return None;
                };
                j += 1;
                let EqInstruction::Bundle { ops, .. } = instrs.get(j)? else {
                    return None;
                };
                for op in ops {
                    match (&op.opcode, &op.operand) {
                        (QOpcode::Gate(kind), Operand::S(reg)) => {
                            for &q in sregs.get(reg)? {
                                b = b.cond(bit, *kind, &[q]);
                            }
                        }
                        _ => return None,
                    }
                }
                i = j + 1;
                continue;
            }
            // A compare or branch outside the conditional pattern is
            // control flow the verifier cannot model.
            EqInstruction::Cmp { .. } | EqInstruction::Br { .. } => return None,
        }
        i += 1;
    }
    Some(b)
}

fn reconstruct_op(
    op: &QOp,
    sregs: &HashMap<u8, Vec<usize>>,
    tregs: &HashMap<u8, Vec<(usize, usize)>>,
    mut b: cqasm::ProgramBuilder,
) -> Option<cqasm::ProgramBuilder> {
    match (&op.opcode, &op.operand) {
        (QOpcode::Gate(kind), Operand::S(reg)) => {
            for &q in sregs.get(reg)? {
                b = b.gate(*kind, &[q]);
            }
        }
        (QOpcode::Gate(kind), Operand::T(reg)) => {
            for &(a, c) in tregs.get(reg)? {
                b = b.gate(*kind, &[a, c]);
            }
        }
        (QOpcode::MeasZ, Operand::S(reg)) => {
            for &q in sregs.get(reg)? {
                b = b.measure(q);
            }
        }
        // prep_z is non-unitary; outside the decidable shape.
        (QOpcode::PrepZ, _) => return None,
        _ => return None,
    }
    Some(b)
}

fn add_grouped(groups: &mut Vec<(GateKind, Vec<usize>)>, kind: GateKind, q: usize) {
    for (k, qs) in groups.iter_mut() {
        if *k == kind {
            qs.push(q);
            qs.sort_unstable();
            return;
        }
    }
    groups.push((kind, vec![q]));
}

fn add_grouped_pairs(
    groups: &mut Vec<(GateKind, Vec<(usize, usize)>)>,
    kind: GateKind,
    pair: (usize, usize),
) {
    for (k, ps) in groups.iter_mut() {
        if *k == kind {
            ps.push(pair);
            return;
        }
    }
    groups.push((kind, vec![pair]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use openql::{schedule, Platform, ScheduleDirection};

    fn schedule_of(src: &str, platform: &Platform) -> Schedule {
        let p = cqasm::Program::parse(src).unwrap();
        schedule(&p, platform, ScheduleDirection::Asap)
    }

    #[test]
    fn bell_translates_with_bundles() {
        let s = schedule_of(
            "qubits 2\nx90 q[0]\ncz q[0], q[1]\nmeasure_all\n",
            &Platform::superconducting_grid(1, 2),
        );
        let e = translate(&s).unwrap();
        assert_eq!(e.bundle_count(), 3);
        let text = e.to_string();
        assert!(text.contains("smis"));
        assert!(text.contains("smit"));
        assert!(text.contains("measz"));
        assert!(text.ends_with("stop\n"));
    }

    #[test]
    fn parallel_same_gate_shares_one_mask() {
        let s = schedule_of(
            "qubits 3\n{ x90 q[0] | x90 q[1] | x90 q[2] }\n",
            &Platform::superconducting_grid(1, 3),
        );
        let e = translate(&s).unwrap();
        // One SMIS covering {0,1,2}, one bundle with a single op.
        let smis: Vec<_> = e
            .instructions()
            .iter()
            .filter_map(|i| match i {
                EqInstruction::Smis { qubits, .. } => Some(qubits.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(smis, vec![vec![0, 1, 2]]);
        assert_eq!(e.bundle_count(), 1);
    }

    #[test]
    fn pre_intervals_encode_schedule_gaps() {
        let s = schedule_of(
            "qubits 1\nx90 q[0]\nwait 5\ny90 q[0]\n",
            &Platform::superconducting_grid(1, 1),
        );
        let e = translate(&s).unwrap();
        let intervals: Vec<u64> = e
            .instructions()
            .iter()
            .filter_map(|i| match i {
                EqInstruction::Bundle { pre_interval, .. } => Some(*pre_interval),
                _ => None,
            })
            .collect();
        assert_eq!(intervals, vec![0, 6]); // x90 at 0, y90 at 1+5
    }

    #[test]
    fn mask_registers_are_reused_on_repeat() {
        let s = schedule_of(
            "qubits 1\nx90 q[0]\ny90 q[0]\nx90 q[0]\n",
            &Platform::superconducting_grid(1, 1),
        );
        let e = translate(&s).unwrap();
        let smis_count = e
            .instructions()
            .iter()
            .filter(|i| matches!(i, EqInstruction::Smis { .. }))
            .count();
        assert_eq!(smis_count, 1, "same mask should be defined once");
    }

    #[test]
    fn conditional_gate_expands_to_fmr_cmp_br() {
        let s = schedule_of(
            "qubits 2\nmeasure q[0]\nc-x90 b[0], q[1]\n",
            &Platform::superconducting_grid(1, 2),
        );
        let e = translate(&s).unwrap();
        let text = e.to_string();
        assert!(text.contains("fmr r1, q0"));
        assert!(text.contains("cmp r1, r0"));
        assert!(text.contains("br eq, +1"));
    }

    #[test]
    fn three_qubit_gate_rejected() {
        let s = schedule_of(
            "qubits 3\ntoffoli q[0], q[1], q[2]\n",
            &Platform::perfect(3),
        );
        assert!(matches!(translate(&s), Err(TranslateError::Unsupported(_))));
    }

    #[test]
    fn translation_verifies_differentially() {
        for src in [
            "qubits 2\nx90 q[0]\ncz q[0], q[1]\nmeasure_all\n",
            "qubits 3\n{ x90 q[0] | x90 q[1] | x90 q[2] }\ncz q[1], q[2]\n",
            "qubits 1\nx90 q[0]\nwait 5\ny90 q[0]\n",
            "qubits 2\n{ rz q[0], 0.5 | rz q[1], 0.75 }\n",
        ] {
            let s = schedule_of(src, &Platform::superconducting_grid(1, 3));
            let e = translate(&s).unwrap();
            assert_eq!(verify_translation(&s, &e), Ok(true), "{src}");
        }
    }

    #[test]
    fn verification_catches_corrupted_eqasm() {
        let s = schedule_of(
            "qubits 2\nx90 q[0]\ncz q[0], q[1]\n",
            &Platform::superconducting_grid(1, 2),
        );
        let mut e = translate(&s).unwrap();
        // Retarget the single-qubit mask: x90 lands on the wrong qubit.
        for ins in e.instructions_mut() {
            if let EqInstruction::Smis { qubits, .. } = ins {
                if qubits == &vec![0] {
                    *qubits = vec![1];
                }
            }
        }
        assert!(matches!(
            verify_translation(&s, &e),
            Err(TranslateError::VerificationFailed(_))
        ));
    }

    #[test]
    fn conditional_programs_verify_per_branch() {
        let s = schedule_of(
            "qubits 2\nmeasure q[0]\nc-x90 b[0], q[1]\nmeasure_all\n",
            &Platform::superconducting_grid(1, 2),
        );
        let e = translate(&s).unwrap();
        assert_eq!(verify_translation(&s, &e), Ok(true));
    }

    #[test]
    fn verification_catches_corrupted_conditional_branch() {
        let s = schedule_of(
            "qubits 2\nmeasure q[0]\nc-x90 b[0], q[1]\n",
            &Platform::superconducting_grid(1, 2),
        );
        let mut e = translate(&s).unwrap();
        // Retarget the conditional's mask: the fired branch rotates the
        // (already measured) qubit 0 instead of qubit 1.
        for ins in e.instructions_mut() {
            if let EqInstruction::Smis { qubits, .. } = ins {
                if qubits == &vec![1] {
                    *qubits = vec![0];
                }
            }
        }
        assert!(matches!(
            verify_translation(&s, &e),
            Err(TranslateError::VerificationFailed(_))
        ));
    }

    #[test]
    fn unrecognised_control_flow_is_skipped_not_failed() {
        let s = schedule_of(
            "qubits 2\nmeasure q[0]\nc-x90 b[0], q[1]\n",
            &Platform::superconducting_grid(1, 2),
        );
        let mut e = translate(&s).unwrap();
        // A branch distance the translator never emits is outside the
        // reconstructable pattern and must be skipped, not failed.
        for ins in e.instructions_mut() {
            if let EqInstruction::Br { offset, .. } = ins {
                *offset = 2;
            }
        }
        assert_eq!(verify_translation(&s, &e), Ok(false));
    }

    #[test]
    fn distinct_rz_angles_do_not_merge() {
        let s = schedule_of(
            "qubits 2\n{ rz q[0], 0.5 | rz q[1], 0.75 }\n",
            &Platform::superconducting_grid(1, 2),
        );
        let e = translate(&s).unwrap();
        // Two different angles -> two ops in the bundle, two masks.
        let bundle_ops: usize = e
            .instructions()
            .iter()
            .filter_map(|i| match i {
                EqInstruction::Bundle { ops, .. } => Some(ops.len()),
                _ => None,
            })
            .sum();
        assert_eq!(bundle_ops, 2);
    }
}
