//! Quantum device backends for the micro-architecture.
//!
//! The micro-architecture drives *some* qubit chip — in this stack either
//! the QX simulator (quantum semantics + pulses) or a pulse-only sink (the
//! closest software equivalent of attaching the control electronics to a
//! scope instead of a fridge). This substitution is what lets the full
//! digital control path run without analogue hardware.

use cqasm::GateKind;
use qxsim::{QubitModel, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Something the micro-architecture can send quantum operations to.
pub trait QuantumDevice {
    /// Number of physical qubits.
    fn qubit_count(&self) -> usize;
    /// Applies a native unitary gate.
    fn apply_gate(&mut self, gate: &GateKind, qubits: &[usize]);
    /// Initialises a qubit to `|0>`.
    fn prep(&mut self, qubit: usize);
    /// Measures a qubit in the Z basis.
    fn measure(&mut self, qubit: usize) -> bool;
}

/// The QX simulator attached as the quantum chip (Fig 7's pink block).
#[derive(Debug)]
pub struct QxDevice {
    state: StateVector,
    model: QubitModel,
    rng: StdRng,
}

impl QxDevice {
    /// A device over perfect qubits.
    pub fn perfect(qubit_count: usize) -> Self {
        QxDevice::with_model(qubit_count, QubitModel::Perfect, 0xBEEF)
    }

    /// A device with an explicit qubit model and RNG seed.
    pub fn with_model(qubit_count: usize, model: QubitModel, seed: u64) -> Self {
        QxDevice {
            state: StateVector::zero_state(qubit_count),
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Read access to the current state (for verification).
    pub fn state(&self) -> &StateVector {
        &self.state
    }

    /// Resets the register to `|0...0>`.
    pub fn reset_all(&mut self) {
        self.state = StateVector::zero_state(self.state.qubit_count());
    }
}

impl QuantumDevice for QxDevice {
    fn qubit_count(&self) -> usize {
        self.state.qubit_count()
    }

    fn apply_gate(&mut self, gate: &GateKind, qubits: &[usize]) {
        self.state.apply_gate(gate, qubits);
        let channel = self.model.gate_channel(gate.arity());
        if !channel.is_none() {
            for &q in qubits {
                channel.apply(&mut self.state, q, &mut self.rng);
            }
        }
    }

    fn prep(&mut self, qubit: usize) {
        self.state.reset(qubit, &mut self.rng);
    }

    fn measure(&mut self, qubit: usize) -> bool {
        let outcome = self.state.measure(qubit, &mut self.rng);
        qxsim::error_model::flip_readout(outcome, self.model.readout_error(), &mut self.rng)
    }
}

/// A sink that records nothing quantum: used to exercise the control path
/// (timing, code-words, queues) without quantum semantics. Measurements
/// return a fixed pattern.
#[derive(Debug, Clone)]
pub struct PulseOnlyDevice {
    qubit_count: usize,
    measurement_pattern: bool,
}

impl PulseOnlyDevice {
    /// A sink over `qubit_count` qubits whose measurements all read 0.
    pub fn new(qubit_count: usize) -> Self {
        PulseOnlyDevice {
            qubit_count,
            measurement_pattern: false,
        }
    }

    /// A sink whose measurements all read 1 (for branch testing).
    pub fn all_ones(qubit_count: usize) -> Self {
        PulseOnlyDevice {
            qubit_count,
            measurement_pattern: true,
        }
    }
}

impl QuantumDevice for PulseOnlyDevice {
    fn qubit_count(&self) -> usize {
        self.qubit_count
    }
    fn apply_gate(&mut self, _gate: &GateKind, _qubits: &[usize]) {}
    fn prep(&mut self, _qubit: usize) {}
    fn measure(&mut self, _qubit: usize) -> bool {
        self.measurement_pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qx_device_runs_gates() {
        let mut d = QxDevice::perfect(2);
        d.apply_gate(&GateKind::X, &[0]);
        assert!(d.measure(0));
        assert!(!d.measure(1));
    }

    #[test]
    fn qx_device_reset() {
        let mut d = QxDevice::perfect(1);
        d.apply_gate(&GateKind::X, &[0]);
        d.reset_all();
        assert!(!d.measure(0));
    }

    #[test]
    fn prep_resets_single_qubit() {
        let mut d = QxDevice::perfect(2);
        d.apply_gate(&GateKind::X, &[0]);
        d.apply_gate(&GateKind::X, &[1]);
        d.prep(0);
        assert!(!d.measure(0));
        assert!(d.measure(1));
    }

    #[test]
    fn pulse_only_device_patterns() {
        let mut z = PulseOnlyDevice::new(2);
        let mut o = PulseOnlyDevice::all_ones(2);
        assert!(!z.measure(0));
        assert!(o.measure(1));
    }
}
