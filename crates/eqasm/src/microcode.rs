//! The micro-code unit: opcode → code-word → analogue pulse parameters.
//!
//! The paper (§3.1) stresses that the same micro-architecture was
//! retargeted from a superconducting to a semiconducting qubit chip by
//! changing only the compiler configuration and *the implementation of the
//! micro-code unit*. This module is that unit: a per-platform table mapping
//! quantum opcodes to code-words, pulse channels and durations. The
//! analogue-digital interface (ADI) holds the pulse shapes; here we model a
//! pulse as its code-word, channel and duration — everything the digital
//! side controls.

use std::collections::BTreeMap;

/// The physical channel class a pulse is emitted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChannelKind {
    /// Microwave drive line (single-qubit rotations).
    Microwave,
    /// Flux line (two-qubit interactions on transmons).
    Flux,
    /// Readout resonator line.
    Readout,
}

/// Pulse parameters a code-word expands to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodewordEntry {
    /// The digital code-word driving the ADI.
    pub codeword: u32,
    /// Channel class.
    pub channel: ChannelKind,
    /// Pulse duration in nanoseconds.
    pub duration_ns: u64,
}

/// A platform's micro-code table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicrocodeTable {
    name: String,
    entries: BTreeMap<String, CodewordEntry>,
}

impl MicrocodeTable {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        MicrocodeTable {
            name: name.into(),
            entries: BTreeMap::new(),
        }
    }

    /// Table (platform) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers an opcode.
    pub fn define(
        &mut self,
        mnemonic: impl Into<String>,
        codeword: u32,
        channel: ChannelKind,
        duration_ns: u64,
    ) -> &mut Self {
        self.entries.insert(
            mnemonic.into(),
            CodewordEntry {
                codeword,
                channel,
                duration_ns,
            },
        );
        self
    }

    /// Looks up an opcode mnemonic.
    pub fn lookup(&self, mnemonic: &str) -> Option<CodewordEntry> {
        self.entries.get(mnemonic).copied()
    }

    /// Number of defined opcodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The micro-code table for the superconducting transmon target of
    /// Fig 6: 20 ns single-qubit microwave pulses, 40 ns flux-based CZ,
    /// 300 ns dispersive readout.
    pub fn superconducting() -> Self {
        let mut t = MicrocodeTable::new("superconducting");
        t.define("i", 0x00, ChannelKind::Microwave, 20)
            .define("x90", 0x01, ChannelKind::Microwave, 20)
            .define("y90", 0x02, ChannelKind::Microwave, 20)
            .define("mx90", 0x03, ChannelKind::Microwave, 20)
            .define("my90", 0x04, ChannelKind::Microwave, 20)
            .define("rz", 0x05, ChannelKind::Microwave, 20)
            .define("cz", 0x10, ChannelKind::Flux, 40)
            .define("measz", 0x20, ChannelKind::Readout, 300)
            .define("prepz", 0x21, ChannelKind::Readout, 200);
        t
    }

    /// The micro-code table for the semiconducting (spin-qubit) target:
    /// slower gates, much slower readout — same opcodes, different
    /// code-words and durations, demonstrating retargetability.
    pub fn semiconducting() -> Self {
        let mut t = MicrocodeTable::new("semiconducting");
        t.define("i", 0x40, ChannelKind::Microwave, 40)
            .define("x90", 0x41, ChannelKind::Microwave, 40)
            .define("y90", 0x42, ChannelKind::Microwave, 40)
            .define("mx90", 0x43, ChannelKind::Microwave, 40)
            .define("my90", 0x44, ChannelKind::Microwave, 40)
            .define("rz", 0x45, ChannelKind::Microwave, 40)
            .define("cz", 0x50, ChannelKind::Flux, 80)
            .define("measz", 0x60, ChannelKind::Readout, 500)
            .define("prepz", 0x61, ChannelKind::Readout, 250);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_defined_opcodes() {
        let t = MicrocodeTable::superconducting();
        let cz = t.lookup("cz").expect("cz defined");
        assert_eq!(cz.channel, ChannelKind::Flux);
        assert_eq!(cz.duration_ns, 40);
        assert!(t.lookup("toffoli").is_none());
    }

    #[test]
    fn both_presets_cover_the_cz_basis() {
        for t in [
            MicrocodeTable::superconducting(),
            MicrocodeTable::semiconducting(),
        ] {
            for op in ["x90", "y90", "mx90", "my90", "rz", "cz", "measz", "prepz"] {
                assert!(t.lookup(op).is_some(), "{} missing {op}", t.name());
            }
        }
    }

    #[test]
    fn retargeting_changes_codewords_and_timing() {
        let sc = MicrocodeTable::superconducting();
        let spin = MicrocodeTable::semiconducting();
        let a = sc.lookup("x90").unwrap();
        let b = spin.lookup("x90").unwrap();
        assert_ne!(a.codeword, b.codeword);
        assert_ne!(a.duration_ns, b.duration_ns);
        assert_eq!(a.channel, b.channel);
    }

    #[test]
    fn custom_table() {
        let mut t = MicrocodeTable::new("test");
        assert!(t.is_empty());
        t.define("x90", 7, ChannelKind::Microwave, 10);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("x90").unwrap().codeword, 7);
    }
}
