//! E11 (ablation): how much each compiler design choice buys.
//!
//! Sweeps the §2.6 mapping/scheduling choices: initial placement
//! (identity vs interaction-greedy), peephole optimisation (on/off) and
//! scheduling direction (ASAP/ALAP), reporting SWAPs, gate counts and
//! latency on random and structured workloads.

use openql::{
    Compiler, CompilerOptions, InitialPlacement, Kernel, Platform, QuantumProgram,
    ScheduleDirection,
};
use qca_bench::{header, row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_program(qubits: usize, gates: usize, seed: u64) -> QuantumProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut k = Kernel::new("rand", qubits);
    for _ in 0..gates {
        if rng.gen_bool(0.35) {
            let a = rng.gen_range(0..qubits);
            let b = (a + 1 + rng.gen_range(0..qubits - 1)) % qubits;
            k.cnot(a, b);
        } else {
            let q = rng.gen_range(0..qubits);
            match rng.gen_range(0..4) {
                0 => k.h(q),
                1 => k.t(q),
                2 => k.rz(q, 0.7),
                _ => k.x(q),
            };
        }
    }
    k.measure_all();
    let mut p = QuantumProgram::new("rand", qubits);
    p.add_kernel(k);
    p
}

fn clustered_program(qubits: usize, seed: u64) -> QuantumProgram {
    // Pairs (0, n-1), (1, n-2)... interact heavily: worst case for
    // identity placement on a grid, best case for greedy.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut k = Kernel::new("clustered", qubits);
    for _ in 0..40 {
        let pair = rng.gen_range(0..qubits / 2);
        k.cnot(pair, qubits - 1 - pair);
        k.t(pair);
    }
    k.measure_all();
    let mut p = QuantumProgram::new("clustered", qubits);
    p.add_kernel(k);
    p
}

fn compile_with(
    program: &QuantumProgram,
    placement: InitialPlacement,
    optimize: bool,
    schedule: ScheduleDirection,
) -> (usize, usize, u64) {
    let out = Compiler::with_options(
        Platform::superconducting_grid(3, 3),
        CompilerOptions {
            optimize,
            placement,
            schedule,
            ..Default::default()
        },
    )
    .compile(program)
    .expect("compiles");
    (
        out.report.swaps_inserted,
        out.report.output_stats.gates,
        out.report.latency_cycles,
    )
}

fn main() {
    println!("\n== E11a: initial placement ablation (SWAP counts) ==");
    header(&["workload", "identity", "greedy", "reduction"]);
    for (name, program) in [
        ("random-1", random_program(9, 60, 1)),
        ("random-2", random_program(9, 60, 2)),
        ("clustered", clustered_program(8, 3)),
    ] {
        let (s_id, _, _) = compile_with(
            &program,
            InitialPlacement::Identity,
            true,
            ScheduleDirection::Asap,
        );
        let (s_gr, _, _) = compile_with(
            &program,
            InitialPlacement::GreedyInteraction,
            true,
            ScheduleDirection::Asap,
        );
        let red = if s_id > 0 {
            format!("{:.0}%", 100.0 * (s_id as f64 - s_gr as f64) / s_id as f64)
        } else {
            "-".to_owned()
        };
        row(&[name.to_owned(), s_id.to_string(), s_gr.to_string(), red]);
    }

    println!("\n== E11b: peephole optimiser ablation (gate counts / latency) ==");
    header(&["workload", "gates off", "gates on", "lat off", "lat on"]);
    for (name, program) in [
        ("random-1", random_program(9, 120, 4)),
        ("random-2", random_program(9, 120, 5)),
    ] {
        let (_, g_off, l_off) = compile_with(
            &program,
            InitialPlacement::GreedyInteraction,
            false,
            ScheduleDirection::Asap,
        );
        let (_, g_on, l_on) = compile_with(
            &program,
            InitialPlacement::GreedyInteraction,
            true,
            ScheduleDirection::Asap,
        );
        row(&[
            name.to_owned(),
            g_off.to_string(),
            g_on.to_string(),
            l_off.to_string(),
            l_on.to_string(),
        ]);
    }

    println!("\n== E11c: scheduling direction (same latency, different issue profile) ==");
    header(&["workload", "asap lat", "alap lat"]);
    {
        let (name, program) = ("random", random_program(9, 80, 6));
        let (_, _, asap) = compile_with(
            &program,
            InitialPlacement::GreedyInteraction,
            true,
            ScheduleDirection::Asap,
        );
        let (_, _, alap) = compile_with(
            &program,
            InitialPlacement::GreedyInteraction,
            true,
            ScheduleDirection::Alap,
        );
        row(&[name.to_owned(), asap.to_string(), alap.to_string()]);
    }
    println!("\n== E11d: ALAP protects excitations under idle decay (end to end) ==");
    // An excitation on q0 must survive until a long chain on q1 finishes;
    // under idle amplitude damping, ALAP issues the excitation late.
    use openql::Kernel as K2;
    use qca_core::{FullStack, QubitKind};
    let mut k = K2::new("idle", 2);
    k.x(0);
    for _ in 0..20 {
        k.x(1);
        k.x(1);
    }
    k.measure_all();
    let mut prog = QuantumProgram::new("idle", 2);
    prog.add_kernel(k);
    header(&["schedule", "P(q0 still excited)"]);
    for (name, dir) in [
        ("asap", ScheduleDirection::Asap),
        ("alap", ScheduleDirection::Alap),
    ] {
        let run = FullStack::perfect(2)
            .with_qubits(QubitKind::Real {
                p1: 0.0,
                p2: 0.0,
                readout: 0.0,
                t1_us: 0.2,
                gate_ns: 20.0,
            })
            .with_compiler_options(CompilerOptions {
                optimize: false,
                schedule: dir,
                ..Default::default()
            })
            .execute(&prog, 2000)
            .expect("runs");
        let survive: u64 = run
            .histogram
            .iter()
            .filter(|(b, _)| b & 1 == 1)
            .map(|(_, c)| c)
            .sum();
        row(&[
            name.to_owned(),
            format!("{:.4}", survive as f64 / run.histogram.shots() as f64),
        ]);
    }

    println!(
        "\nShape check: greedy placement only pays off on clustered interaction\n\
         (random workloads are placement-agnostic); the optimiser strictly\n\
         shrinks gate count and latency; ASAP/ALAP agree on total latency but\n\
         ALAP keeps fragile states alive longer under idle decoherence."
    );
}
