//! E8 (§2.1/§2.4): error correction — logical vs physical error rates
//! for small codes and surface codes, the ancilla overhead behind
//! Preskill's NISQ argument, and the fraction of qubits spent on
//! fault tolerance.

use qca_bench::{header, row, sci};
use qec::monte::{code_logical_error_rate, surface_logical_error_rate, NoiseKind};
use qec::{StabilizerCode, SurfaceCode};

fn main() {
    println!("\n== E8a: qubit overhead per logical qubit ==");
    header(&["code", "data", "ancilla", "total", "overhead frac"]);
    for (name, data, anc) in [
        ("repetition-3", 3usize, 2usize),
        ("steane-[[7,1,3]]", 7, 6),
        (
            "surface d=3",
            SurfaceCode::new(3).data_qubits(),
            SurfaceCode::new(3).ancilla_qubits(),
        ),
        (
            "surface d=5",
            SurfaceCode::new(5).data_qubits(),
            SurfaceCode::new(5).ancilla_qubits(),
        ),
        (
            "surface d=7",
            SurfaceCode::new(7).data_qubits(),
            SurfaceCode::new(7).ancilla_qubits(),
        ),
        (
            "surface d=11",
            SurfaceCode::new(11).data_qubits(),
            SurfaceCode::new(11).ancilla_qubits(),
        ),
    ] {
        let total = data + anc;
        row(&[
            name.to_owned(),
            data.to_string(),
            anc.to_string(),
            total.to_string(),
            format!("{:.2}", (total - 1) as f64 / total as f64),
        ]);
    }
    println!("(the \"overhead frac\" column is the paper's >90% FT overhead claim)");

    println!("\n== E8b: small codes — logical vs physical error rate ==");
    header(&["p", "bare", "rep-3 (X)", "rep-5 (X)", "steane (depol)"]);
    let trials = 40_000;
    for p in [1e-3, 3e-3, 1e-2, 3e-2, 1e-1] {
        let r3 = code_logical_error_rate(
            &StabilizerCode::repetition(3),
            p,
            NoiseKind::BitFlip,
            trials,
            8,
        );
        let r5 = code_logical_error_rate(
            &StabilizerCode::repetition(5),
            p,
            NoiseKind::BitFlip,
            trials,
            8,
        );
        let st = code_logical_error_rate(
            &StabilizerCode::steane(),
            p,
            NoiseKind::Depolarizing,
            trials,
            8,
        );
        row(&[sci(p), sci(p), sci(r3), sci(r5), sci(st)]);
    }

    println!("\n== E8c: surface code threshold sweep (bit-flip noise) ==");
    header(&["p", "d=3", "d=5", "d=7"]);
    let trials = 15_000;
    for p in [0.005, 0.01, 0.02, 0.05, 0.08, 0.12, 0.16] {
        let r: Vec<String> = [3usize, 5, 7]
            .iter()
            .map(|&d| sci(surface_logical_error_rate(d, p, trials, 9)))
            .collect();
        row(&[sci(p), r[0].clone(), r[1].clone(), r[2].clone()]);
    }
    println!(
        "\nShape check: below the threshold the columns improve left to right\n\
         (distance helps); above it they degrade — and the overhead table\n\
         shows why Preskill's argument pushed NISQ towards small codes."
    );
}
