//! E4 (§3.3 claims): maximum TSP size per platform.
//!
//! - D-Wave 2000Q (Chimera C16): N^2 qubits + minor embedding; the paper
//!   says 9 cities is the practical max and 10 "will fail in most (if not
//!   all) cases".
//! - Fujitsu digital annealer: 8192 fully-connected nodes → ~90 cities.
//! - Classical exact record: 85 900 cities (branch and bound).
//! - Embedding also degrades solution quality (chain breaks).

use annealer::{
    clique_embedding, embed_ising, max_clique, Chimera, Ising, Sampler, SimulatedAnnealer,
};
use optim::{TspInstance, TspQubo};
use qca_bench::{f, header, row};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("\n== E4a: platform capacity for N-city TSP (N^2 variables) ==");
    let c16 = Chimera::dwave_2000q();
    println!(
        "D-Wave 2000Q model: {} qubits, {} couplers, max clique {}",
        c16.qubit_count(),
        c16.coupler_count(),
        max_clique(&c16)
    );
    header(&["cities", "vars", "chimera?", "chain len", "digital?"]);
    for n in [3usize, 4, 6, 8, 9, 10, 30, 90, 91] {
        let vars = n * n;
        let emb = clique_embedding(vars, &c16);
        let chain = emb
            .as_ref()
            .map_or("-".to_owned(), |e| e.max_chain_len().to_string());
        row(&[
            n.to_string(),
            vars.to_string(),
            if emb.is_some() { "yes" } else { "NO" }.to_owned(),
            chain,
            if vars <= 8192 { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    println!(
        "paper: 2000Q max ~9 cities (ours: 8 via clique bound 64), digital\n\
         annealer 90 cities (ours: 90 exactly), classical exact record 85900."
    );

    println!("\n== E4b: embedding overhead and solution quality ==");
    header(&[
        "logical n",
        "physical n",
        "overhead",
        "native E",
        "embedded E",
        "broken",
    ]);
    let mut rng = StdRng::seed_from_u64(4);
    for n in [4usize, 6, 8] {
        use rand::Rng;
        let mut logical = Ising::new(n);
        for i in 0..n {
            logical.add_field(i, rng.gen_range(-0.5..0.5));
            for j in i + 1..n {
                logical.add_coupling(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        let (_, exact) = logical.brute_force_minimum();
        let chimera = Chimera::new(4);
        let emb = embed_ising(&logical, &chimera, 2.5).expect("fits C4");
        let sa = SimulatedAnnealer::new().with_seed(n as u64);
        let set = sa.sample(&emb.physical, 40);
        let mut best = f64::INFINITY;
        let mut broken_total = 0usize;
        for s in set.iter() {
            let (spins, broken) = emb.decode(&s.spins);
            best = best.min(logical.energy(&spins));
            broken_total += broken;
        }
        row(&[
            n.to_string(),
            emb.physical.len().to_string(),
            format!("{:.1}x", emb.physical.len() as f64 / n as f64),
            f(exact),
            f(best),
            broken_total.to_string(),
        ]);
    }

    println!("\n== E4c: a 3-city TSP through the embedded D-Wave-style flow ==");
    let tsp = TspInstance::from_coords(
        vec!["a".into(), "b".into(), "c".into()],
        &[(0.0, 0.0), (1.0, 0.0), (0.3, 0.8)],
    );
    let enc = TspQubo::encode(&tsp, TspQubo::default_penalty(&tsp));
    let (ising, _off) = enc.qubo.to_ising();
    let chimera = Chimera::new(3); // 9 vars need 4m >= 9 -> m = 3
    let emb = embed_ising(&ising, &chimera, TspQubo::default_penalty(&tsp)).expect("9 vars fit C3");
    let sa = SimulatedAnnealer::new().with_seed(9);
    let set = sa.sample(&emb.physical, 80);
    let mut best_cost = f64::INFINITY;
    let mut feasible = 0;
    for s in set.iter() {
        let (spins, _) = emb.decode(&s.spins);
        let bits = annealer::spins_to_bits(&spins);
        if let Some(tour) = enc.decode(&bits) {
            feasible += s.occurrences;
            best_cost = best_cost.min(tsp.tour_cost(&tour));
        }
    }
    let (_, exact) = tsp.brute_force();
    println!(
        "embedded 3-city TSP: best decoded cost {best_cost:.4} (exact {exact:.4}), \
         {feasible}/80 reads feasible, {} physical qubits for 9 logical",
        emb.physical.len()
    );
}
