//! E1 (Fig 6): the experimental micro-architecture pipeline for
//! superconducting (real) qubits, and its retargeting to a semiconducting
//! platform by configuration only.
//!
//! Regenerates: randomised-benchmarking programs compiled
//! OpenQL → cQASM → eQASM, executed with nanosecond timing; survival
//! curves per qubit model; the retargeting comparison.

use qca_bench::{f, header, row};
use qca_core::rb::{single_qubit_rb, survival_probability, two_qubit_echo, CliffordTable};
use qca_core::{FullStack, QubitKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let table = CliffordTable::single_qubit();
    let mut rng = StdRng::seed_from_u64(1);
    let shots = 400;
    let seqs = 6;

    println!("\n== E1a: single-qubit randomised benchmarking (superconducting stack) ==");
    header(&["length", "perfect", "realistic", "real"]);
    let stacks = [
        FullStack::superconducting(1, 1).with_qubits(QubitKind::Perfect),
        FullStack::superconducting(1, 1).with_qubits(QubitKind::realistic_today()),
        FullStack::superconducting(1, 1).with_qubits(QubitKind::real_transmon()),
    ];
    for m in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut survivals = [0.0f64; 3];
        for _ in 0..seqs {
            let p = single_qubit_rb(&table, m, &mut rng);
            for (k, stack) in stacks.iter().enumerate() {
                let run = stack.execute(&p, shots).expect("stack executes");
                survivals[k] += survival_probability(&run.histogram);
            }
        }
        row(&[
            m.to_string(),
            f(survivals[0] / seqs as f64),
            f(survivals[1] / seqs as f64),
            f(survivals[2] / seqs as f64),
        ]);
    }

    println!("\n== E1b: two-qubit motion-reversal benchmark ==");
    header(&["depth", "perfect", "real"]);
    let stacks2 = [
        FullStack::superconducting(1, 2).with_qubits(QubitKind::Perfect),
        FullStack::superconducting(1, 2).with_qubits(QubitKind::real_transmon()),
    ];
    for m in [1usize, 2, 4, 8] {
        let mut survivals = [0.0f64; 2];
        for _ in 0..4 {
            let p = two_qubit_echo(m, &mut rng);
            for (k, stack) in stacks2.iter().enumerate() {
                let run = stack.execute(&p, 200).expect("stack executes");
                survivals[k] += survival_probability(&run.histogram);
            }
        }
        row(&[m.to_string(), f(survivals[0] / 4.0), f(survivals[1] / 4.0)]);
    }

    println!("\n== E1c: retargeting by configuration (same OpenQL program) ==");
    let program = single_qubit_rb(&table, 16, &mut rng);
    header(&["platform", "pulses", "ns/shot", "codeword[0]"]);
    for (name, stack) in [
        (
            "supercond.",
            FullStack::superconducting(1, 1).with_qubits(QubitKind::Perfect),
        ),
        (
            "semicond.",
            FullStack::semiconducting(1).with_qubits(QubitKind::Perfect),
        ),
    ] {
        let run = stack.execute(&program, 5).expect("stack executes");
        let pulses = run.pulses.expect("pulse trace");
        row(&[
            name.to_owned(),
            pulses.len().to_string(),
            run.shot_time_ns.unwrap_or(0).to_string(),
            format!("0x{:02x}", pulses.first().map_or(0, |p| p.codeword)),
        ]);
    }
    println!(
        "\nShape check: survival decays with length only for noisy models; the\n\
         semiconducting retarget emits the same pulse sequence with different\n\
         code-words and a longer timeline (paper: only the compiler config and\n\
         micro-code unit change)."
    );
}
