//! E2 (Fig 7 / §3.2): the quantum genome-sequencing accelerator — read
//! alignment accuracy and query counts vs the classical baseline, across
//! reference sizes and read error rates.

use qca_bench::{f, header, row};
use qgs::aligner::QuantumAligner;
use qgs::classical::best_hamming_search;
use qgs::dna::MarkovModel;
use qgs::reads::ReadGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2);
    let kmer = 6;
    let reads_per_cell = 30;

    println!("\n== E2a: alignment accuracy vs read error rate (64-base reference) ==");
    header(&["err rate", "tol", "accuracy", "P(match)", "iters/read"]);
    let reference = MarkovModel::uniform(1).generate(64, &mut rng);
    let aligner = QuantumAligner::new(reference.clone(), kmer);
    for error_rate in [0.0, 0.05, 0.10, 0.20] {
        let generator = ReadGenerator::new(kmer, error_rate);
        for tolerance in [0usize, 1, 2] {
            let mut correct = 0;
            let mut psum = 0.0;
            let mut iters = 0usize;
            for _ in 0..reads_per_cell {
                let read = generator.sample(&reference, &mut rng);
                let out = aligner.align(&read.bases, tolerance);
                let best = best_hamming_search(&reference, &read.bases);
                if best.positions.contains(&out.position) && read.errors <= tolerance {
                    correct += 1;
                }
                psum += out.success_probability;
                iters += out.iterations;
            }
            row(&[
                format!("{error_rate:.2}"),
                tolerance.to_string(),
                f(correct as f64 / reads_per_cell as f64),
                f(psum / reads_per_cell as f64),
                f(iters as f64 / reads_per_cell as f64),
            ]);
        }
    }

    println!("\n== E2b: quantum queries vs classical comparisons by reference size ==");
    header(&["ref bases", "entries", "qubits", "iters/read", "cmp/read"]);
    for ref_len in [32usize, 64, 128, 256] {
        let reference = MarkovModel::uniform(1).generate(ref_len, &mut rng);
        let aligner = QuantumAligner::new(reference.clone(), kmer);
        let generator = ReadGenerator::new(kmer, 0.0);
        let mut iters = 0usize;
        let mut cmps = 0u64;
        for _ in 0..reads_per_cell {
            let read = generator.sample(&reference, &mut rng);
            let out = aligner.align(&read.bases, 0);
            let c = best_hamming_search(&reference, &read.bases);
            iters += out.iterations;
            cmps += c.comparisons;
        }
        row(&[
            ref_len.to_string(),
            aligner.entry_count().to_string(),
            aligner.qubit_count().to_string(),
            f(iters as f64 / reads_per_cell as f64),
            f(cmps as f64 / reads_per_cell as f64),
        ]);
    }
    println!(
        "\nShape check: quantum iterations grow ~sqrt(entries) while classical\n\
         comparisons grow ~linearly — the crossover widens with reference size\n\
         (the paper's quadratic-speedup argument for big-data genomics)."
    );
}
