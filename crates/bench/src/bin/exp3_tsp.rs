//! E3 (Fig 9): the four-city Netherlands TSP — 16-qubit QUBO, optimal
//! tour cost 1.42 — solved by every solver in the stack.

use annealer::{DigitalAnnealer, SimulatedAnnealer};
use optim::{solve_tsp_qaoa, solve_tsp_with_sampler, TspInstance, TspQubo};
use qca_bench::{f, header, row};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let tsp = TspInstance::nl_four_cities();
    println!("\n== E3: Fig 9 reproduction — 4 Dutch cities ==");
    println!("cities: {:?}", tsp.names());
    let enc = TspQubo::encode(&tsp, TspQubo::default_penalty(&tsp));
    println!("QUBO variables (qubits): {} (paper: 16)", enc.variables());

    let (tour, optimal) = tsp.brute_force();
    println!(
        "exhaustive optimum: {:?} cost {:.2} (paper: 1.42)",
        tour, optimal
    );

    header(&["solver", "cost", "gap", "feasible%", "notes"]);
    // Classical exact.
    let (_, bb, nodes) = tsp.branch_and_bound();
    row(&[
        "brute force".to_owned(),
        f(optimal),
        f(0.0),
        "-".to_owned(),
        "6 tours".to_owned(),
    ]);
    row(&[
        "branch&bound".to_owned(),
        f(bb),
        f(bb - optimal),
        "-".to_owned(),
        format!("{nodes} nodes"),
    ]);
    // Classical heuristics.
    let (nn_tour, nn) = tsp.nearest_neighbor(0);
    let (_, two) = tsp.two_opt(&nn_tour);
    let mut rng = StdRng::seed_from_u64(3);
    let (_, mc) = tsp.monte_carlo(300, &mut rng);
    row(&[
        "nearest-nbr".to_owned(),
        f(nn),
        f(nn - optimal),
        "-".to_owned(),
        String::new(),
    ]);
    row(&[
        "2-opt".to_owned(),
        f(two),
        f(two - optimal),
        "-".to_owned(),
        String::new(),
    ]);
    row(&[
        "monte-carlo".to_owned(),
        f(mc),
        f(mc - optimal),
        "-".to_owned(),
        "300 samples".to_owned(),
    ]);
    // Annealing track.
    let sa = solve_tsp_with_sampler(&tsp, &SimulatedAnnealer::new(), 50).expect("feasible");
    row(&[
        sa.method.clone(),
        f(sa.cost),
        f(sa.cost - optimal),
        f(100.0 * sa.feasible_fraction),
        "50 reads".to_owned(),
    ]);
    let da = solve_tsp_with_sampler(&tsp, &DigitalAnnealer::new(), 20).expect("feasible");
    row(&[
        da.method.clone(),
        f(da.cost),
        f(da.cost - optimal),
        f(100.0 * da.feasible_fraction),
        "fully connected".to_owned(),
    ]);
    // Gate model.
    for p in [1usize, 2] {
        let q = solve_tsp_qaoa(&tsp, p, 3000, 7).expect("feasible sample");
        row(&[
            q.method.clone(),
            f(q.cost),
            f(q.cost - optimal),
            f(100.0 * q.feasible_fraction),
            "16-qubit statevector".to_owned(),
        ]);
    }
    println!(
        "\nShape check: every solver reaches 1.42 on this toy instance; the\n\
         QAOA feasible fraction is small (penalty landscape) but its best\n\
         sample is optimal — matching the paper's hybrid narrative."
    );
}
