//! E14 (Fig 8 dynamics): the hybrid quantum-classical execution loop in
//! numbers — burst counts, convergence curves and depth scaling for QAOA
//! and VQE, the two variational workloads of the stack.

use annealer::Ising;
use optim::hybrid::HybridOptimizer;
use optim::qaoa::Qaoa;
use optim::vqe::Vqe;
use qca_bench::{f, header, row};
use qxsim::{Pauli, PauliString, PauliSum};

fn ring_ising(n: usize) -> Ising {
    let mut m = Ising::new(n);
    for i in 0..n {
        m.add_coupling(i, (i + 1) % n, 1.0); // antiferromagnetic ring
    }
    m
}

fn h2() -> PauliSum {
    let mut h = PauliSum::new();
    h.add(-0.4804, PauliString::identity())
        .add(0.3435, PauliString::z(0))
        .add(-0.4347, PauliString::z(1))
        .add(0.5716, PauliString::new(vec![(0, Pauli::Z), (1, Pauli::Z)]))
        .add(0.0910, PauliString::new(vec![(0, Pauli::X), (1, Pauli::X)]))
        .add(0.0910, PauliString::new(vec![(0, Pauli::Y), (1, Pauli::Y)]));
    h
}

fn main() {
    println!("\n== E14a: QAOA depth scaling on the 6-ring antiferromagnet ==");
    header(&["layers p", "<E> best", "exact E0", "approx ratio", "bursts"]);
    let m = ring_ising(6);
    let (_, exact) = m.brute_force_minimum();
    for p in [1usize, 2, 3] {
        let qaoa = Qaoa::new(m.clone(), p);
        let run = HybridOptimizer::new().run(&qaoa);
        row(&[
            p.to_string(),
            f(run.best_energy),
            f(exact),
            f(run.best_energy / exact),
            run.quantum_bursts.to_string(),
        ]);
    }

    println!("\n== E14b: QAOA convergence curve (p = 2) ==");
    let qaoa = Qaoa::new(ring_ising(6), 2);
    let run = HybridOptimizer::new().run(&qaoa);
    header(&["round", "best <E>"]);
    for (i, e) in run.history.iter().enumerate() {
        if i % 5 == 0 || i + 1 == run.history.len() {
            row(&[i.to_string(), f(*e)]);
        }
    }

    println!("\n== E14c: VQE on the H2-like Hamiltonian ==");
    header(&["layers", "E (VQE)", "evaluations"]);
    for layers in [1usize, 2, 3] {
        let vqe = Vqe::new(h2(), 2, layers);
        let r = vqe.minimize(200);
        row(&[
            layers.to_string(),
            format!("{:.6}", r.energy),
            r.evaluations.to_string(),
        ]);
    }
    println!(
        "\nShape check: deeper circuits monotonically improve the variational\n\
         energy at the cost of more quantum bursts — the paper's trade-off\n\
         between circuit length (decoherence budget) and result quality."
    );
}
