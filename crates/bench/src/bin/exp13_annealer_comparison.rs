//! E13 (ablation / §4.2): the three annealer models side by side —
//! classical simulated annealing, path-integral simulated *quantum*
//! annealing (transverse field), and the fully-connected digital
//! annealer — on frustrated instances and on the TSP/Max-Cut workloads.

use annealer::{DigitalAnnealer, Ising, QuantumAnnealer, Sampler, SimulatedAnnealer};
use optim::{solve_tsp_with_sampler, MaxCut, TspInstance};
use qca_bench::{f, header, row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn frustrated_instance(n: usize, seed: u64) -> Ising {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Ising::new(n);
    for i in 0..n {
        m.add_field(i, rng.gen_range(-0.3..0.3));
        for j in i + 1..n {
            if rng.gen_bool(0.6) {
                m.add_coupling(i, j, if rng.gen_bool(0.5) { 1.0 } else { -1.0 });
            }
        }
    }
    m
}

fn main() {
    let sa = SimulatedAnnealer::new();
    let sqa = QuantumAnnealer::new();
    let da = DigitalAnnealer::new();

    println!("\n== E13a: frustrated spin glasses (10 reads each, gap to exact) ==");
    header(&["n", "exact", "SA", "SQA", "DA"]);
    for (n, seed) in [(10usize, 1u64), (12, 2), (14, 3)] {
        let m = frustrated_instance(n, seed);
        let (_, exact) = m.brute_force_minimum();
        let gap = |s: &dyn Sampler| s.sample(&m, 10).lowest_energy().unwrap() - exact;
        row(&[
            n.to_string(),
            f(exact),
            f(gap(&sa)),
            f(gap(&sqa)),
            f(gap(&da)),
        ]);
    }

    println!("\n== E13b: the paper's 4-city TSP through each annealer ==");
    header(&["solver", "cost", "feasible%"]);
    let tsp = TspInstance::nl_four_cities();
    for sampler in [&sa as &dyn Sampler, &sqa, &da] {
        let sol = solve_tsp_with_sampler(&tsp, sampler, 25).expect("feasible");
        row(&[
            sol.method.clone(),
            f(sol.cost),
            f(100.0 * sol.feasible_fraction),
        ]);
    }

    println!("\n== E13c: Max-Cut on random graphs (n=14, p=0.5) ==");
    header(&["seed", "exact", "SA", "SQA", "DA"]);
    for seed in [10u64, 11, 12] {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = MaxCut::random(14, 0.5, &mut rng);
        let (_, exact) = g.brute_force();
        let cut = |s: &dyn Sampler| g.solve_with(s, 8).1;
        row(&[
            seed.to_string(),
            f(exact),
            f(cut(&sa)),
            f(cut(&sqa)),
            f(cut(&da)),
        ]);
    }
    println!(
        "\nShape check: all three reach the exact optimum on these sizes; the\n\
         differences the paper cares about are *capacity and connectivity*\n\
         (E4), not solution quality at toy scale."
    );
}
