//! E10 (§2.3 footnote 2): the ~150-logical-qubit estimate for holding a
//! human-genome-scale search index, plus the physical-qubit bill once
//! surface-code protection is added.

use qca_bench::{header, row};
use qgs::CapacityModel;

fn main() {
    println!("\n== E10a: logical qubit budget vs reference / read size ==");
    header(&["reference", "read", "index", "data", "ancilla", "total"]);
    for (name, reference, read) in [
        ("1 Mbase", 1_000_000u64, 50u64),
        ("100 Mbase", 100_000_000, 50),
        ("human 3.1G", 3_100_000_000, 50),
        ("human, 100b reads", 3_100_000_000, 100),
        ("human, 150b reads", 3_100_000_000, 150),
    ] {
        let m = CapacityModel::new(reference, read);
        row(&[
            name.to_owned(),
            read.to_string(),
            m.index_qubits().to_string(),
            m.data_qubits().to_string(),
            m.ancilla_qubits().to_string(),
            m.total_logical_qubits().to_string(),
        ]);
    }
    let paper = CapacityModel::human_genome();
    println!(
        "paper's estimate: ~150 logical qubits; this model: {}",
        paper.total_logical_qubits()
    );

    println!("\n== E10b: physical bill with surface-code protection ==");
    header(&["code distance", "phys/logical", "total physical"]);
    for d in [3u64, 5, 11, 17, 25] {
        let per = (2 * d - 1) * (2 * d - 1);
        row(&[
            d.to_string(),
            per.to_string(),
            paper.physical_qubits(d).to_string(),
        ]);
    }

    println!("\n== E10c: query counts at genome scale ==");
    let g = paper.grover_iterations();
    let c = paper.classical_comparisons();
    println!("grover iterations:      {g}");
    println!("classical comparisons:  {c}");
    println!(
        "query ratio:            {:.0}x (the paper's 'modest quadratic speedup\n\
         that becomes extremely relevant' at 1000s of CPU hours per genome)",
        c as f64 / g as f64
    );
}
