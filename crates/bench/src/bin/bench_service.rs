//! Acceptance benchmark for the serving runtime. Pushes 100 mixed
//! Bell/GHZ jobs through the service in four configurations — 1 vs N
//! workers, cold vs warm compiled-plan cache — and reports throughput
//! (jobs/sec) and per-job latency (p50/p95 of queue wait + execution),
//! then writes the numbers to `BENCH_service.json`.

use qca_bench::{f, header, row};
use qca_service::{JobSpec, Service, ServiceConfig};
use std::time::{Duration, Instant};

const BELL: &str = "qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n";
const GHZ4: &str =
    "qubits 4\nh q[0]\ncnot q[0], q[1]\ncnot q[1], q[2]\ncnot q[2], q[3]\nmeasure_all\n";
const JOBS: usize = 100;
const SHOTS: u64 = 2000;

/// 100 mixed jobs over two circuit shapes, distinct seeds so nothing
/// coalesces (the bench measures per-job dispatch, not batching).
fn mixed_jobs() -> Vec<JobSpec> {
    (0..JOBS)
        .map(|i| {
            let circuit = if i % 2 == 0 { BELL } else { GHZ4 };
            JobSpec::new(circuit).with_seed(i as u64).with_shots(SHOTS)
        })
        .collect()
}

struct Scenario {
    workers: usize,
    cache: &'static str,
    wall_s: f64,
    jobs_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    cache_hits: u64,
}

/// Runs one pass of all jobs; `prewarm` runs each distinct circuit once
/// first so the measured pass is served entirely from the plan cache.
fn run_scenario(workers: usize, prewarm: bool) -> Scenario {
    let service = Service::with_config(ServiceConfig {
        workers,
        queue_capacity: JOBS * 2,
        ..ServiceConfig::default()
    });
    let handle = service.handle();
    if prewarm {
        for circuit in [BELL, GHZ4] {
            let id = handle
                .submit(JobSpec::new(circuit).with_shots(1))
                .expect("prewarm submit");
            handle
                .wait(id, Duration::from_secs(60))
                .expect("prewarm wait");
        }
    }
    let hits_before = handle.stats().cache.hits;
    let jobs = mixed_jobs();
    let start = Instant::now();
    let ids: Vec<_> = jobs
        .into_iter()
        .map(|spec| handle.submit(spec).expect("submit"))
        .collect();
    let mut latencies_us: Vec<u64> = ids
        .iter()
        .map(|&id| {
            let outcome = handle.wait(id, Duration::from_secs(120)).expect("wait");
            outcome.wait_us + outcome.exec_us
        })
        .collect();
    let wall_s = start.elapsed().as_secs_f64();
    latencies_us.sort_unstable();
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p) as usize] as f64 / 1e3;
    let cache_hits = handle.stats().cache.hits - hits_before;
    service.shutdown();
    Scenario {
        workers,
        cache: if prewarm { "warm" } else { "cold" },
        wall_s,
        jobs_per_sec: JOBS as f64 / wall_s,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        cache_hits,
    }
}

fn main() {
    let pool = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 4);
    println!("\n== Serving throughput: {JOBS} mixed Bell/GHZ jobs, {SHOTS} shots each ==");
    header(&[
        "workers", "cache", "wall s", "jobs/s", "p50 ms", "p95 ms", "hits",
    ]);
    let mut scenarios = Vec::new();
    for workers in [1usize, pool] {
        for prewarm in [false, true] {
            let s = run_scenario(workers, prewarm);
            row(&[
                s.workers.to_string(),
                s.cache.to_string(),
                f(s.wall_s),
                f(s.jobs_per_sec),
                f(s.p50_ms),
                f(s.p95_ms),
                s.cache_hits.to_string(),
            ]);
            scenarios.push(s);
        }
    }
    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"qca-service serving throughput\",\n");
    json.push_str(&format!("  \"jobs\": {JOBS},\n"));
    json.push_str(&format!("  \"shots_per_job\": {SHOTS},\n"));
    json.push_str("  \"circuits\": [\"bell2\", \"ghz4\"],\n");
    json.push_str("  \"latency\": \"queue wait + execution, per job\",\n");
    json.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"workers\": {}, \"cache\": \"{}\", \"wall_s\": {:.4}, ",
                "\"jobs_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, ",
                "\"cache_hits\": {}}}{}\n"
            ),
            s.workers,
            s.cache,
            s.wall_s,
            s.jobs_per_sec,
            s.p50_ms,
            s.p95_ms,
            s.cache_hits,
            if i + 1 < scenarios.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("\nWrote BENCH_service.json");
}
