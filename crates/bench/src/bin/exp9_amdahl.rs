//! E9 (§1): accelerator speedup per Amdahl's law — the quantitative
//! backbone of the accelerator definition, plus the quantum-kernel case
//! study (quadratic kernel speedup vs per-query overhead).

use qca_bench::{f, header, row};
use qca_core::amdahl::{heterogeneous_speedup, speedup, speedup_limit, QuantumKernelCase};

fn main() {
    println!("\n== E9a: speedup vs accelerated fraction and factor ==");
    header(&["fraction", "s=10", "s=100", "s=1000", "limit"]);
    for frac in [0.5, 0.8, 0.9, 0.95, 0.99] {
        row(&[
            f(frac),
            f(speedup(frac, 10.0)),
            f(speedup(frac, 100.0)),
            f(speedup(frac, 1000.0)),
            f(speedup_limit(frac)),
        ]);
    }

    println!("\n== E9b: heterogeneous system (Fig 1): GPU + quantum accelerator ==");
    header(&["gpu frac", "quantum frac", "overall speedup"]);
    for (g, q) in [(0.3, 0.3), (0.4, 0.4), (0.2, 0.7)] {
        row(&[
            f(g),
            f(q),
            f(heterogeneous_speedup(&[(g, 10.0), (q, 1000.0)])),
        ]);
    }

    println!("\n== E9c: quantum search kernel — when does offloading pay? ==");
    header(&["work N", "kernel factor", "end-to-end", "verdict"]);
    let overhead = 1000.0; // per-query slowdown vs a classical comparison
    for work in [1e4f64, 1e6, 1e8, 1e10, 1e12, 1e14] {
        let case = QuantumKernelCase {
            kernel_fraction: 0.9,
            classical_work: work,
            quantum_overhead: overhead,
        };
        let kf = case.kernel_factor();
        let s = case.end_to_end_speedup();
        row(&[
            format!("{work:.0e}"),
            f(kf),
            f(s),
            if s > 1.0 { "offload" } else { "stay classical" }.to_owned(),
        ]);
    }
    let case = QuantumKernelCase {
        kernel_fraction: 0.9,
        classical_work: 0.0,
        quantum_overhead: overhead,
    };
    println!(
        "\nbreak-even work for overhead {overhead:.0}: N = {:.0e} — below that,\n\
         the quadratic speedup cannot pay the control/QEC tax; far above it\n\
         (genomic-scale 1e12+), the accelerator dominates. This is the paper's\n\
         argument for why the *big data* kernels are the quantum targets.",
        case.break_even_work()
    );
}
