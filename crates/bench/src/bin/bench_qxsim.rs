//! Acceptance benchmark for the fast-path QX engine. Measures gate
//! throughput of the orbit-direct/specialised kernels against the original
//! scan-and-skip reference kernels, and multi-shot sampling throughput of
//! the terminal-sampling fast path against full per-shot re-simulation,
//! then writes the numbers to `BENCH_qxsim.json`.
//!
//! Targets: ≥5x on 16-qubit 2-qubit gate application, ≥10x on noise-free
//! 2000-shot Bell sampling.

use cqasm::{GateKind, GateUnitary, Program};
use qca_bench::{header, row};
use qxsim::state::reference;
use qxsim::{EngineSelect, Simulator, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Median-of-3 timing of `f`, each sample averaging `iters` calls.
fn time<F: FnMut()>(mut f: F, iters: u32) -> f64 {
    f(); // warm-up
    let mut samples = [0.0f64; 3];
    for s in &mut samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        *s = start.elapsed().as_secs_f64() / iters as f64;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[1]
}

fn iters_for(n: usize) -> u32 {
    ((1u64 << 22) >> n).clamp(3, 1 << 12) as u32
}

fn dense_state(n: usize) -> StateVector {
    let mut s = StateVector::zero_state(n);
    for q in 0..n {
        s.apply_gate(&GateKind::H, &[q]);
        s.apply_gate(&GateKind::T, &[q]);
    }
    s
}

struct KernelRow {
    n: usize,
    gate: &'static str,
    new_gps: f64,
    ref_gps: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.new_gps / self.ref_gps
    }
}

/// The textbook QFT on `n` qubits: H on each line followed by the ladder
/// of controlled-phase rotations. Heavy on CRk chains, so the fusion pass
/// collapses the ladders into strided diagonal sweeps.
fn qft(n: usize) -> Program {
    let mut b = Program::builder(n);
    for i in 0..n {
        b = b.gate(GateKind::H, &[i]);
        for j in i + 1..n {
            b = b.gate(GateKind::CRk((j - i + 1) as u32), &[j, i]);
        }
    }
    b.build()
}

/// A GHZ chain: H then a CNOT ladder, closed by `measure_all`.
fn ghz(n: usize) -> Program {
    let mut b = Program::builder(n).gate(GateKind::H, &[0]);
    for q in 0..n - 1 {
        b = b.gate(GateKind::Cnot, &[q, q + 1]);
    }
    b.measure_all().build()
}

/// The wide GHZ the service acceptance test runs: 1000 qubits, with the
/// first 32 measured (the register ceiling caps `measure_all`).
fn ghz_wide(n: usize, measures: usize) -> Program {
    let mut b = Program::builder(n).gate(GateKind::H, &[0]);
    for q in 0..n - 1 {
        b = b.gate(GateKind::Cnot, &[q, q + 1]);
    }
    for q in 0..measures {
        b = b.measure(q);
    }
    b.build()
}

/// One row of the stabilizer-engine section.
struct StabRow {
    workload: &'static str,
    n: usize,
    shots: u64,
    engine: &'static str,
    shots_per_sec: f64,
    /// Speedup over the state-vector engine, when it can run the case.
    sv_speedup: Option<f64>,
}

/// A QAOA-style sweep on an `n`-qubit ring: `layers` alternations of a
/// diagonal cost layer (ring ZZ phases + local Rz) and an Rx mixer.
fn qaoa_sweep(n: usize, layers: usize) -> Program {
    let mut b = Program::builder(n);
    for q in 0..n {
        b = b.gate(GateKind::H, &[q]);
    }
    for layer in 0..layers {
        let gamma = 0.37 + 0.11 * layer as f64;
        let beta = 0.23 + 0.07 * layer as f64;
        for q in 0..n {
            b = b.gate(GateKind::Cr(gamma), &[q, (q + 1) % n]);
            b = b.gate(GateKind::Rz(-gamma / 2.0), &[q]);
        }
        for q in 0..n {
            b = b.gate(GateKind::Rx(2.0 * beta), &[q]);
        }
    }
    b.build()
}

struct FusionRow {
    circuit: &'static str,
    n: usize,
    gates_before: u64,
    gates_after: u64,
    fused_s: f64,
    unfused_s: f64,
}

impl FusionRow {
    fn speedup(&self) -> f64 {
        self.unfused_s / self.fused_s
    }
}

/// Times one full evolution of `program` through the fused and unfused
/// compiled plans, checking the two final states agree.
fn fusion_row(circuit: &'static str, program: &Program, iters: u32) -> FusionRow {
    let fused_sim = Simulator::perfect();
    let unfused_sim = Simulator::perfect().with_fusion(false);
    let fused_plan = fused_sim.compile(program).expect("fused plan compiles");
    let unfused_plan = unfused_sim.compile(program).expect("unfused plan compiles");
    let stats = fused_plan.fusion_stats();

    let fused_state = fused_sim
        .run_compiled(&fused_plan, &mut StdRng::seed_from_u64(1))
        .state;
    let unfused_state = unfused_sim
        .run_compiled(&unfused_plan, &mut StdRng::seed_from_u64(1))
        .state;
    for (a, b) in fused_state
        .amplitudes()
        .iter()
        .zip(unfused_state.amplitudes())
    {
        assert!(
            (*a - *b).norm_sqr() < 1e-18,
            "fused and unfused states must agree on {circuit}"
        );
    }

    let mut rng = StdRng::seed_from_u64(2);
    let t_fused = time(
        || drop(fused_sim.run_compiled(&fused_plan, &mut rng)),
        iters,
    );
    let t_unfused = time(
        || drop(unfused_sim.run_compiled(&unfused_plan, &mut rng)),
        iters,
    );
    FusionRow {
        circuit,
        n: program.qubit_count(),
        gates_before: stats.gates_before,
        gates_after: stats.gates_after,
        fused_s: t_fused,
        unfused_s: t_unfused,
    }
}

fn main() {
    let sizes = [10usize, 16, 20];
    let mut rows: Vec<KernelRow> = Vec::new();

    println!("\n== QX kernel throughput (gates/sec, new vs reference) ==");
    header(&["n", "gate", "new g/s", "ref g/s", "speedup"]);
    for &n in &sizes {
        let iters = iters_for(n);
        let base = dense_state(n);
        let q = n / 2;
        let (hi, lo) = (n - 1, 1);

        let h = match GateKind::H.unitary() {
            GateUnitary::One(m) => m,
            _ => unreachable!(),
        };
        let cr = match GateKind::Cr(0.7).unitary() {
            GateUnitary::Two(m) => m,
            _ => unreachable!(),
        };

        // 1q: orbit/pair enumeration vs the reference strided kernel.
        let mut s = base.clone();
        let t_new = time(|| s.apply_1q(&h, q), iters);
        let mut s = base.clone();
        let t_ref = time(|| reference::apply_1q(&mut s, &h, q), iters);
        rows.push(KernelRow {
            n,
            gate: "h",
            new_gps: 1.0 / t_new,
            ref_gps: 1.0 / t_ref,
        });

        // 2q specialised: CNOT permutation kernel vs the scan-and-skip
        // dense 4x4 path the seed executed for every 2q gate.
        let mut s = base.clone();
        let t_new = time(|| s.apply_gate(&GateKind::Cnot, &[hi, lo]), iters);
        let mut s = base.clone();
        let t_ref = time(
            || reference::apply_gate(&mut s, &GateKind::Cnot, &[hi, lo]),
            iters,
        );
        rows.push(KernelRow {
            n,
            gate: "cnot",
            new_gps: 1.0 / t_new,
            ref_gps: 1.0 / t_ref,
        });

        // 2q generic: orbit-direct dense 4x4 vs scan-and-skip dense 4x4.
        let mut s = base.clone();
        let t_new = time(|| s.apply_2q(&cr, hi, lo), iters);
        let mut s = base.clone();
        let t_ref = time(|| reference::apply_2q(&mut s, &cr, hi, lo), iters);
        rows.push(KernelRow {
            n,
            gate: "cr(dense)",
            new_gps: 1.0 / t_new,
            ref_gps: 1.0 / t_ref,
        });
    }
    for r in &rows {
        row(&[
            r.n.to_string(),
            r.gate.to_string(),
            format!("{:.3e}", r.new_gps),
            format!("{:.3e}", r.ref_gps),
            format!("{:.2}x", r.speedup()),
        ]);
    }

    // Multi-shot sampling: terminal-sampling fast path vs full
    // re-simulation of every shot (identical histograms by construction;
    // asserted here as well).
    let bell = Program::builder(2)
        .gate(GateKind::H, &[0])
        .gate(GateKind::Cnot, &[0, 1])
        .measure_all()
        .build();
    let shots = 2000u64;
    // Pin to the state-vector engine: Bell is Clifford-terminal, so Auto
    // would route to the Pauli-frame sampler and this row stops measuring
    // the terminal-sampling fast path it documents.
    let fast_sim = Simulator::perfect()
        .with_seed(7)
        .with_engine_select(EngineSelect::StateVector);
    let slow_sim = fast_sim.clone().with_sampling_fast_path(false);
    assert_eq!(
        fast_sim.run_shots(&bell, shots).unwrap(),
        slow_sim.run_shots(&bell, shots).unwrap(),
        "fast path must be bit-identical to re-simulation"
    );
    let t_fast = time(|| drop(fast_sim.run_shots(&bell, shots).unwrap()), 20);
    let t_slow = time(|| drop(slow_sim.run_shots(&bell, shots).unwrap()), 3);
    let fast_sps = shots as f64 / t_fast;
    let slow_sps = shots as f64 / t_slow;
    let sampling_speedup = fast_sps / slow_sps;

    println!("\n== Bell 2000-shot sampling (shots/sec) ==");
    header(&["path", "shots/s", "speedup"]);
    row(&[
        "fast".into(),
        format!("{fast_sps:.3e}"),
        format!("{sampling_speedup:.1}x"),
    ]);
    row(&["full".into(), format!("{slow_sps:.3e}"), "1.0x".into()]);

    // Compiled-plan fusion: full-circuit evolution through the fused plan
    // (1q runs composed, diagonal chains batched, small clusters blocked)
    // against the same plan with fusion disabled.
    let fusion_rows = vec![
        fusion_row("qft-20", &qft(20), 3),
        fusion_row("qaoa-sweep-20", &qaoa_sweep(20, 4), 3),
    ];
    println!("\n== Compiled-plan fusion (full-circuit evolution) ==");
    header(&["circuit", "n", "gates", "fused s", "unfused s", "speedup"]);
    for r in &fusion_rows {
        row(&[
            r.circuit.to_string(),
            r.n.to_string(),
            format!("{}->{}", r.gates_before, r.gates_after),
            format!("{:.3}", r.fused_s),
            format!("{:.3}", r.unfused_s),
            format!("{:.2}x", r.speedup()),
        ]);
    }

    // Stabilizer engines: the Clifford fast paths the dispatcher selects
    // by circuit class. GHZ-20 runs on the Pauli-frame sampler, the
    // tableau executor and the state-vector engine (all exact), pinning
    // the dispatch win where every engine can run; GHZ-1000 and the d=5
    // surface ESM round sit far beyond the state-vector qubit ceiling.
    let mut stab_rows: Vec<StabRow> = Vec::new();
    let shots = 2000u64;

    let ghz20 = ghz(20);
    let frame_sim = Simulator::perfect()
        .with_seed(7)
        .with_engine_select(EngineSelect::PauliFrame);
    let tab_sim = Simulator::perfect()
        .with_seed(7)
        .with_engine_select(EngineSelect::Tableau);
    let sv_sim = Simulator::perfect()
        .with_seed(7)
        .with_engine_select(EngineSelect::StateVector);
    let frame_hist = frame_sim.run_shots(&ghz20, shots).unwrap();
    assert_eq!(
        frame_hist,
        sv_sim.run_shots(&ghz20, shots).unwrap(),
        "stabilizer engines must be bit-identical to the state vector"
    );
    assert_eq!(frame_hist, tab_sim.run_shots(&ghz20, shots).unwrap());
    let t_frame = time(|| drop(frame_sim.run_shots(&ghz20, shots).unwrap()), 20);
    let t_tab = time(|| drop(tab_sim.run_shots(&ghz20, shots).unwrap()), 5);
    let t_sv = time(|| drop(sv_sim.run_shots(&ghz20, shots).unwrap()), 3);
    stab_rows.push(StabRow {
        workload: "ghz-20",
        n: 20,
        shots,
        engine: "pauli_frame",
        shots_per_sec: shots as f64 / t_frame,
        sv_speedup: Some(t_sv / t_frame),
    });
    stab_rows.push(StabRow {
        workload: "ghz-20",
        n: 20,
        shots,
        engine: "tableau",
        shots_per_sec: shots as f64 / t_tab,
        sv_speedup: Some(t_sv / t_tab),
    });

    let ghz1000 = ghz_wide(1000, 32);
    let auto_sim = Simulator::perfect().with_seed(5);
    let t_wide = time(|| drop(auto_sim.run_shots(&ghz1000, shots).unwrap()), 3);
    stab_rows.push(StabRow {
        workload: "ghz-1000",
        n: 1000,
        shots,
        engine: "pauli_frame",
        shots_per_sec: shots as f64 / t_wide,
        sv_speedup: None,
    });

    let code = qec::SurfaceCode::new(5).to_stabilizer_code();
    let (esm, _) = qec::esm::esm_program_ancilla_first(&code, 1);
    let esm_shots = 256u64;
    let t_esm = time(|| drop(auto_sim.run_shots(&esm, esm_shots).unwrap()), 3);
    stab_rows.push(StabRow {
        workload: "surface-d5-esm-round",
        n: esm.qubit_count(),
        shots: esm_shots,
        engine: "tableau",
        shots_per_sec: esm_shots as f64 / t_esm,
        sv_speedup: None,
    });

    // The QEC Monte-Carlo workload: circuit-level ESM trials on the
    // stabilizer tableau (error injection, syndrome extraction, decode).
    let trials = 2000u64;
    let t_monte = time(
        || {
            let _ = qec::monte::surface_circuit_error_rate(5, 0.01, trials, 21);
        },
        3,
    );
    stab_rows.push(StabRow {
        workload: "qec-monte-d5",
        n: 42,
        shots: trials,
        engine: "tableau",
        shots_per_sec: trials as f64 / t_monte,
        sv_speedup: None,
    });

    println!("\n== Stabilizer engines (Clifford dispatch) ==");
    header(&["workload", "n", "shots", "engine", "shots/s", "vs sv"]);
    for r in &stab_rows {
        row(&[
            r.workload.to_string(),
            r.n.to_string(),
            r.shots.to_string(),
            r.engine.to_string(),
            format!("{:.3e}", r.shots_per_sec),
            r.sv_speedup.map_or("n/a".into(), |s| format!("{s:.1}x")),
        ]);
    }

    let stab_speedup = stab_rows
        .iter()
        .filter_map(|r| r.sv_speedup)
        .fold(0.0f64, f64::max);

    let two_q_16 = rows
        .iter()
        .find(|r| r.n == 16 && r.gate == "cnot")
        .map(|r| r.speedup())
        .unwrap_or(0.0);
    let min_fusion = fusion_rows
        .iter()
        .map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nAcceptance: 16-qubit 2q speedup {two_q_16:.2}x (target >= 5x), \
         Bell sampling speedup {sampling_speedup:.1}x (target >= 10x), \
         fusion speedup {min_fusion:.2}x (target >= 2x), \
         stabilizer vs state-vector {stab_speedup:.0}x (target >= 50x)"
    );

    let mut json = String::from("{\n  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"gate\": \"{}\", \"new_gates_per_sec\": {:.1}, \
             \"ref_gates_per_sec\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.n,
            r.gate,
            r.new_gps,
            r.ref_gps,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sampling\": {{\"program\": \"bell\", \"shots\": {shots}, \
         \"fast_shots_per_sec\": {fast_sps:.1}, \"full_shots_per_sec\": {slow_sps:.1}, \
         \"speedup\": {sampling_speedup:.3}}},\n"
    ));
    json.push_str("  \"fusion\": [\n");
    for (i, r) in fusion_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"circuit\": \"{}\", \"n\": {}, \"gates_before\": {}, \"gates_after\": {}, \
             \"fused_sec\": {:.4}, \"unfused_sec\": {:.4}, \"speedup\": {:.3}}}{}\n",
            r.circuit,
            r.n,
            r.gates_before,
            r.gates_after,
            r.fused_s,
            r.unfused_s,
            r.speedup(),
            if i + 1 == fusion_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"stabilizer\": [\n");
    for (i, r) in stab_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"n\": {}, \"shots\": {}, \"engine\": \"{}\", \
             \"shots_per_sec\": {:.1}, \"sv_speedup\": {}}}{}\n",
            r.workload,
            r.n,
            r.shots,
            r.engine,
            r.shots_per_sec,
            r.sv_speedup.map_or("null".into(), |s| format!("{s:.3}")),
            if i + 1 == stab_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"targets\": {{\"two_qubit_16q_speedup_min\": 5.0, \"two_qubit_16q_speedup\": {two_q_16:.3}, \
         \"bell_sampling_speedup_min\": 10.0, \"bell_sampling_speedup\": {sampling_speedup:.3}, \
         \"fusion_speedup_min\": 2.0, \"fusion_speedup\": {min_fusion:.3}, \
         \"stabilizer_speedup_min\": 50.0, \"stabilizer_speedup\": {stab_speedup:.3}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_qxsim.json", &json).expect("write BENCH_qxsim.json");
    println!("\nWrote BENCH_qxsim.json");
}
