//! E7 (§2.3): Grover's search is provably optimal — success probability
//! vs iteration count (the pi/4*sqrt(N) optimum), and the quadratic
//! query-count separation from classical unstructured search.

use qca_bench::{f, header, row};
use qgs::grover::{grover_search, optimal_iterations};

fn main() {
    println!("\n== E7a: success probability vs iterations (n = 8 qubits, 1 marked) ==");
    header(&["iterations", "P(success)"]);
    let n = 8;
    let target = 137u64;
    let opt = optimal_iterations(n, 1);
    for k in [0usize, 1, 2, 4, 8, opt, opt + 4, 2 * opt] {
        let r = grover_search(n, |x| x == target, k);
        let marker = if k == opt { " <- pi/4 sqrt(N)" } else { "" };
        row(&[format!("{k}{marker}"), f(r.success_probability)]);
    }

    println!("\n== E7b: optimal query count vs database size ==");
    header(&["qubits", "N", "grover", "classical N/2", "speedup"]);
    for bits in [4usize, 8, 12, 16, 20, 24] {
        let n_items = 1u64 << bits;
        let g = optimal_iterations(bits, 1) as f64;
        let c = n_items as f64 / 2.0;
        row(&[
            bits.to_string(),
            n_items.to_string(),
            format!("{g:.0}"),
            format!("{c:.0}"),
            format!("{:.1}x", c / g.max(1.0)),
        ]);
    }

    println!("\n== E7c: multiple marked items (n = 10 qubits) ==");
    header(&["marked M", "optimal k", "P(success)"]);
    for m in [1usize, 2, 4, 16, 64] {
        let marked: Vec<u64> = (0..m as u64).map(|i| i * 13 % 1024).collect();
        let k = optimal_iterations(10, m);
        let r = grover_search(10, |x| marked.contains(&x), k);
        row(&[m.to_string(), k.to_string(), f(r.success_probability)]);
    }
    println!(
        "\nShape check: success peaks at pi/4*sqrt(N/M) and degrades on\n\
         overshoot (the rotation picture); query advantage grows as sqrt(N)\n\
         — Zalka's optimality means no quantum algorithm does better."
    );
}
