//! E5 (§2.7): QX simulator scalability — "up to 35 fully-entangled qubits
//! on a laptop PC". The state-vector memory doubles per qubit; we sweep
//! GHZ preparation up to the machine's comfortable limit and report
//! time-per-gate and memory, exposing the exponential wall.

use cqasm::GateKind;
use qca_bench::{header, row, sci};
use qxsim::StateVector;
use std::time::Instant;

fn main() {
    println!("\n== E5: QX state-vector scaling (fully-entangled GHZ prep) ==");
    header(&["qubits", "amplitudes", "memory", "total ms", "us/gate"]);
    let max_qubits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(26);
    for n in (4..=max_qubits).step_by(2) {
        let start = Instant::now();
        let mut s = StateVector::zero_state(n);
        s.apply_gate(&GateKind::H, &[0]);
        for q in 0..n - 1 {
            s.apply_gate(&GateKind::Cnot, &[q, q + 1]);
        }
        let elapsed = start.elapsed();
        let p0 = s.probability_of(0);
        assert!((p0 - 0.5).abs() < 1e-9, "GHZ check failed at n={n}");
        let amps = 1u64 << n;
        let bytes = amps * 16;
        row(&[
            n.to_string(),
            amps.to_string(),
            human_bytes(bytes),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
            format!("{:.2}", elapsed.as_secs_f64() * 1e6 / n as f64),
        ]);
    }
    println!(
        "\nShape check: time and memory double per added qubit (pure 2^n\n\
         scaling). Extrapolating, 35 qubits needs {} of state — the paper's\n\
         laptop-class ceiling; ~50 qubits ({}) is the proof-of-concept\n\
         horizon it mentions.",
        human_bytes(16u64 << 35),
        human_bytes(16u64 << 50)
    );
    let _ = sci(0.0);
}

fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1}{}", UNITS[u])
}
