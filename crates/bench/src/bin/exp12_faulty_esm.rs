//! E12 (ablation / §2.1): faulty syndrome measurement — why ESM "needs to
//! be repeated multiple times before a final conclusion is reached".
//! Logical error rate vs number of majority-voted ESM rounds.

use qca_bench::{header, row, sci};
use qec::faulty::faulty_logical_error_rate;
use qec::StabilizerCode;

fn main() {
    let trials = 25_000;
    println!("\n== E12: repetition-3, data noise p=0.01, measurement noise q ==");
    header(&["q_meas", "1 round", "3 rounds", "5 rounds", "9 rounds"]);
    let code = StabilizerCode::repetition(3);
    for q in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let r: Vec<String> = [1usize, 3, 5, 9]
            .iter()
            .map(|&rounds| {
                sci(faulty_logical_error_rate(
                    &code, 0.01, q, rounds, trials, 12,
                ))
            })
            .collect();
        row(&[
            sci(q),
            r[0].clone(),
            r[1].clone(),
            r[2].clone(),
            r[3].clone(),
        ]);
    }

    println!("\n== E12b: Steane [[7,1,3]], p=0.005 ==");
    header(&["q_meas", "1 round", "3 rounds", "7 rounds"]);
    let steane = StabilizerCode::steane();
    for q in [0.0, 0.05, 0.10] {
        let r: Vec<String> = [1usize, 3, 7]
            .iter()
            .map(|&rounds| {
                sci(faulty_logical_error_rate(
                    &steane, 0.005, q, rounds, 10_000, 13,
                ))
            })
            .collect();
        row(&[sci(q), r[0].clone(), r[1].clone(), r[2].clone()]);
    }
    println!(
        "\nShape check: at q=0 all columns agree (code capacity); as q grows,\n\
         one noisy reading is useless while majority-voted repetition\n\
         restores the code-capacity rate — the paper's prescription."
    );
}
