//! E6 (§2.7): realistic error models — impact of error rates from the
//! current 1e-2 down to the 1e-5/1e-6 regime, and beyond the simplistic
//! depolarizing model (bit-flip, phase-flip, amplitude damping).

use cqasm::GateKind;
use openql::{Kernel, QuantumProgram};
use qca_bench::{header, row, sci};
use qca_core::{FullStack, QubitKind};
use qxsim::{ErrorChannel, QubitModel, RealisticParams, Simulator};

fn ghz_program(n: usize) -> QuantumProgram {
    let mut k = Kernel::new("ghz", n);
    k.h(0);
    for q in 0..n - 1 {
        k.cnot(q, q + 1);
    }
    k.measure_all();
    let mut p = QuantumProgram::new("ghz", n);
    p.add_kernel(k);
    p
}

fn qft_like(n: usize) -> cqasm::Program {
    let mut b = cqasm::Program::builder(n).subcircuit("qft");
    for q in 0..n {
        b = b.gate(GateKind::H, &[q]);
        for t in q + 1..n {
            b = b.gate(GateKind::CRk((t - q + 1) as u32), &[t, q]);
        }
    }
    b.measure_all().build()
}

fn main() {
    let n = 5;
    let shots = 2000;

    println!("\n== E6a: GHZ success vs depolarizing error rate ==");
    header(&["p (2q gate)", "ghz fidelity", "error amplification"]);
    let ghz = ghz_program(n);
    let mut baseline = None;
    for p2 in [0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 5e-2] {
        let stack = FullStack::perfect(n).with_qubits(if p2 == 0.0 {
            QubitKind::Perfect
        } else {
            QubitKind::Realistic {
                p1: p2 / 10.0,
                p2,
                readout: 0.0,
            }
        });
        let run = stack.execute(&ghz, shots).expect("executes");
        let good = run.histogram.probability(0) + run.histogram.probability((1 << n) - 1);
        if p2 == 0.0 {
            baseline = Some(good);
        }
        let amp = baseline.map_or(0.0, |b| (b - good) / b.max(1e-12));
        row(&[sci(p2), format!("{good:.4}"), format!("{amp:.4}")]);
    }

    println!("\n== E6b: channel comparison at fixed rate 1e-2 (QFT-like circuit) ==");
    header(&["channel", "P(measured=ideal most likely)"]);
    let circuit = qft_like(4);
    let ideal_hist = Simulator::perfect().run_shots(&circuit, 4000).unwrap();
    let ideal_top = ideal_hist.most_likely().unwrap_or(0);
    let channels: [(&str, ErrorChannel); 4] = [
        ("depolarizing", ErrorChannel::Depolarizing { p: 1e-2 }),
        ("bit-flip", ErrorChannel::BitFlip { p: 1e-2 }),
        ("phase-flip", ErrorChannel::PhaseFlip { p: 1e-2 }),
        (
            "amp-damping",
            ErrorChannel::AmplitudeDamping { gamma: 1e-2 },
        ),
    ];
    for (name, ch) in channels {
        let model = QubitModel::Realistic(RealisticParams {
            channel_1q: ch,
            channel_2q: ch,
            readout_error: 0.0,
            idle_channel: ErrorChannel::None,
        });
        let hist = Simulator::with_model(model)
            .run_shots(&circuit, 4000)
            .unwrap();
        row(&[
            name.to_owned(),
            format!("{:.4}", hist.probability(ideal_top)),
        ]);
    }

    println!("\n== E6c: readout error isolated ==");
    header(&["readout p", "observed flip rate"]);
    let meas_only = {
        let mut k = Kernel::new("m", 1);
        k.measure(0);
        let mut p = QuantumProgram::new("m", 1);
        p.add_kernel(k);
        p
    };
    for pm in [0.0, 0.01, 0.05, 0.10] {
        let stack = FullStack::perfect(1).with_qubits(QubitKind::Realistic {
            p1: 0.0,
            p2: 0.0,
            readout: pm,
        });
        let run = stack.execute(&meas_only, 5000).expect("executes");
        row(&[sci(pm), format!("{:.4}", run.histogram.probability(1))]);
    }
    println!(
        "\nShape check: fidelity degrades monotonically with the rate; the\n\
         1e-5/1e-6 regime is indistinguishable from perfect at these depths\n\
         (the paper's motivation for studying those rates on deeper codes),\n\
         while 1e-2 — today's hardware — visibly breaks a 5-qubit GHZ."
    );
}
