//! # qca-bench — the experiment harness
//!
//! One binary per paper experiment (see `DESIGN.md` for the experiment
//! index E1–E10) plus Criterion benches for the performance-sensitive
//! kernels. Each binary prints the rows/series the corresponding figure
//! or table of the paper reports.

use std::fmt::Display;

/// Prints a markdown-style table row.
pub fn row<D: Display>(cells: &[D]) {
    let s: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("| {} |", s.join(" | "));
}

/// Prints a table header with a separator line.
pub fn header(cells: &[&str]) {
    row(cells);
    let sep: Vec<String> = cells.iter().map(|_| "-".repeat(12)).collect();
    println!("|-{}-|", sep.join("-|-"));
}

/// Formats a float with 4 significant decimals.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float in scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:.2e}")
}
