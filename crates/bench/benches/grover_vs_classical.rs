//! Criterion bench for E7: quantum-vs-classical unstructured search work.
//! The quantum side pays per-iteration state updates; the classical side
//! scans. The crossover in *queries* is quadratic even though the
//! simulator itself is exponential.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qgs::classical::best_hamming_search;
use qgs::dna::MarkovModel;
use qgs::grover::{grover_search, optimal_iterations};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_grover(c: &mut Criterion) {
    let mut group = c.benchmark_group("grover_search");
    for bits in [8usize, 12, 14] {
        let target = (1u64 << bits) - 3;
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| grover_search(bits, |x| x == target, optimal_iterations(bits, 1)));
        });
    }
    group.finish();
}

fn bench_classical_scan(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(77);
    let mut group = c.benchmark_group("classical_hamming_scan");
    for len in [256usize, 1024, 4096] {
        let reference = MarkovModel::uniform(1).generate(len, &mut rng);
        let read = reference.subsequence(len / 2, 8);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| best_hamming_search(&reference, &read));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_grover, bench_classical_scan
}
criterion_main!(benches);
