//! Criterion benches for the QX gate kernels: specialised orbit-direct
//! kernels vs the original scan-and-skip reference path, and the
//! multi-shot sampling fast path vs full per-shot re-simulation.

use cqasm::{GateKind, GateUnitary, Program};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use qxsim::state::reference;
use qxsim::{Simulator, StateVector};

fn random_state(n: usize) -> StateVector {
    // A GHZ-like dense state; exact contents don't matter for timing.
    let mut s = StateVector::zero_state(n);
    for q in 0..n {
        s.apply_gate(&GateKind::H, &[q]);
        s.apply_gate(&GateKind::T, &[q]);
    }
    for q in 0..n - 1 {
        s.apply_gate(&GateKind::Cnot, &[q, q + 1]);
    }
    s
}

fn bench_1q(c: &mut Criterion) {
    let mut g = c.benchmark_group("apply_1q_h");
    for n in [10usize, 16] {
        let state = random_state(n);
        let q = n / 2;
        let m = match GateKind::H.unitary() {
            GateUnitary::One(m) => m,
            _ => unreachable!(),
        };
        g.throughput(Throughput::Elements(1 << n));
        g.bench_with_input(BenchmarkId::new("orbit", n), &n, |b, _| {
            b.iter_batched(
                || state.clone(),
                |mut s| s.apply_1q(&m, q),
                BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter_batched(
                || state.clone(),
                |mut s| reference::apply_1q(&mut s, &m, q),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_2q(c: &mut Criterion) {
    let mut g = c.benchmark_group("apply_2q_cnot");
    for n in [10usize, 16] {
        let state = random_state(n);
        let (hi, lo) = (n - 1, 1);
        g.throughput(Throughput::Elements(1 << n));
        g.bench_with_input(BenchmarkId::new("kernel", n), &n, |b, _| {
            b.iter_batched(
                || state.clone(),
                |mut s| s.apply_gate(&GateKind::Cnot, &[hi, lo]),
                BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter_batched(
                || state.clone(),
                |mut s| reference::apply_gate(&mut s, &GateKind::Cnot, &[hi, lo]),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();

    let mut g = c.benchmark_group("apply_2q_generic");
    for n in [10usize, 16] {
        let state = random_state(n);
        let (hi, lo) = (n - 1, 1);
        let m = match GateKind::Cr(0.7).unitary() {
            GateUnitary::Two(m) => m,
            _ => unreachable!(),
        };
        g.throughput(Throughput::Elements(1 << n));
        g.bench_with_input(BenchmarkId::new("orbit", n), &n, |b, _| {
            b.iter_batched(
                || state.clone(),
                |mut s| s.apply_2q(&m, hi, lo),
                BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter_batched(
                || state.clone(),
                |mut s| reference::apply_2q(&mut s, &m, hi, lo),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let bell = Program::builder(2)
        .gate(GateKind::H, &[0])
        .gate(GateKind::Cnot, &[0, 1])
        .measure_all()
        .build();
    let shots = 2000u64;
    let mut g = c.benchmark_group("bell_2000_shots");
    g.throughput(Throughput::Elements(shots));
    let fast = Simulator::perfect();
    let slow = Simulator::perfect().with_sampling_fast_path(false);
    g.bench_function("fast_path", |b| {
        b.iter(|| fast.run_shots(&bell, shots).unwrap())
    });
    g.bench_function("full_resim", |b| {
        b.iter(|| slow.run_shots(&bell, shots).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_1q, bench_2q, bench_sampling);
criterion_main!(benches);
