//! Criterion bench for the OpenQL pass pipeline: decomposition,
//! optimisation, routing and scheduling on growing circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use openql::{Compiler, Kernel, Platform, QuantumProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_program(qubits: usize, gates: usize, seed: u64) -> QuantumProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut k = Kernel::new("rand", qubits);
    for _ in 0..gates {
        if rng.gen_bool(0.4) {
            let a = rng.gen_range(0..qubits);
            let b = (a + 1 + rng.gen_range(0..qubits - 1)) % qubits;
            k.cnot(a, b);
        } else {
            let q = rng.gen_range(0..qubits);
            match rng.gen_range(0..4) {
                0 => k.h(q),
                1 => k.t(q),
                2 => k.rz(q, 0.3),
                _ => k.x(q),
            };
        }
    }
    k.measure_all();
    let mut p = QuantumProgram::new("rand", qubits);
    p.add_kernel(k);
    p
}

fn bench_full_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_superconducting_grid");
    for gates in [50usize, 200, 800] {
        let p = random_program(9, gates, 3);
        let compiler = Compiler::new(Platform::superconducting_grid(3, 3));
        group.bench_with_input(BenchmarkId::from_parameter(gates), &gates, |b, _| {
            b.iter(|| compiler.compile(&p).expect("compiles"));
        });
    }
    group.finish();
}

fn bench_perfect_compile(c: &mut Criterion) {
    let p = random_program(9, 400, 4);
    let compiler = Compiler::new(Platform::perfect(9));
    c.bench_function("compile_perfect_400g", |b| {
        b.iter(|| compiler.compile(&p).expect("compiles"));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_full_compile, bench_perfect_compile
}
criterion_main!(benches);
