//! Criterion bench for the algorithm-level workloads: Shor order finding,
//! VQE energy evaluation, and QAOA layer application.

use annealer::Ising;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optim::qaoa::Qaoa;
use optim::vqe::Vqe;
use qca_core::shor::order_finding_measurement;
use qxsim::{Pauli, PauliString, PauliSum};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_shor_order_finding(c: &mut Criterion) {
    let mut group = c.benchmark_group("shor_order_finding");
    for (a, n, t) in [(7u64, 15u64, 8u32), (2, 21, 10)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("a{a}_n{n}")),
            &(a, n, t),
            |b, &(a, n, t)| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| order_finding_measurement(a, n, t, &mut rng));
            },
        );
    }
    group.finish();
}

fn bench_vqe_energy(c: &mut Criterion) {
    let mut h = PauliSum::new();
    h.add(0.3435, PauliString::z(0))
        .add(-0.4347, PauliString::z(1))
        .add(0.5716, PauliString::new(vec![(0, Pauli::Z), (1, Pauli::Z)]))
        .add(0.0910, PauliString::new(vec![(0, Pauli::X), (1, Pauli::X)]));
    let vqe = Vqe::new(h, 2, 1);
    let params = vec![0.3; vqe.parameter_count()];
    c.bench_function("vqe_energy_eval_2q", |b| {
        b.iter(|| vqe.energy(&params));
    });
}

fn bench_qaoa_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("qaoa_evaluate");
    for n in [8usize, 12, 16] {
        let mut m = Ising::new(n);
        for i in 0..n {
            m.add_coupling(i, (i + 1) % n, 1.0);
        }
        let qaoa = Qaoa::new(m, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| qaoa.evaluate(&[0.4, 0.3]));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_shor_order_finding, bench_vqe_energy, bench_qaoa_evaluate
}
criterion_main!(benches);
