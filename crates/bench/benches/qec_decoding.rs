//! Criterion bench for E8: syndrome decoding throughput — the paper's
//! point that "a very large graph needs to be processed and interpreted
//! in real-time" makes decoder speed an architecture constraint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qec::decoder::decode_x_errors;
use qec::monte::{sample_error, NoiseKind};
use qec::{LookupDecoder, StabilizerCode, SurfaceCode, Tableau};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_surface_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("surface_decode_p02");
    for d in [3usize, 5, 7, 9] {
        let code = SurfaceCode::new(d);
        let mut rng = StdRng::seed_from_u64(5);
        let errors: Vec<_> = (0..32)
            .map(|_| sample_error(code.data_qubits(), 0.02, NoiseKind::BitFlip, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                for e in &errors {
                    let defects = code.x_error_defects(e);
                    let _ = decode_x_errors(&code, &defects);
                }
            });
        });
    }
    group.finish();
}

fn bench_lookup_build(c: &mut Criterion) {
    c.bench_function("steane_lookup_build", |b| {
        b.iter(|| LookupDecoder::for_code(&StabilizerCode::steane()));
    });
}

fn bench_tableau(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_ghz");
    for n in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut t = Tableau::zero_state(n);
                t.h(0);
                for q in 0..n - 1 {
                    t.cnot(q, q + 1);
                }
                t
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_surface_decode, bench_lookup_build, bench_tableau
}
criterion_main!(benches);
