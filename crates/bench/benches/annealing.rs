//! Criterion bench for the annealing substrate: SA and the digital
//! annealer on dense problems, plus the Chimera embedding cost (E4).

use annealer::{clique_embedding, Chimera, DigitalAnnealer, Ising, Sampler, SimulatedAnnealer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dense_ising(n: usize, seed: u64) -> Ising {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Ising::new(n);
    for i in 0..n {
        m.add_field(i, rng.gen_range(-1.0..1.0));
        for j in i + 1..n {
            m.add_coupling(i, j, rng.gen_range(-1.0..1.0));
        }
    }
    m
}

fn bench_sa(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_annealing");
    for n in [16usize, 64, 144] {
        let m = dense_ising(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| SimulatedAnnealer::new().sample(&m, 1));
        });
    }
    group.finish();
}

fn bench_digital(c: &mut Criterion) {
    let mut group = c.benchmark_group("digital_annealer");
    for n in [16usize, 64] {
        let m = dense_ising(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| DigitalAnnealer::new().sample(&m, 1));
        });
    }
    group.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let chimera = Chimera::dwave_2000q();
    c.bench_function("chimera_k64_clique_embedding", |b| {
        b.iter(|| clique_embedding(64, &chimera).expect("fits"));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sa, bench_digital, bench_embedding
}
criterion_main!(benches);
