//! Criterion bench for E1's control path: eQASM translation and
//! cycle-accurate micro-architecture execution throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqasm::{translate, MicroArchitecture, PulseOnlyDevice};
use openql::{Compiler, Kernel, Platform, QuantumProgram};

fn rb_like(length: usize) -> QuantumProgram {
    let mut k = Kernel::new("seq", 2);
    for i in 0..length {
        k.x90(0);
        k.y90(1);
        if i % 3 == 0 {
            k.cz(0, 1);
        }
    }
    k.measure_all();
    let mut p = QuantumProgram::new("seq", 2);
    p.add_kernel(k);
    p
}

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("eqasm_translate");
    for len in [50usize, 200, 800] {
        let out = Compiler::new(Platform::superconducting_grid(1, 2))
            .compile(&rb_like(len))
            .expect("compiles");
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| translate(&out.schedule).expect("translates"));
        });
    }
    group.finish();
}

fn bench_execute(c: &mut Criterion) {
    let mut group = c.benchmark_group("microarch_execute");
    for len in [50usize, 200, 800] {
        let out = Compiler::new(Platform::superconducting_grid(1, 2))
            .compile(&rb_like(len))
            .expect("compiles");
        let eq = translate(&out.schedule).expect("translates");
        let arch = MicroArchitecture::superconducting();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| {
                let mut dev = PulseOnlyDevice::new(2);
                arch.execute(&eq, &mut dev).expect("executes")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_translate, bench_execute
}
criterion_main!(benches);
