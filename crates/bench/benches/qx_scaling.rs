//! Criterion bench for E5: state-vector gate application cost vs qubit
//! count (the exponential wall of the QX engine).

use cqasm::GateKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qxsim::StateVector;

fn ghz(n: usize) -> StateVector {
    let mut s = StateVector::zero_state(n);
    s.apply_gate(&GateKind::H, &[0]);
    for q in 0..n - 1 {
        s.apply_gate(&GateKind::Cnot, &[q, q + 1]);
    }
    s
}

fn bench_ghz_prep(c: &mut Criterion) {
    let mut group = c.benchmark_group("qx_ghz_prep");
    for n in [8usize, 12, 16, 20] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| ghz(n));
        });
    }
    group.finish();
}

fn bench_single_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("qx_single_gate");
    for n in [10usize, 14, 18, 20] {
        let state = ghz(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || state.clone(),
                |mut s| {
                    s.apply_gate(&GateKind::H, &[n / 2]);
                    s
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ghz_prep, bench_single_gate
}
criterion_main!(benches);
