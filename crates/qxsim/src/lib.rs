//! # qxsim — the QX quantum simulator
//!
//! A Rust implementation of the QX simulator layer from Bertels et al.,
//! *"Quantum Computer Architecture: Towards Full-Stack Quantum
//! Accelerators"* (DATE 2020, §2.7). QX executes any quantum logic expressed
//! in cQASM on a dense state-vector engine and supports the paper's three
//! qubit models:
//!
//! - **perfect qubits** — no decoherence, no gate errors: the model offered
//!   to application developers;
//! - **realistic qubits** — configurable error channels (depolarizing and
//!   beyond: bit/phase flip, amplitude damping) plus readout errors;
//! - **real qubits** — realistic models instantiated from hardware
//!   calibration numbers.
//!
//! The engine scales with host memory exactly like the paper's C++ QX
//! (which reaches ~35 fully-entangled qubits on a laptop): state size is
//! `2^n` amplitudes.
//!
//! # Example
//!
//! ```
//! use cqasm::Program;
//! use qxsim::{QubitModel, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Program::parse(
//!     "qubits 2\n.bell\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n",
//! )?;
//!
//! // Application development: perfect qubits.
//! let perfect = Simulator::perfect().run_shots(&program, 100)?;
//! assert_eq!(perfect.count(0b01) + perfect.count(0b10), 0);
//!
//! // Architecture studies: realistic qubits at today's ~1e-2 error rates.
//! let noisy = Simulator::with_model(QubitModel::realistic_depolarizing(0.01, 0.02, 0.01));
//! let hist = noisy.run_shots(&program, 100)?;
//! assert_eq!(hist.shots(), 100);
//! # Ok(())
//! # }
//! ```

// Library paths must return typed errors, never abort (CI gates these
// lints); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod density;
pub mod error_model;
pub mod executor;
pub mod histogram;
pub mod observable;
pub mod plan;
pub mod qubit_model;
pub mod stabilizer;
pub mod state;

pub use density::{DensityMatrix, MAX_DENSITY_QUBITS};
pub use error_model::ErrorChannel;
pub use executor::{ExecuteError, FaultInjection, ShotResult, Simulator, SHOT_SEED_STRIDE};
pub use histogram::ShotHistogram;
pub use observable::{Pauli, PauliString, PauliSum};
pub use plan::{
    CircuitClass, CliffordGate, CompiledProgram, FusionStats, PlanOptions, PlannedGate, PlannedOp,
    StabOp, TerminalMeasure, MAX_FUSED_BLOCK_QUBITS, MAX_FUSED_DIAG_QUBITS,
    MAX_MEASURE_RUN_SAMPLING, MAX_SIM_QUBITS, MAX_STAB_QUBITS,
};
pub use qubit_model::{QubitModel, RealisticParams};
pub use stabilizer::EngineSelect;
pub use state::{
    par_min_qubits, parse_par_min_qubits, StateVector, MAX_1Q_LAYER_QUBITS, PAR_MIN_QUBITS,
};
