//! The QX execution engine: runs cQASM programs on the state-vector kernel
//! under a chosen qubit model.
//!
//! This realises the execution loop of Fig 3 in the paper: the (simulated)
//! micro-architectural layer sends each quantum instruction to QX, which
//! executes it, measures qubit states on demand and returns results to the
//! classical side.

use crate::error_model::flip_readout;
use crate::histogram::ShotHistogram;
use crate::qubit_model::QubitModel;
use crate::state::StateVector;
use cqasm::{Instruction, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Errors from executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecuteError {
    /// The program failed semantic validation before execution.
    Invalid(String),
}

impl std::fmt::Display for ExecuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecuteError::Invalid(m) => write!(f, "program invalid: {m}"),
        }
    }
}

impl std::error::Error for ExecuteError {}

/// Outcome of one shot: the final quantum state and the classical register.
#[derive(Debug, Clone)]
pub struct ShotResult {
    /// The post-execution quantum state.
    pub state: StateVector,
    /// Final classical bits (bit `i` = `b[i]`).
    pub bits: u64,
}

/// The QX simulator: a state-vector executor with a pluggable qubit model.
///
/// # Example
///
/// ```
/// use cqasm::Program;
/// use qxsim::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Program::parse("qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n")?;
/// let hist = Simulator::perfect().run_shots(&p, 200)?;
/// // Only |00> and |11> appear for a Bell pair.
/// assert_eq!(hist.count(0b01) + hist.count(0b10), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    model: QubitModel,
    seed: u64,
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::perfect()
    }
}

impl Simulator {
    /// A simulator over perfect qubits (the application-development model).
    pub fn perfect() -> Self {
        Simulator {
            model: QubitModel::Perfect,
            seed: 0xC0FFEE,
        }
    }

    /// A simulator over the given qubit model.
    pub fn with_model(model: QubitModel) -> Self {
        Simulator {
            model,
            seed: 0xC0FFEE,
        }
    }

    /// A simulator configured from the program's own `error_model`
    /// directive (the QX convention of declaring noise inside the cQASM
    /// file). Falls back to perfect qubits when the program declares no
    /// model or the model name is unknown.
    pub fn for_program(program: &Program) -> Self {
        let model = program
            .error_model()
            .and_then(QubitModel::from_spec)
            .unwrap_or(QubitModel::Perfect);
        Simulator::with_model(model)
    }

    /// Replaces the random seed (execution is deterministic per seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The active qubit model.
    pub fn model(&self) -> &QubitModel {
        &self.model
    }

    /// Runs the program once and returns the final state and bits.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] if the program fails validation.
    pub fn run_once(&self, program: &Program) -> Result<ShotResult, ExecuteError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.run_with_rng(program, &mut rng)
    }

    /// Runs the program `shots` times, collecting the final classical bits
    /// of each shot into a histogram.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] if the program fails validation.
    pub fn run_shots(&self, program: &Program, shots: u64) -> Result<ShotHistogram, ExecuteError> {
        program
            .validate()
            .map_err(|e| ExecuteError::Invalid(e.to_string()))?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut hist = ShotHistogram::new();
        for _ in 0..shots {
            let r = self.run_validated(program, &mut rng);
            hist.record(r.bits);
        }
        Ok(hist)
    }

    /// Runs the program `shots` times across `threads` worker threads.
    ///
    /// Each shot draws randomness from its own stream seeded by
    /// `(simulator seed, shot index)`, so the result is deterministic and
    /// *independent of the thread count* — but it is a different stream
    /// than the sequential [`Simulator::run_shots`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] if the program fails validation.
    pub fn run_shots_parallel(
        &self,
        program: &Program,
        shots: u64,
        threads: usize,
    ) -> Result<ShotHistogram, ExecuteError> {
        program
            .validate()
            .map_err(|e| ExecuteError::Invalid(e.to_string()))?;
        let threads = threads.max(1);
        let results: Vec<u64> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = shots * t as u64 / threads as u64;
                let hi = shots * (t as u64 + 1) / threads as u64;
                let sim = self;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::with_capacity((hi - lo) as usize);
                    for shot in lo..hi {
                        let mut rng =
                            StdRng::seed_from_u64(sim.seed.wrapping_add(shot.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                        out.push(sim.run_validated(program, &mut rng).bits);
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shot worker panicked"))
                .collect()
        });
        Ok(results.into_iter().collect())
    }

    /// Runs the program once with a caller-provided RNG.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] if the program fails validation.
    pub fn run_with_rng<R: Rng + ?Sized>(
        &self,
        program: &Program,
        rng: &mut R,
    ) -> Result<ShotResult, ExecuteError> {
        program
            .validate()
            .map_err(|e| ExecuteError::Invalid(e.to_string()))?;
        Ok(self.run_validated(program, rng))
    }

    fn run_validated<R: Rng + ?Sized>(&self, program: &Program, rng: &mut R) -> ShotResult {
        let n = program.qubit_count();
        let mut state = StateVector::zero_state(n);
        let mut bits: u64 = 0;
        let idle = self.model.idle_channel();
        for ins in program.flat_instructions() {
            self.execute_instruction(ins, &mut state, &mut bits, rng);
            // Schedule-aware idling: while this (top-level) instruction
            // occupies its operands, every *uninvolved* qubit decoheres
            // for one step. Explicit `wait` handles its own idling for
            // all qubits inside execute_instruction.
            if !idle.is_none() && !matches!(ins, Instruction::Wait(_) | Instruction::Display) {
                let involved: Vec<usize> = match ins {
                    Instruction::MeasureAll => (0..n).collect(),
                    other => other.qubits().iter().map(|q| q.index()).collect(),
                };
                for q in 0..n {
                    if !involved.contains(&q) {
                        idle.apply(&mut state, q, rng);
                    }
                }
            }
        }
        ShotResult { state, bits }
    }

    fn execute_instruction<R: Rng + ?Sized>(
        &self,
        ins: &Instruction,
        state: &mut StateVector,
        bits: &mut u64,
        rng: &mut R,
    ) {
        match ins {
            Instruction::PrepZ(q) => state.reset(q.index(), rng),
            Instruction::Gate(g) => self.apply_gate_noisy(state, &g.kind, &g.qubits, rng),
            Instruction::Cond(bit, g) => {
                if (*bits >> bit.index()) & 1 == 1 {
                    self.apply_gate_noisy(state, &g.kind, &g.qubits, rng);
                }
            }
            Instruction::Measure(q) => {
                let outcome = state.measure(q.index(), rng);
                let reported = flip_readout(outcome, self.model.readout_error(), rng);
                set_bit(bits, q.index(), reported);
            }
            Instruction::MeasureAll => {
                let basis = state.measure_all(rng);
                for q in 0..state.qubit_count() {
                    let outcome = (basis >> q) & 1 == 1;
                    let reported = flip_readout(outcome, self.model.readout_error(), rng);
                    set_bit(bits, q, reported);
                }
            }
            Instruction::Bundle(instrs) => {
                for inner in instrs {
                    self.execute_instruction(inner, state, bits, rng);
                }
            }
            Instruction::Wait(cycles) => {
                let idle = self.model.idle_channel();
                if !idle.is_none() {
                    for _ in 0..*cycles {
                        for q in 0..state.qubit_count() {
                            idle.apply(state, q, rng);
                        }
                    }
                }
            }
            Instruction::Display => {}
        }
    }

    fn apply_gate_noisy<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        kind: &cqasm::GateKind,
        qubits: &[cqasm::Qubit],
        rng: &mut R,
    ) {
        let idx: Vec<usize> = qubits.iter().map(|q| q.index()).collect();
        state.apply_gate(kind, &idx);
        let channel = self.model.gate_channel(kind.arity());
        if !channel.is_none() {
            for &q in &idx {
                channel.apply(state, q, rng);
            }
        }
    }
}

fn set_bit(bits: &mut u64, index: usize, value: bool) {
    if value {
        *bits |= 1 << index;
    } else {
        *bits &= !(1 << index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqasm::GateKind;

    fn bell() -> Program {
        Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build()
    }

    #[test]
    fn bell_pair_correlations() {
        let hist = Simulator::perfect().run_shots(&bell(), 500).unwrap();
        assert_eq!(hist.count(0b01), 0);
        assert_eq!(hist.count(0b10), 0);
        let p00 = hist.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.1, "p00 = {p00}");
    }

    #[test]
    fn deterministic_per_seed() {
        let sim = Simulator::perfect().with_seed(99);
        let a = sim.run_shots(&bell(), 50).unwrap();
        let b = sim.run_shots(&bell(), 50).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn conditional_gate_uses_measured_bit() {
        // Teleport-like: measure q0 after H, then flip q1 iff b0 == 1.
        // Final q1 always equals the measured bit; so b1 after measuring q1
        // equals b0.
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .instruction(Instruction::Cond(
                cqasm::Bit(0),
                cqasm::GateApp::new(GateKind::X, vec![cqasm::Qubit(1)]),
            ))
            .measure(1)
            .build();
        let hist = Simulator::perfect().run_shots(&p, 300).unwrap();
        for (bits, _) in hist.iter() {
            assert_eq!(bits & 1, (bits >> 1) & 1, "bits disagree: {bits:02b}");
        }
        // Both branches occur.
        assert!(hist.count(0b00) > 0 && hist.count(0b11) > 0);
    }

    #[test]
    fn prep_z_resets_mid_circuit() {
        let p = Program::builder(1)
            .gate(GateKind::X, &[0])
            .prep_z(0)
            .measure(0)
            .build();
        let hist = Simulator::perfect().run_shots(&p, 100).unwrap();
        assert_eq!(hist.count(1), 0);
    }

    #[test]
    fn readout_error_flips_outcomes() {
        let p = Program::builder(1).measure(0).build();
        let model = QubitModel::realistic_depolarizing(0.0, 0.0, 0.2);
        let hist = Simulator::with_model(model).run_shots(&p, 2000).unwrap();
        let rate = hist.probability(1);
        assert!((rate - 0.2).abs() < 0.05, "readout flip rate {rate}");
    }

    #[test]
    fn noisy_ghz_loses_parity() {
        let mut b = Program::builder(4).gate(GateKind::H, &[0]);
        for q in 0..3 {
            b = b.gate(GateKind::Cnot, &[q, q + 1]);
        }
        let p = b.measure_all().build();
        let noisy = Simulator::with_model(QubitModel::realistic_depolarizing(0.05, 0.05, 0.0));
        let hist = noisy.run_shots(&p, 500).unwrap();
        // With 5% depolarizing on every operand, states other than the GHZ
        // branches must appear.
        let ghz_only = hist.count(0b0000) + hist.count(0b1111);
        assert!(ghz_only < hist.shots(), "noise produced no deviation");
        // But the GHZ branches still dominate.
        assert!(ghz_only > hist.shots() / 2);
    }

    #[test]
    fn invalid_program_is_rejected() {
        let mut p = Program::new(1);
        let mut s = cqasm::Subcircuit::new("s");
        s.push(Instruction::gate(GateKind::H, &[3]));
        p.push_subcircuit(s);
        assert!(matches!(
            Simulator::perfect().run_shots(&p, 1),
            Err(ExecuteError::Invalid(_))
        ));
    }

    #[test]
    fn wait_applies_idle_decay() {
        let model = QubitModel::Realistic(crate::qubit_model::RealisticParams {
            channel_1q: crate::error_model::ErrorChannel::None,
            channel_2q: crate::error_model::ErrorChannel::None,
            readout_error: 0.0,
            idle_channel: crate::error_model::ErrorChannel::AmplitudeDamping { gamma: 0.5 },
        });
        let p = Program::builder(1)
            .gate(GateKind::X, &[0])
            .instruction(Instruction::Wait(3))
            .measure(0)
            .build();
        let hist = Simulator::with_model(model).run_shots(&p, 1000).unwrap();
        // Survival after 3 cycles of gamma=0.5 damping: 0.125.
        let survive = hist.probability(1);
        assert!((survive - 0.125).abs() < 0.05, "survival = {survive}");
    }

    #[test]
    fn run_once_returns_state() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .build();
        let r = Simulator::perfect().run_once(&p).unwrap();
        assert!((r.state.probability_of(0b00) - 0.5).abs() < 1e-10);
        assert_eq!(r.bits, 0);
    }
}

#[cfg(test)]
mod error_model_directive_tests {
    use super::*;

    #[test]
    fn program_error_model_drives_the_simulator() {
        let noisy = Program::parse(
            "qubits 1\nerror_model depolarizing_channel, 0.2\nx q[0]\nmeasure q[0]\n",
        )
        .unwrap();
        let sim = Simulator::for_program(&noisy);
        assert!(sim.model().is_noisy());
        let hist = sim.run_shots(&noisy, 2000).unwrap();
        // Depolarizing at 0.2 flips the X outcome in a visible fraction.
        let wrong = hist.probability(0);
        assert!(wrong > 0.05 && wrong < 0.3, "wrong-rate {wrong}");
    }

    #[test]
    fn absent_or_unknown_models_mean_perfect() {
        let clean = Program::parse("qubits 1\nx q[0]\nmeasure q[0]\n").unwrap();
        assert!(!Simulator::for_program(&clean).model().is_noisy());
        let odd =
            Program::parse("qubits 1\nerror_model martian_noise, 0.5\nx q[0]\n").unwrap();
        assert!(!Simulator::for_program(&odd).model().is_noisy());
    }

    #[test]
    fn readout_parameter_is_honoured() {
        let p = Program::parse(
            "qubits 1\nerror_model depolarizing_channel, 0.0, 0.25\nmeasure q[0]\n",
        )
        .unwrap();
        let hist = Simulator::for_program(&p).run_shots(&p, 2000).unwrap();
        let flipped = hist.probability(1);
        assert!((flipped - 0.25).abs() < 0.04, "readout flip rate {flipped}");
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use cqasm::GateKind;

    fn bell() -> Program {
        Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build()
    }

    #[test]
    fn parallel_result_is_independent_of_thread_count() {
        let sim = Simulator::perfect().with_seed(77);
        let h1 = sim.run_shots_parallel(&bell(), 400, 1).unwrap();
        let h4 = sim.run_shots_parallel(&bell(), 400, 4).unwrap();
        let h7 = sim.run_shots_parallel(&bell(), 400, 7).unwrap();
        assert_eq!(h1, h4);
        assert_eq!(h4, h7);
    }

    #[test]
    fn parallel_statistics_match_physics() {
        let sim = Simulator::perfect().with_seed(3);
        let h = sim.run_shots_parallel(&bell(), 2000, 4).unwrap();
        assert_eq!(h.shots(), 2000);
        assert_eq!(h.count(0b01) + h.count(0b10), 0);
        let p00 = h.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.05, "p00 = {p00}");
    }

    #[test]
    fn parallel_rejects_invalid_programs() {
        let mut p = Program::new(1);
        let mut s = cqasm::Subcircuit::new("s");
        s.push(Instruction::gate(GateKind::H, &[5]));
        p.push_subcircuit(s);
        assert!(matches!(
            Simulator::perfect().run_shots_parallel(&p, 10, 2),
            Err(ExecuteError::Invalid(_))
        ));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let sim = Simulator::perfect();
        let h = sim.run_shots_parallel(&bell(), 10, 0).unwrap();
        assert_eq!(h.shots(), 10);
    }
}
