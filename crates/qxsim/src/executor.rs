//! The QX execution engine: runs cQASM programs on the state-vector kernel
//! under a chosen qubit model.
//!
//! This realises the execution loop of Fig 3 in the paper: the (simulated)
//! micro-architectural layer sends each quantum instruction to QX, which
//! executes it, measures qubit states on demand and returns results to the
//! classical side.
//!
//! Programs are lowered once into a [`CompiledProgram`] (kernels
//! classified, operands unpacked, idle sets precomputed as bitmasks) and
//! the compiled plan is replayed per shot. Multi-shot runs draw each shot's
//! randomness from its own counter-derived stream, so [`Simulator::run_shots`]
//! and [`Simulator::run_shots_parallel`] produce identical histograms for
//! any thread count; noise-free programs ending in a single `measure_all`
//! additionally take a sampling fast path that evolves the state once and
//! draws every shot from a cumulative probability table.

use crate::density::{kernel_unitary, DensityMatrix, KernelUnitary, MAX_DENSITY_QUBITS};
use crate::error_model::flip_readout;
use crate::histogram::ShotHistogram;
use crate::plan::{
    CircuitClass, CompiledProgram, FusionStats, PlanOptions, PlannedGate, PlannedOp, StabOp,
    TerminalMeasure, MAX_SIM_QUBITS,
};
use crate::qubit_model::QubitModel;
use crate::stabilizer::{self, EngineSelect, FrameSampler};
use crate::state::{auto_threads, par_min_qubits, StateVector};
use cqasm::{KernelClass, Program};
use qca_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// Per-run kernel-dispatch counts, one bucket per [`KernelClass`] (indexed
/// by [`KernelClass::class_index`]). Accumulated locally per worker and
/// summed, so the totals are independent of the thread split.
type KernelCounts = [u64; KernelClass::COUNT];

/// When telemetry is enabled, every `N`-th dispatch of each kernel class
/// (starting with its first) is wall-clock timed and recorded under the
/// `qxsim.kernel_ns.<class>` value series. Sampling keeps the `Instant`
/// reads off the overwhelming majority of gate applications while still
/// yielding per-class latency distributions.
const KERNEL_TIMING_SAMPLE_EVERY: u64 = 64;

/// Errors from executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecuteError {
    /// The program failed semantic validation before execution.
    Invalid(String),
    /// The program addresses more qubits than the state-vector engine can
    /// allocate (see [`crate::plan::MAX_SIM_QUBITS`]).
    TooManyQubits {
        /// Qubits the program needs.
        needed: usize,
        /// Qubits the engine supports.
        max: usize,
    },
    /// A configured fault fired (see [`FaultInjection::fail_at_shot`]).
    InjectedFault {
        /// The shot index at which the fault fired.
        shot: u64,
    },
    /// A worker thread of a parallel run died.
    Worker(String),
    /// A forced engine (see [`crate::Simulator::with_engine_select`])
    /// cannot execute the plan's circuit class.
    EngineMismatch {
        /// The engine that was forced (its stable name).
        engine: String,
        /// Why the plan is outside the engine's class.
        detail: String,
    },
}

impl std::fmt::Display for ExecuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecuteError::Invalid(m) => write!(f, "program invalid: {m}"),
            ExecuteError::TooManyQubits { needed, max } => write!(
                f,
                "program needs {needed} qubits but the simulator supports at most {max}"
            ),
            ExecuteError::InjectedFault { shot } => {
                write!(f, "injected fault fired at shot {shot}")
            }
            ExecuteError::Worker(m) => write!(f, "worker thread failed: {m}"),
            ExecuteError::EngineMismatch { engine, detail } => {
                write!(
                    f,
                    "engine mismatch: {engine} cannot run this plan: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for ExecuteError {}

/// Deterministic executor-level fault injection, for exercising the
/// stack's failure paths (used by the chaos harness and tests).
///
/// Both faults are deterministic functions of the configuration, never of
/// timing: campaigns replay bit-for-bit from a seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultInjection {
    /// Execute at most this many shots per multi-shot run. A run asked for
    /// more shots returns a *degraded-but-valid* histogram over the budget
    /// (models a control computer cutting a run short).
    pub shot_budget: Option<u64>,
    /// Fail the whole run with [`ExecuteError::InjectedFault`] when this
    /// shot index would execute (models a mid-run kernel failure).
    pub fail_at_shot: Option<u64>,
}

impl FaultInjection {
    /// No faults (the default).
    pub fn none() -> Self {
        FaultInjection::default()
    }
}

/// Outcome of one shot: the final quantum state and the classical register.
#[derive(Debug, Clone)]
pub struct ShotResult {
    /// The post-execution quantum state.
    pub state: StateVector,
    /// Final classical bits (bit `i` = `b[i]`).
    pub bits: u64,
}

/// The multiplier deriving shot `s`'s RNG seed from the simulator seed:
/// `seed + s * GOLDEN` (wrapping). The odd 64-bit golden-ratio constant
/// spreads consecutive shot indices across the seed space. Public so
/// independent oracles (the conformance harness) can replay the exact
/// per-shot RNG streams.
pub const SHOT_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The QX simulator: a state-vector executor with a pluggable qubit model.
///
/// # Example
///
/// ```
/// use cqasm::Program;
/// use qxsim::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Program::parse("qubits 2\nh q[0]\ncnot q[0], q[1]\nmeasure_all\n")?;
/// let hist = Simulator::perfect().run_shots(&p, 200)?;
/// // Only |00> and |11> appear for a Bell pair.
/// assert_eq!(hist.count(0b01) + hist.count(0b10), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    model: QubitModel,
    seed: u64,
    sampling_fast_path: bool,
    plan_options: PlanOptions,
    faults: FaultInjection,
    telemetry: Telemetry,
    engine_select: EngineSelect,
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::perfect()
    }
}

impl Simulator {
    /// A simulator over perfect qubits (the application-development model).
    pub fn perfect() -> Self {
        Simulator {
            model: QubitModel::Perfect,
            seed: 0xC0FFEE,
            sampling_fast_path: true,
            plan_options: PlanOptions::default(),
            faults: FaultInjection::none(),
            telemetry: Telemetry::disabled(),
            engine_select: EngineSelect::Auto,
        }
    }

    /// A simulator over the given qubit model.
    pub fn with_model(model: QubitModel) -> Self {
        Simulator {
            model,
            seed: 0xC0FFEE,
            sampling_fast_path: true,
            plan_options: PlanOptions::default(),
            faults: FaultInjection::none(),
            telemetry: Telemetry::disabled(),
            engine_select: EngineSelect::Auto,
        }
    }

    /// A simulator configured from the program's own `error_model`
    /// directive (the QX convention of declaring noise inside the cQASM
    /// file). Falls back to perfect qubits when the program declares no
    /// model or the model name is unknown.
    pub fn for_program(program: &Program) -> Self {
        let model = program
            .error_model()
            .and_then(QubitModel::from_spec)
            .unwrap_or(QubitModel::Perfect);
        Simulator::with_model(model)
    }

    /// Replaces the random seed (execution is deterministic per seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs an executor-level fault-injection configuration (see
    /// [`FaultInjection`]). The default injects nothing.
    pub fn with_fault_injection(mut self, faults: FaultInjection) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a telemetry handle. Multi-shot runs then record spans
    /// (plan compilation vs. shot execution), the kernel-dispatch
    /// histogram, sampling fast-path hits/misses, the parallel-sweep
    /// decision, and fault-injection events. The default is a disabled
    /// handle: every instrumentation point is a single branch and the hot
    /// kernel paths are untouched.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle (disabled unless installed via
    /// [`Simulator::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Enables or disables the multi-shot sampling fast path (enabled by
    /// default). The fast path is bit-for-bit identical to full per-shot
    /// re-simulation; the switch exists so tests and benchmarks can compare
    /// the two directly.
    pub fn with_sampling_fast_path(mut self, enabled: bool) -> Self {
        self.sampling_fast_path = enabled;
        self
    }

    /// Selects the simulation engine (see [`EngineSelect`]). The default,
    /// [`EngineSelect::Auto`], routes each compiled plan to the cheapest
    /// engine that is provably exact for its
    /// [`CircuitClass`](crate::plan::CircuitClass); forcing an engine onto
    /// a plan outside its class yields a typed
    /// [`ExecuteError::EngineMismatch`].
    pub fn with_engine_select(mut self, engine: EngineSelect) -> Self {
        self.engine_select = engine;
        self
    }

    /// The configured engine selection policy.
    pub fn engine_select(&self) -> EngineSelect {
        self.engine_select
    }

    /// Enables or disables the plan-compilation fusion stage (enabled by
    /// default). Fused plans apply exactly-composed kernels and agree with
    /// unfused plans up to floating-point association; the switch exists so
    /// differential tests and benchmarks can compare the two directly.
    pub fn with_fusion(mut self, enabled: bool) -> Self {
        self.plan_options.fusion = enabled;
        self
    }

    /// The plan-compilation options [`Simulator::compile`] uses.
    pub fn plan_options(&self) -> PlanOptions {
        self.plan_options
    }

    /// The active qubit model.
    pub fn model(&self) -> &QubitModel {
        &self.model
    }

    /// Validates `program` and lowers it into a [`CompiledProgram`] for
    /// this simulator's qubit model. All `run_*` entry points compile
    /// internally; call this to amortise compilation across your own
    /// execution loop.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] if the program fails validation.
    pub fn compile(&self, program: &Program) -> Result<CompiledProgram, ExecuteError> {
        let plan = CompiledProgram::compile_with(program, &self.model, self.plan_options)?;
        self.record_fusion_stats(&plan.fusion_stats());
        Ok(plan)
    }

    /// Runs the program once and returns the final state and bits.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] if the program fails validation.
    pub fn run_once(&self, program: &Program) -> Result<ShotResult, ExecuteError> {
        let plan = self.compile(program)?;
        Self::check_state_capacity(&plan)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        Ok(self.run_compiled(&plan, &mut rng))
    }

    /// Single-shot entry points return a [`ShotResult`] holding a full
    /// [`StateVector`], so they are capped at [`MAX_SIM_QUBITS`] even for
    /// Clifford plans the multi-shot engines could execute.
    fn check_state_capacity(plan: &CompiledProgram) -> Result<(), ExecuteError> {
        if plan.qubit_count() > MAX_SIM_QUBITS {
            return Err(ExecuteError::TooManyQubits {
                needed: plan.qubit_count(),
                max: MAX_SIM_QUBITS,
            });
        }
        Ok(())
    }

    /// Runs the program `shots` times, collecting the final classical bits
    /// of each shot into a histogram.
    ///
    /// Each shot draws randomness from its own stream seeded by
    /// `(simulator seed, shot index)` — the same streams
    /// [`Simulator::run_shots_parallel`] uses, so the two produce identical
    /// histograms.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] if the program fails validation.
    pub fn run_shots(&self, program: &Program, shots: u64) -> Result<ShotHistogram, ExecuteError> {
        self.run_shots_impl(program, shots, 1)
    }

    /// Runs the program `shots` times across `threads` worker threads.
    ///
    /// Per-shot seeding makes the result deterministic and independent of
    /// the thread count; `run_shots_parallel(p, s, 1)` equals
    /// `run_shots(p, s)`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] if the program fails validation.
    pub fn run_shots_parallel(
        &self,
        program: &Program,
        shots: u64,
        threads: usize,
    ) -> Result<ShotHistogram, ExecuteError> {
        self.run_shots_impl(program, shots, threads.max(1))
    }

    /// Applies the fault-injection configuration to a `shots`-shot run:
    /// truncates to the shot budget (degraded-but-valid) and errors if the
    /// configured failing shot would execute.
    fn effective_shots(&self, shots: u64) -> Result<u64, ExecuteError> {
        let effective = match self.faults.shot_budget {
            Some(budget) => shots.min(budget),
            None => shots,
        };
        if effective < shots {
            self.telemetry
                .incr("qxsim.faults.budget_truncated_shots", shots - effective);
        }
        if let Some(fail_at) = self.faults.fail_at_shot {
            if fail_at < effective {
                self.telemetry.incr("qxsim.faults.injected", 1);
                return Err(ExecuteError::InjectedFault { shot: fail_at });
            }
        }
        Ok(effective)
    }

    /// Records the threads-vs-serial dispatch decision the state-vector
    /// kernels will make for this plan (uniform across a run: it depends
    /// only on the qubit count, the [`par_min_qubits`] threshold and the
    /// probed host parallelism).
    fn record_sweep_decision(&self, qubits: usize) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let threshold = par_min_qubits();
        let kernel_threads = auto_threads();
        let parallel = qubits >= threshold && kernel_threads > 1;
        self.telemetry.incr_labeled(
            "qxsim.parallel_sweep",
            if parallel { "parallel" } else { "serial" },
            1,
        );
        self.telemetry
            .record_value("qxsim.parallel_sweep.qubits", qubits as f64);
        self.telemetry
            .record_value("qxsim.parallel_sweep.par_min_qubits", threshold as f64);
        self.telemetry.record_value(
            "qxsim.parallel_sweep.kernel_threads",
            if parallel { kernel_threads as f64 } else { 1.0 },
        );
    }

    /// Folds a run's kernel-dispatch counts into the telemetry histogram.
    fn record_kernel_counts(&self, counts: &KernelCounts) {
        if !self.telemetry.is_enabled() {
            return;
        }
        for (index, &count) in counts.iter().enumerate() {
            if count > 0 {
                self.telemetry.incr_labeled(
                    "qxsim.kernel_dispatch",
                    KernelClass::class_name(index),
                    count,
                );
            }
        }
    }

    /// Folds one compilation's fusion decisions into telemetry: gate counts
    /// entering/leaving the fusion stage plus a histogram of what fused.
    fn record_fusion_stats(&self, stats: &FusionStats) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .incr("qxsim.fusion.gates_before", stats.gates_before);
        self.telemetry
            .incr("qxsim.fusion.gates_after", stats.gates_after);
        self.telemetry
            .incr_labeled("qxsim.fusion", "fused_1q_runs", stats.fused_1q_runs);
        self.telemetry.incr_labeled(
            "qxsim.fusion",
            "fused_diag_batches",
            stats.fused_diag_batches,
        );
        self.telemetry
            .incr_labeled("qxsim.fusion", "fused_blocks", stats.fused_blocks);
        self.telemetry
            .incr_labeled("qxsim.fusion", "fused_1q_layers", stats.fused_1q_layers);
    }

    fn run_shots_impl(
        &self,
        program: &Program,
        shots: u64,
        threads: usize,
    ) -> Result<ShotHistogram, ExecuteError> {
        let _run_span = self.telemetry.span("qxsim", "run_shots");
        let plan = {
            let _span = self.telemetry.span("qxsim", "plan_compile");
            self.compile(program)?
        };
        self.run_planned_impl(&plan, shots, threads)
    }

    /// Runs a pre-compiled plan `shots` times across `threads` workers —
    /// the compile-once/run-many entry point the serving layer uses to
    /// reuse one [`CompiledProgram`] across requests. Identical semantics
    /// (fault injection, telemetry, per-shot RNG streams, thread-count
    /// independence) to [`Simulator::run_shots_parallel`] minus the
    /// compile step, so cached-plan runs are bit-identical to fresh ones.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::InjectedFault`] or
    /// [`ExecuteError::Worker`] under the same conditions as
    /// [`Simulator::run_shots_parallel`].
    pub fn run_shots_planned(
        &self,
        plan: &CompiledProgram,
        shots: u64,
        threads: usize,
    ) -> Result<ShotHistogram, ExecuteError> {
        let _run_span = self.telemetry.span("qxsim", "run_shots");
        self.run_planned_impl(plan, shots, threads.max(1))
    }

    fn run_planned_impl(
        &self,
        plan: &CompiledProgram,
        shots: u64,
        threads: usize,
    ) -> Result<ShotHistogram, ExecuteError> {
        self.telemetry.incr("qxsim.runs", 1);
        self.telemetry.incr("qxsim.shots.requested", shots);
        let shots = self.effective_shots(shots)?;
        self.telemetry.incr("qxsim.shots.executed", shots);
        let engine = self.resolve_engine(plan)?;
        if self.telemetry.is_enabled() {
            self.telemetry
                .incr_labeled("qxsim.engine", engine.name(), 1);
            self.telemetry
                .incr_labeled("qxsim.engine.class", plan.circuit_class().name(), 1);
        }
        match engine {
            EngineSelect::Tableau => return self.run_tableau_planned(plan, shots, threads),
            EngineSelect::PauliFrame => return self.run_frames_planned(plan, shots, threads),
            _ => {}
        }
        self.record_sweep_decision(plan.qubit_count());
        if self.sampling_fast_path {
            match plan.sampling_measures() {
                Some(TerminalMeasure::All) => {
                    self.telemetry
                        .incr_labeled("qxsim.sampling_fast_path", "hit", 1);
                    return self.run_terminal_sampling(plan, shots, threads);
                }
                Some(TerminalMeasure::Run(qs)) => {
                    self.telemetry
                        .incr_labeled("qxsim.sampling_fast_path", "hit", 1);
                    self.telemetry
                        .incr("qxsim.sampling_fast_path.measure_run", 1);
                    let qs = qs.clone();
                    return self.run_terminal_measure_run(plan, &qs, shots, threads);
                }
                None => {}
            }
        }
        self.telemetry
            .incr_labeled("qxsim.sampling_fast_path", "miss", 1);
        let _span = self.telemetry.span("qxsim", "shot_execution");
        let counting = self.telemetry.is_enabled();
        if threads <= 1 {
            let mut hist = ShotHistogram::new();
            let mut counts: KernelCounts = [0; KernelClass::COUNT];
            for shot in 0..shots {
                let mut rng = self.shot_rng(shot);
                let bits = self
                    .run_compiled_counted(plan, &mut rng, counting.then_some(&mut counts))
                    .bits;
                hist.record(bits);
            }
            self.record_kernel_counts(&counts);
            return Ok(hist);
        }
        let (results, counts) = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = shots * t as u64 / threads as u64;
                let hi = shots * (t as u64 + 1) / threads as u64;
                let sim = self;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::with_capacity((hi - lo) as usize);
                    let mut counts: KernelCounts = [0; KernelClass::COUNT];
                    for shot in lo..hi {
                        let mut rng = sim.shot_rng(shot);
                        let bits = sim
                            .run_compiled_counted(plan, &mut rng, counting.then_some(&mut counts))
                            .bits;
                        out.push(bits);
                    }
                    (out, counts)
                }));
            }
            let mut all = Vec::with_capacity(shots as usize);
            let mut total: KernelCounts = [0; KernelClass::COUNT];
            for h in handles {
                match h.join() {
                    Ok((part, counts)) => {
                        all.extend(part);
                        for (t, c) in total.iter_mut().zip(counts) {
                            *t += c;
                        }
                    }
                    Err(payload) => return Err(worker_error(payload)),
                }
            }
            Ok((all, total))
        })?;
        self.record_kernel_counts(&counts);
        Ok(results.into_iter().collect())
    }

    /// The engine [`EngineSelect::Auto`] picks for a plan: the cheapest
    /// one that is provably exact for its circuit class.
    fn auto_engine(plan: &CompiledProgram) -> EngineSelect {
        match plan.circuit_class() {
            CircuitClass::CliffordTerminal => EngineSelect::PauliFrame,
            CircuitClass::Clifford => EngineSelect::Tableau,
            CircuitClass::General => EngineSelect::StateVector,
        }
    }

    /// Resolves the configured engine selection against a plan's circuit
    /// class.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::EngineMismatch`] when a forced engine
    /// cannot execute the plan: the state-vector engine past
    /// [`MAX_SIM_QUBITS`] qubits, the tableau executor on a `General`
    /// plan, or the Pauli-frame sampler on anything but a
    /// `CliffordTerminal` plan.
    fn resolve_engine(&self, plan: &CompiledProgram) -> Result<EngineSelect, ExecuteError> {
        let class = plan.circuit_class();
        match self.engine_select {
            EngineSelect::Auto => Ok(Self::auto_engine(plan)),
            EngineSelect::StateVector => {
                if plan.qubit_count() > MAX_SIM_QUBITS {
                    return Err(ExecuteError::EngineMismatch {
                        engine: "state_vector".to_string(),
                        detail: format!(
                            "plan needs {} qubits but the state-vector engine supports at most {}",
                            plan.qubit_count(),
                            MAX_SIM_QUBITS
                        ),
                    });
                }
                Ok(EngineSelect::StateVector)
            }
            EngineSelect::Tableau => {
                if plan.stab_ops().is_none() {
                    return Err(ExecuteError::EngineMismatch {
                        engine: "tableau".to_string(),
                        detail: format!(
                            "plan class is {}; the tableau engine requires a Clifford plan",
                            class.name()
                        ),
                    });
                }
                Ok(EngineSelect::Tableau)
            }
            EngineSelect::PauliFrame => {
                if class != CircuitClass::CliffordTerminal {
                    return Err(ExecuteError::EngineMismatch {
                        engine: "pauli_frame".to_string(),
                        detail: format!(
                            "plan class is {}; the Pauli-frame sampler requires a \
                             terminally-measured Clifford plan",
                            class.name()
                        ),
                    });
                }
                Ok(EngineSelect::PauliFrame)
            }
        }
    }

    /// The concrete engine this simulator's [`EngineSelect`] resolves to
    /// for a plan — what a sweep of it would actually run on. Lets
    /// dispatchers (the service) pre-flight forced selections and label
    /// telemetry before committing a sharded sweep.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::EngineMismatch`] when a forced engine
    /// cannot execute the plan (see [`Simulator::with_engine_select`]).
    pub fn plan_engine(&self, plan: &CompiledProgram) -> Result<EngineSelect, ExecuteError> {
        self.resolve_engine(plan)
    }

    /// Runs a Clifford plan on the per-shot CHP tableau executor.
    fn run_tableau_planned(
        &self,
        plan: &CompiledProgram,
        shots: u64,
        threads: usize,
    ) -> Result<ShotHistogram, ExecuteError> {
        let Some(ops) = plan.stab_ops() else {
            return Err(ExecuteError::EngineMismatch {
                engine: "tableau".to_string(),
                detail: "plan has no stabilizer lowering".to_string(),
            });
        };
        let _span = self.telemetry.span("qxsim", "stab_tableau");
        self.telemetry.incr("qxsim.stab.tableau_shots", shots);
        let n = plan.qubit_count();
        if threads <= 1 {
            return Ok(self.tableau_range(ops, n, 0, shots));
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = shots * t as u64 / threads as u64;
                    let hi = shots * (t as u64 + 1) / threads as u64;
                    scope.spawn(move || self.tableau_range(ops, n, lo, hi))
                })
                .collect();
            let mut total = ShotHistogram::new();
            for h in handles {
                match h.join() {
                    Ok(part) => total.merge(&part),
                    Err(payload) => return Err(worker_error(payload)),
                }
            }
            Ok(total)
        })
    }

    /// Executes tableau shots `lo..hi`, sampling a wall-clock timing every
    /// [`KERNEL_TIMING_SAMPLE_EVERY`] shots when telemetry is enabled.
    fn tableau_range(&self, ops: &[StabOp], n: usize, lo: u64, hi: u64) -> ShotHistogram {
        let mut hist = ShotHistogram::new();
        let timing = self.telemetry.is_enabled();
        for shot in lo..hi {
            let mut rng = self.shot_rng(shot);
            if timing && (shot - lo).is_multiple_of(KERNEL_TIMING_SAMPLE_EVERY) {
                let start = Instant::now();
                let bits = stabilizer::tableau_shot(ops, n, &mut rng);
                self.telemetry.record_value_labeled(
                    "qxsim.stab.shot_ns",
                    "tableau",
                    start.elapsed().as_nanos() as f64,
                );
                hist.record(bits);
            } else {
                hist.record(stabilizer::tableau_shot(ops, n, &mut rng));
            }
        }
        hist
    }

    /// Runs a `CliffordTerminal` plan on the bit-packed Pauli-frame
    /// sampler. Falls back to the tableau executor (bit-identical) when
    /// the terminal run needs more than 64 random variables.
    fn run_frames_planned(
        &self,
        plan: &CompiledProgram,
        shots: u64,
        threads: usize,
    ) -> Result<ShotHistogram, ExecuteError> {
        let Some(ops) = plan.stab_ops() else {
            return Err(ExecuteError::EngineMismatch {
                engine: "pauli_frame".to_string(),
                detail: "plan has no stabilizer lowering".to_string(),
            });
        };
        let Some(sampler) = FrameSampler::build(ops, plan.qubit_count()) else {
            self.telemetry.incr("qxsim.stab.frame_fallback", 1);
            return self.run_tableau_planned(plan, shots, threads);
        };
        let _span = self.telemetry.span("qxsim", "stab_frames");
        self.telemetry.incr("qxsim.stab.frame_shots", shots);
        self.telemetry
            .incr("qxsim.stab.frame_words", FrameSampler::words(shots));
        let sampler = &sampler;
        if threads <= 1 {
            return Ok(sampler.sample_range(self.seed, SHOT_SEED_STRIDE, 0, shots));
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = shots * t as u64 / threads as u64;
                    let hi = shots * (t as u64 + 1) / threads as u64;
                    scope.spawn(move || sampler.sample_range(self.seed, SHOT_SEED_STRIDE, lo, hi))
                })
                .collect();
            let mut total = ShotHistogram::new();
            for h in handles {
                match h.join() {
                    Ok(part) => total.merge(&part),
                    Err(payload) => return Err(worker_error(payload)),
                }
            }
            Ok(total)
        })
    }

    /// The sampling fast path: evolve the (noise-free, terminally measured)
    /// plan once, then draw every shot from the cumulative probability
    /// table of the final state.
    ///
    /// Bit-exactness with full re-simulation: a full shot would apply the
    /// same gates with no RNG draws, then consume exactly one `f64` from
    /// the shot's stream inside `measure_all` (readout is exact, so
    /// `flip_readout` draws nothing). Here each shot consumes that same
    /// first `f64`, and the binary search on the cumulative table returns
    /// the same basis state as the linear accumulation scan.
    fn run_terminal_sampling(
        &self,
        plan: &CompiledProgram,
        shots: u64,
        threads: usize,
    ) -> Result<ShotHistogram, ExecuteError> {
        let _span = self.telemetry.span("qxsim", "sample_shots");
        let state = self.evolve_prefix(plan);
        let cum = state.cumulative_probabilities();
        // Outcomes are counted into a dense per-basis-state bucket array and
        // folded into the histogram once at the end: a map update per shot
        // costs more than the draw itself for small programs. States too
        // large for a bucket table record per shot instead.
        const MAX_BUCKETS: usize = 1 << 20;
        if cum.len() > MAX_BUCKETS {
            let sample_range = |lo: u64, hi: u64| -> Vec<u64> {
                (lo..hi)
                    .map(|shot| StateVector::sample_from_cumulative(&cum, self.shot_draw(shot)))
                    .collect()
            };
            if threads <= 1 {
                return Ok(sample_range(0, shots).into_iter().collect());
            }
            let results: Vec<u64> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = shots * t as u64 / threads as u64;
                    let hi = shots * (t as u64 + 1) / threads as u64;
                    handles.push(scope.spawn(move || sample_range(lo, hi)));
                }
                let mut all = Vec::with_capacity(shots as usize);
                for h in handles {
                    match h.join() {
                        Ok(part) => all.extend(part),
                        Err(payload) => return Err(worker_error(payload)),
                    }
                }
                Ok(all)
            })?;
            return Ok(results.into_iter().collect());
        }
        let count_range = |lo: u64, hi: u64| -> Vec<u64> {
            let mut buckets = vec![0u64; cum.len()];
            for shot in lo..hi {
                let r = self.shot_draw(shot);
                buckets[StateVector::sample_from_cumulative(&cum, r) as usize] += 1;
            }
            buckets
        };
        let buckets = if threads <= 1 {
            count_range(0, shots)
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let lo = shots * t as u64 / threads as u64;
                        let hi = shots * (t as u64 + 1) / threads as u64;
                        scope.spawn(move || count_range(lo, hi))
                    })
                    .collect();
                let mut total = vec![0u64; cum.len()];
                for h in handles {
                    match h.join() {
                        Ok(part) => {
                            for (t, b) in total.iter_mut().zip(part) {
                                *t += b;
                            }
                        }
                        Err(payload) => return Err(worker_error(payload)),
                    }
                }
                Ok(total)
            })?
        };
        let mut hist = ShotHistogram::new();
        for (bits, &count) in buckets.iter().enumerate() {
            hist.record_many(bits as u64, count);
        }
        Ok(hist)
    }

    /// Applies the unitary gate prefix of a sampling-eligible plan to a
    /// fresh zero state, folding the kernel-dispatch counts into telemetry
    /// once.
    fn evolve_prefix(&self, plan: &CompiledProgram) -> StateVector {
        let mut state = StateVector::zero_state(plan.qubit_count());
        let mut counts: KernelCounts = [0; KernelClass::COUNT];
        let counting = self.telemetry.is_enabled();
        for op in plan.ops() {
            if let PlannedOp::Gate(g) = op {
                if counting {
                    let idx = g.kernel.class_index();
                    counts[idx] += 1;
                    if counts[idx] % KERNEL_TIMING_SAMPLE_EVERY == 1 {
                        let start = Instant::now();
                        state.apply_kernel(&g.kernel, &g.qubits);
                        self.telemetry.record_value_labeled(
                            "qxsim.kernel_ns",
                            KernelClass::class_name(idx),
                            start.elapsed().as_nanos() as f64,
                        );
                        continue;
                    }
                }
                state.apply_kernel(&g.kernel, &g.qubits);
            }
        }
        self.record_kernel_counts(&counts);
        state
    }

    /// The per-qubit variant of the sampling fast path: evolve the
    /// noise-free gate prefix once, then replay the terminal `measure` run
    /// for every shot against the frozen state, memoising the conditional
    /// one-probabilities per realised outcome prefix (see
    /// [`MeasureCascade`]).
    ///
    /// Bit-exactness with full re-simulation: a full shot applies the same
    /// gates with no RNG draws, then for each terminal `measure q` computes
    /// `P(q = 1)` on its collapsed state and consumes exactly one `f64`
    /// (`gen_bool`; readout is exact for sampling-eligible plans, so
    /// `flip_readout` draws nothing). The cascade computes the identical
    /// probability by replaying the same collapse chain on a clone of the
    /// frozen state — the same floating-point operations in the same order
    /// — and consumes the same draw from the same per-shot stream.
    fn run_terminal_measure_run(
        &self,
        plan: &CompiledProgram,
        qs: &[usize],
        shots: u64,
        threads: usize,
    ) -> Result<ShotHistogram, ExecuteError> {
        let _span = self.telemetry.span("qxsim", "sample_shots");
        let state = self.evolve_prefix(plan);
        let state = &state;
        let sample_range = |lo: u64, hi: u64| -> ShotHistogram {
            let mut cascade = MeasureCascade::new(state, qs);
            let mut hist = ShotHistogram::new();
            for shot in lo..hi {
                let mut rng = self.shot_rng(shot);
                hist.record(cascade.sample(&mut rng));
            }
            hist
        };
        if threads <= 1 {
            return Ok(sample_range(0, shots));
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = shots * t as u64 / threads as u64;
                    let hi = shots * (t as u64 + 1) / threads as u64;
                    let sample_range = &sample_range;
                    scope.spawn(move || sample_range(lo, hi))
                })
                .collect();
            let mut total = ShotHistogram::new();
            for h in handles {
                match h.join() {
                    Ok(part) => total.merge(&part),
                    Err(payload) => return Err(worker_error(payload)),
                }
            }
            Ok(total)
        })
    }

    /// Executes exactly shots `lo..hi` of a multi-shot run on a
    /// pre-compiled plan, returning their partial histogram.
    ///
    /// Shots draw from the same counter-derived per-shot streams as
    /// [`Simulator::run_shots`], so merging the partial histograms of any
    /// disjoint cover of `0..shots` (see [`ShotHistogram::merge`])
    /// reproduces the single-call histogram bit-for-bit — the sharding
    /// primitive the serving runtime uses to split one large job across a
    /// worker pool.
    ///
    /// Fault injection is *not* applied here: a sharding coordinator
    /// truncates or fails the whole run before splitting (as
    /// [`Simulator::run_shots_planned`] does).
    pub fn run_shot_range(&self, plan: &CompiledProgram, lo: u64, hi: u64) -> ShotHistogram {
        let mut hist = ShotHistogram::new();
        if lo >= hi {
            return hist;
        }
        // A forced engine that mismatches the plan falls back to automatic
        // selection here: this entry point has no error channel, and the
        // coordinator (which does) has already vetted the engine choice.
        let engine = self
            .resolve_engine(plan)
            .unwrap_or_else(|_| Self::auto_engine(plan));
        match engine {
            EngineSelect::Tableau => {
                if let Some(ops) = plan.stab_ops() {
                    return self.tableau_range(ops, plan.qubit_count(), lo, hi);
                }
            }
            EngineSelect::PauliFrame => {
                if let Some(ops) = plan.stab_ops() {
                    match FrameSampler::build(ops, plan.qubit_count()) {
                        Some(sampler) => {
                            return sampler.sample_range(self.seed, SHOT_SEED_STRIDE, lo, hi)
                        }
                        None => return self.tableau_range(ops, plan.qubit_count(), lo, hi),
                    }
                }
            }
            _ => {}
        }
        if self.sampling_fast_path {
            match plan.sampling_measures() {
                Some(TerminalMeasure::All) => {
                    let state = self.evolve_prefix(plan);
                    let cum = state.cumulative_probabilities();
                    for shot in lo..hi {
                        let r = self.shot_draw(shot);
                        hist.record(StateVector::sample_from_cumulative(&cum, r));
                    }
                    return hist;
                }
                Some(TerminalMeasure::Run(qs)) => {
                    let qs = qs.clone();
                    let state = self.evolve_prefix(plan);
                    let mut cascade = MeasureCascade::new(&state, &qs);
                    for shot in lo..hi {
                        let mut rng = self.shot_rng(shot);
                        hist.record(cascade.sample(&mut rng));
                    }
                    return hist;
                }
                None => {}
            }
        }
        let counting = self.telemetry.is_enabled();
        let mut counts: KernelCounts = [0; KernelClass::COUNT];
        for shot in lo..hi {
            let mut rng = self.shot_rng(shot);
            let bits = self
                .run_compiled_counted(plan, &mut rng, counting.then_some(&mut counts))
                .bits;
            hist.record(bits);
        }
        self.record_kernel_counts(&counts);
        hist
    }

    /// Runs the program with *exact* channel semantics on the
    /// density-matrix engine and samples `shots` measurement outcomes from
    /// the final mixed state. See [`Simulator::run_density_planned`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] if the program fails validation or
    /// uses operations the density engine does not support, and
    /// [`ExecuteError::TooManyQubits`] above [`MAX_DENSITY_QUBITS`].
    pub fn run_shots_density(
        &self,
        program: &Program,
        shots: u64,
    ) -> Result<ShotHistogram, ExecuteError> {
        let _run_span = self.telemetry.span("qxsim", "run_shots_density");
        let plan = {
            let _span = self.telemetry.span("qxsim", "plan_compile");
            self.compile(program)?
        };
        self.run_density_planned(&plan, shots)
    }

    /// The density-matrix analogue of [`Simulator::run_shots_planned`]:
    /// evolves the full density matrix through the plan's unitary/idle
    /// prefix with *exact* channel semantics (no trajectory sampling), then
    /// draws every shot from the diagonal of the final mixed state.
    ///
    /// Deterministic per seed (same per-shot streams as the state-vector
    /// engine), but *not* trajectory-compatible: a noisy state-vector run
    /// samples one Kraus branch per shot while this engine averages the
    /// channel exactly, so histograms agree in distribution, not per shot.
    ///
    /// Supported plans: unitary gates, `skip`/`wait` idling, and a terminal
    /// measurement (`measure_all` or a trailing `measure` run). Mid-circuit
    /// measurement, conditionals and `prep_z` would require trajectory
    /// branching and are rejected as [`ExecuteError::Invalid`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] for unsupported plan shapes and
    /// [`ExecuteError::TooManyQubits`] above [`MAX_DENSITY_QUBITS`].
    pub fn run_density_planned(
        &self,
        plan: &CompiledProgram,
        shots: u64,
    ) -> Result<ShotHistogram, ExecuteError> {
        let _span = self.telemetry.span("qxsim", "density_shots");
        let n = plan.qubit_count();
        if n > MAX_DENSITY_QUBITS {
            return Err(ExecuteError::TooManyQubits {
                needed: n,
                max: MAX_DENSITY_QUBITS,
            });
        }
        let suffix = plan.terminal_measurement().cloned().ok_or_else(|| {
            ExecuteError::Invalid(
                "density engine requires a program ending in measurements".to_string(),
            )
        })?;
        let suffix_len = match &suffix {
            TerminalMeasure::All => 1,
            TerminalMeasure::Run(qs) => qs.len(),
        };
        let prefix = &plan.ops()[..plan.ops().len() - suffix_len];
        let shots = self.effective_shots(shots)?;
        self.telemetry.incr("qxsim.density.runs", 1);
        self.telemetry.incr("qxsim.density.shots", shots);
        let mut rho = DensityMatrix::zero_state(n);
        let idle = self.model.idle_channel();
        for op in prefix {
            match op {
                PlannedOp::Gate(g) => {
                    match kernel_unitary(&g.kernel) {
                        Some(KernelUnitary::Identity) => {}
                        Some(KernelUnitary::One(m)) => rho.apply_1q(&m, g.qubits[0]),
                        Some(KernelUnitary::Two(m)) => rho.apply_2q(&m, g.qubits[0], g.qubits[1]),
                        Some(KernelUnitary::Diag(d)) => rho.apply_fused_diag(&d, &g.qubits),
                        Some(KernelUnitary::Block(b)) => rho.apply_block(&b, &g.qubits),
                        None => {
                            return Err(ExecuteError::Invalid(
                                "density engine cannot apply three-qubit kernels; decompose first"
                                    .to_string(),
                            ))
                        }
                    }
                    let channel = self.model.gate_channel(g.arity);
                    if !channel.is_none() {
                        for &q in &g.qubits {
                            rho.apply_channel(&channel, q);
                        }
                    }
                }
                PlannedOp::Idle(mask) => {
                    for q in 0..n {
                        if (mask >> q) & 1 == 1 {
                            rho.apply_channel(&idle, q);
                        }
                    }
                }
                PlannedOp::Wait(cycles) => {
                    for _ in 0..*cycles {
                        for q in 0..n {
                            rho.apply_channel(&idle, q);
                        }
                    }
                }
                PlannedOp::PrepZ(_)
                | PlannedOp::Measure(_)
                | PlannedOp::MeasureAll
                | PlannedOp::Cond(..) => {
                    return Err(ExecuteError::Invalid(
                        "density engine supports only unitary and idle operations before the \
                         terminal measurement"
                            .to_string(),
                    ))
                }
            }
        }
        let probs = rho.diagonal_probabilities();
        let readout = self.model.readout_error();
        let mut hist = ShotHistogram::new();
        match &suffix {
            TerminalMeasure::All => {
                let cum = cumulative(&probs);
                for shot in 0..shots {
                    let mut rng = self.shot_rng(shot);
                    let r: f64 = rng.gen();
                    let basis = StateVector::sample_from_cumulative(&cum, r);
                    let mut bits = 0u64;
                    for q in 0..n {
                        let outcome = (basis >> q) & 1 == 1;
                        set_bit(&mut bits, q, flip_readout(outcome, readout, &mut rng));
                    }
                    hist.record(bits);
                }
            }
            TerminalMeasure::Run(qs) => {
                // Marginalise the diagonal onto the measured qubits: pattern
                // bit `j` is the outcome of `qs[j]`. A run can repeat a
                // qubit, so its length (not the register size) bounds the
                // pattern table.
                if qs.len() > 2 * MAX_DENSITY_QUBITS {
                    return Err(ExecuteError::Invalid(
                        "terminal measure run too long for the density engine".to_string(),
                    ));
                }
                let mut joint = vec![0.0f64; 1usize << qs.len()];
                for (basis, p) in probs.iter().enumerate() {
                    if *p <= 0.0 {
                        continue;
                    }
                    let mut pattern = 0usize;
                    for (j, &q) in qs.iter().enumerate() {
                        if (basis >> q) & 1 == 1 {
                            pattern |= 1 << j;
                        }
                    }
                    joint[pattern] += p;
                }
                let cum = cumulative(&joint);
                for shot in 0..shots {
                    let mut rng = self.shot_rng(shot);
                    let r: f64 = rng.gen();
                    let pattern = StateVector::sample_from_cumulative(&cum, r);
                    let mut bits = 0u64;
                    for (j, &q) in qs.iter().enumerate() {
                        let outcome = (pattern >> j) & 1 == 1;
                        set_bit(&mut bits, q, flip_readout(outcome, readout, &mut rng));
                    }
                    hist.record(bits);
                }
            }
        }
        Ok(hist)
    }

    /// The RNG stream for shot `shot` of a multi-shot run.
    fn shot_rng(&self, shot: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed.wrapping_add(shot.wrapping_mul(SHOT_SEED_STRIDE)))
    }

    /// The first `f64` of shot `shot`'s stream, identical to
    /// `self.shot_rng(shot).gen::<f64>()` but skipping the unused half of
    /// the generator state. The terminal-sampling fast path consumes
    /// exactly this one draw per shot (the draw `measure_all` would make).
    #[inline]
    fn shot_draw(&self, shot: u64) -> f64 {
        StdRng::first_f64(self.seed.wrapping_add(shot.wrapping_mul(SHOT_SEED_STRIDE)))
    }

    /// Runs the program once with a caller-provided RNG.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] if the program fails validation.
    pub fn run_with_rng<R: Rng + ?Sized>(
        &self,
        program: &Program,
        rng: &mut R,
    ) -> Result<ShotResult, ExecuteError> {
        let plan = self.compile(program)?;
        Self::check_state_capacity(&plan)?;
        Ok(self.run_compiled(&plan, rng))
    }

    /// Executes a compiled plan once with the given RNG (the full
    /// interpreter path, used for single runs and noisy/measure-heavy
    /// programs).
    pub fn run_compiled<R: Rng + ?Sized>(&self, plan: &CompiledProgram, rng: &mut R) -> ShotResult {
        self.run_compiled_counted(plan, rng, None)
    }

    /// [`Simulator::run_compiled`] with optional kernel-dispatch counting.
    /// `counts` is `None` when telemetry is disabled, so the per-gate cost
    /// of the instrumentation is a single `Option` branch.
    fn run_compiled_counted<R: Rng + ?Sized>(
        &self,
        plan: &CompiledProgram,
        rng: &mut R,
        mut counts: Option<&mut KernelCounts>,
    ) -> ShotResult {
        let n = plan.qubit_count();
        let mut state = StateVector::zero_state(n);
        let mut bits: u64 = 0;
        for op in plan.ops() {
            match op {
                PlannedOp::PrepZ(q) => state.reset(*q, rng),
                PlannedOp::Gate(g) => {
                    self.dispatch_gate(&mut state, g, rng, counts.as_deref_mut());
                }
                PlannedOp::Cond(bit, g) => {
                    if (bits >> bit) & 1 == 1 {
                        self.dispatch_gate(&mut state, g, rng, counts.as_deref_mut());
                    }
                }
                PlannedOp::Measure(q) => {
                    let outcome = state.measure(*q, rng);
                    let reported = flip_readout(outcome, self.model.readout_error(), rng);
                    set_bit(&mut bits, *q, reported);
                }
                PlannedOp::MeasureAll => {
                    let basis = state.measure_all(rng);
                    for q in 0..n {
                        let outcome = (basis >> q) & 1 == 1;
                        let reported = flip_readout(outcome, self.model.readout_error(), rng);
                        set_bit(&mut bits, q, reported);
                    }
                }
                PlannedOp::Idle(mask) => {
                    let idle = self.model.idle_channel();
                    for q in 0..n {
                        if (mask >> q) & 1 == 1 {
                            idle.apply(&mut state, q, rng);
                        }
                    }
                }
                PlannedOp::Wait(cycles) => {
                    let idle = self.model.idle_channel();
                    for _ in 0..*cycles {
                        for q in 0..n {
                            idle.apply(&mut state, q, rng);
                        }
                    }
                }
            }
        }
        ShotResult { state, bits }
    }

    /// Applies one planned gate, counting its dispatch and — on every
    /// [`KERNEL_TIMING_SAMPLE_EVERY`]-th dispatch of its class — timing the
    /// application into the per-class latency series. `counts` is `None`
    /// when telemetry is disabled, making both instrumentation points free.
    fn dispatch_gate<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        g: &PlannedGate,
        rng: &mut R,
        counts: Option<&mut KernelCounts>,
    ) {
        if let Some(c) = counts {
            let idx = g.kernel.class_index();
            c[idx] += 1;
            if c[idx] % KERNEL_TIMING_SAMPLE_EVERY == 1 {
                let start = Instant::now();
                self.apply_planned_gate(state, g, rng);
                self.telemetry.record_value_labeled(
                    "qxsim.kernel_ns",
                    KernelClass::class_name(idx),
                    start.elapsed().as_nanos() as f64,
                );
                return;
            }
        }
        self.apply_planned_gate(state, g, rng);
    }

    fn apply_planned_gate<R: Rng + ?Sized>(
        &self,
        state: &mut StateVector,
        g: &PlannedGate,
        rng: &mut R,
    ) {
        state.apply_kernel(&g.kernel, &g.qubits);
        let channel = self.model.gate_channel(g.arity);
        if !channel.is_none() {
            for &q in &g.qubits {
                channel.apply(state, q, rng);
            }
        }
    }
}

/// Lazily-memoised conditional measurement probabilities for a terminal
/// per-qubit `measure` run over a frozen pre-measurement state.
///
/// Sampling a run of `k` measurements walks a binary outcome tree of depth
/// `k`; each node's one-probability is computed once — by replaying the
/// exact collapse chain full re-simulation would perform for that outcome
/// prefix — and memoised under `(depth, prefix)`. Shots then only pay one
/// `HashMap` probe and one RNG draw per measured qubit. The run length is
/// capped at [`crate::plan::MAX_MEASURE_RUN_SAMPLING`] = 64 by plan
/// analysis (prefixes pack into a `u64`); since the outcome tree of a long
/// run can far exceed memory, the memo table is pruned on demand — cleared
/// when it reaches [`MAX_CASCADE_ENTRIES`] — trading recomputation for a
/// hard memory bound. Pruning is pure cache management: every probability
/// is recomputed by the identical collapse replay, so results are
/// unaffected.
struct MeasureCascade<'a> {
    base: &'a StateVector,
    qs: &'a [usize],
    /// `(depth, outcome-prefix bits)` → `P(qs[depth] = 1 | prefix)`.
    cache: HashMap<(usize, u64), f64>,
}

/// Memo-table bound for [`MeasureCascade`]: at `2^16` entries (~1.5 MiB)
/// the cache is cleared and rebuilt from the shots that follow.
const MAX_CASCADE_ENTRIES: usize = 1 << 16;

impl<'a> MeasureCascade<'a> {
    fn new(base: &'a StateVector, qs: &'a [usize]) -> Self {
        MeasureCascade {
            base,
            qs,
            cache: HashMap::new(),
        }
    }

    /// `P(qs[depth] = 1)` given the first `depth` outcomes in `prefix`
    /// (bit `i` of `prefix` = outcome of `qs[i]`), computed exactly as a
    /// full per-shot simulation would: collapse the measured qubits in
    /// order on a clone of the frozen state, then read the probability.
    fn p1(&mut self, depth: usize, prefix: u64) -> f64 {
        if let Some(&p) = self.cache.get(&(depth, prefix)) {
            return p;
        }
        let mut state = self.base.clone();
        for (i, &q) in self.qs[..depth].iter().enumerate() {
            state.collapse(q, (prefix >> i) & 1 == 1);
        }
        let p = state.probability_one(self.qs[depth]);
        if self.cache.len() >= MAX_CASCADE_ENTRIES {
            self.cache.clear();
        }
        self.cache.insert((depth, prefix), p);
        p
    }

    /// Draws one shot's classical bits, consuming exactly one `f64` from
    /// `rng` per measured qubit — the same draws, in the same order, as
    /// the full interpreter's `measure` handling.
    fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let mut bits = 0u64;
        let mut prefix = 0u64;
        for depth in 0..self.qs.len() {
            let p1 = self.p1(depth, prefix);
            let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
            set_bit(&mut bits, self.qs[depth], outcome);
            if outcome {
                prefix |= 1 << depth;
            }
        }
        bits
    }
}

/// Running cumulative sum of a probability vector, for binary-search
/// sampling via [`StateVector::sample_from_cumulative`].
fn cumulative(probs: &[f64]) -> Vec<f64> {
    let mut cum = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for p in probs {
        acc += p;
        cum.push(acc);
    }
    cum
}

/// Converts a worker thread's panic payload into a typed error so a dead
/// worker degrades into `Err(ExecuteError::Worker)` instead of aborting
/// the caller.
fn worker_error(payload: Box<dyn std::any::Any + Send>) -> ExecuteError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "worker panicked with non-string payload".to_string());
    ExecuteError::Worker(msg)
}

fn set_bit(bits: &mut u64, index: usize, value: bool) {
    if value {
        *bits |= 1 << index;
    } else {
        *bits &= !(1 << index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqasm::{GateKind, Instruction};

    fn bell() -> Program {
        Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build()
    }

    #[test]
    fn bell_pair_correlations() {
        let hist = Simulator::perfect().run_shots(&bell(), 500).unwrap();
        assert_eq!(hist.count(0b01), 0);
        assert_eq!(hist.count(0b10), 0);
        let p00 = hist.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.1, "p00 = {p00}");
    }

    #[test]
    fn deterministic_per_seed() {
        let sim = Simulator::perfect().with_seed(99);
        let a = sim.run_shots(&bell(), 50).unwrap();
        let b = sim.run_shots(&bell(), 50).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn conditional_gate_uses_measured_bit() {
        // Teleport-like: measure q0 after H, then flip q1 iff b0 == 1.
        // Final q1 always equals the measured bit; so b1 after measuring q1
        // equals b0.
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .instruction(Instruction::Cond(
                cqasm::Bit(0),
                cqasm::GateApp::new(GateKind::X, vec![cqasm::Qubit(1)]),
            ))
            .measure(1)
            .build();
        let hist = Simulator::perfect().run_shots(&p, 300).unwrap();
        for (bits, _) in hist.iter() {
            assert_eq!(bits & 1, (bits >> 1) & 1, "bits disagree: {bits:02b}");
        }
        // Both branches occur.
        assert!(hist.count(0b00) > 0 && hist.count(0b11) > 0);
    }

    #[test]
    fn prep_z_resets_mid_circuit() {
        let p = Program::builder(1)
            .gate(GateKind::X, &[0])
            .prep_z(0)
            .measure(0)
            .build();
        let hist = Simulator::perfect().run_shots(&p, 100).unwrap();
        assert_eq!(hist.count(1), 0);
    }

    #[test]
    fn readout_error_flips_outcomes() {
        let p = Program::builder(1).measure(0).build();
        let model = QubitModel::realistic_depolarizing(0.0, 0.0, 0.2);
        let hist = Simulator::with_model(model).run_shots(&p, 2000).unwrap();
        let rate = hist.probability(1);
        assert!((rate - 0.2).abs() < 0.05, "readout flip rate {rate}");
    }

    #[test]
    fn noisy_ghz_loses_parity() {
        let mut b = Program::builder(4).gate(GateKind::H, &[0]);
        for q in 0..3 {
            b = b.gate(GateKind::Cnot, &[q, q + 1]);
        }
        let p = b.measure_all().build();
        let noisy = Simulator::with_model(QubitModel::realistic_depolarizing(0.05, 0.05, 0.0));
        let hist = noisy.run_shots(&p, 500).unwrap();
        // With 5% depolarizing on every operand, states other than the GHZ
        // branches must appear.
        let ghz_only = hist.count(0b0000) + hist.count(0b1111);
        assert!(ghz_only < hist.shots(), "noise produced no deviation");
        // But the GHZ branches still dominate.
        assert!(ghz_only > hist.shots() / 2);
    }

    #[test]
    fn invalid_program_is_rejected() {
        let mut p = Program::new(1);
        let mut s = cqasm::Subcircuit::new("s");
        s.push(Instruction::gate(GateKind::H, &[3]));
        p.push_subcircuit(s);
        assert!(matches!(
            Simulator::perfect().run_shots(&p, 1),
            Err(ExecuteError::Invalid(_))
        ));
    }

    #[test]
    fn wait_applies_idle_decay() {
        let model = QubitModel::Realistic(crate::qubit_model::RealisticParams {
            channel_1q: crate::error_model::ErrorChannel::None,
            channel_2q: crate::error_model::ErrorChannel::None,
            readout_error: 0.0,
            idle_channel: crate::error_model::ErrorChannel::AmplitudeDamping { gamma: 0.5 },
        });
        let p = Program::builder(1)
            .gate(GateKind::X, &[0])
            .instruction(Instruction::Wait(3))
            .measure(0)
            .build();
        let hist = Simulator::with_model(model).run_shots(&p, 1000).unwrap();
        // Survival after 3 cycles of gamma=0.5 damping: 0.125.
        let survive = hist.probability(1);
        assert!((survive - 0.125).abs() < 0.05, "survival = {survive}");
    }

    #[test]
    fn run_once_returns_state() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .build();
        let r = Simulator::perfect().run_once(&p).unwrap();
        assert!((r.state.probability_of(0b00) - 0.5).abs() < 1e-10);
        assert_eq!(r.bits, 0);
    }

    #[test]
    fn compile_once_run_many() {
        let sim = Simulator::perfect().with_seed(5);
        let plan = sim.compile(&bell()).unwrap();
        let mut hist = ShotHistogram::new();
        for shot in 0..100 {
            let mut rng = sim.shot_rng(shot);
            hist.record(sim.run_compiled(&plan, &mut rng).bits);
        }
        assert_eq!(hist, sim.run_shots(&bell(), 100).unwrap());
    }
}

#[cfg(test)]
mod error_model_directive_tests {
    use super::*;

    #[test]
    fn program_error_model_drives_the_simulator() {
        let noisy = Program::parse(
            "qubits 1\nerror_model depolarizing_channel, 0.2\nx q[0]\nmeasure q[0]\n",
        )
        .unwrap();
        let sim = Simulator::for_program(&noisy);
        assert!(sim.model().is_noisy());
        let hist = sim.run_shots(&noisy, 2000).unwrap();
        // Depolarizing at 0.2 flips the X outcome in a visible fraction.
        let wrong = hist.probability(0);
        assert!(wrong > 0.05 && wrong < 0.3, "wrong-rate {wrong}");
    }

    #[test]
    fn absent_or_unknown_models_mean_perfect() {
        let clean = Program::parse("qubits 1\nx q[0]\nmeasure q[0]\n").unwrap();
        assert!(!Simulator::for_program(&clean).model().is_noisy());
        let odd = Program::parse("qubits 1\nerror_model martian_noise, 0.5\nx q[0]\n").unwrap();
        assert!(!Simulator::for_program(&odd).model().is_noisy());
    }

    #[test]
    fn readout_parameter_is_honoured() {
        let p =
            Program::parse("qubits 1\nerror_model depolarizing_channel, 0.0, 0.25\nmeasure q[0]\n")
                .unwrap();
        let hist = Simulator::for_program(&p).run_shots(&p, 2000).unwrap();
        let flipped = hist.probability(1);
        assert!((flipped - 0.25).abs() < 0.04, "readout flip rate {flipped}");
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use cqasm::{GateKind, Instruction};

    fn bell() -> Program {
        Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build()
    }

    #[test]
    fn parallel_result_is_independent_of_thread_count() {
        let sim = Simulator::perfect().with_seed(77);
        let h1 = sim.run_shots_parallel(&bell(), 400, 1).unwrap();
        let h4 = sim.run_shots_parallel(&bell(), 400, 4).unwrap();
        let h7 = sim.run_shots_parallel(&bell(), 400, 7).unwrap();
        assert_eq!(h1, h4);
        assert_eq!(h4, h7);
    }

    #[test]
    fn sequential_equals_parallel() {
        // run_shots and run_shots_parallel share per-shot RNG streams, for
        // noisy (full interpreter) programs too.
        let noisy = Simulator::with_model(QubitModel::realistic_depolarizing(0.02, 0.05, 0.01))
            .with_seed(11);
        let hs = noisy.run_shots(&bell(), 300).unwrap();
        let hp = noisy.run_shots_parallel(&bell(), 300, 5).unwrap();
        assert_eq!(hs, hp);
    }

    #[test]
    fn parallel_statistics_match_physics() {
        let sim = Simulator::perfect().with_seed(3);
        let h = sim.run_shots_parallel(&bell(), 2000, 4).unwrap();
        assert_eq!(h.shots(), 2000);
        assert_eq!(h.count(0b01) + h.count(0b10), 0);
        let p00 = h.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.05, "p00 = {p00}");
    }

    #[test]
    fn parallel_rejects_invalid_programs() {
        let mut p = Program::new(1);
        let mut s = cqasm::Subcircuit::new("s");
        s.push(Instruction::gate(GateKind::H, &[5]));
        p.push_subcircuit(s);
        assert!(matches!(
            Simulator::perfect().run_shots_parallel(&p, 10, 2),
            Err(ExecuteError::Invalid(_))
        ));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let sim = Simulator::perfect();
        let h = sim.run_shots_parallel(&bell(), 10, 0).unwrap();
        assert_eq!(h.shots(), 10);
    }
}

#[cfg(test)]
mod fast_path_tests {
    use super::*;
    use cqasm::GateKind;

    fn ghz(n: usize) -> Program {
        let mut b = Program::builder(n).gate(GateKind::H, &[0]);
        for q in 0..n - 1 {
            b = b.gate(GateKind::Cnot, &[q, q + 1]);
        }
        b.measure_all().build()
    }

    /// The load-bearing regression test for the sampling fast path: for a
    /// Bell pair and a 10-qubit GHZ state, drawing shots from the frozen
    /// final distribution must produce the *identical* histogram (same
    /// outcome for every shot index) as re-simulating each shot from
    /// scratch.
    #[test]
    fn sampling_fast_path_matches_full_resimulation() {
        let bell = {
            Program::builder(2)
                .gate(GateKind::H, &[0])
                .gate(GateKind::Cnot, &[0, 1])
                .measure_all()
                .build()
        };
        for (name, p) in [("bell", bell), ("ghz10", ghz(10))] {
            let fast = Simulator::perfect().with_seed(123);
            let slow = fast.clone().with_sampling_fast_path(false);
            assert!(fast.compile(&p).unwrap().terminal_sampling(), "{name}");
            let hf = fast.run_shots(&p, 2000).unwrap();
            let hs = slow.run_shots(&p, 2000).unwrap();
            assert_eq!(hf, hs, "{name}: fast path diverged from re-simulation");
        }
    }

    #[test]
    fn fast_path_is_thread_count_independent() {
        let sim = Simulator::perfect().with_seed(9);
        let p = ghz(6);
        let h1 = sim.run_shots_parallel(&p, 1000, 1).unwrap();
        let h3 = sim.run_shots_parallel(&p, 1000, 3).unwrap();
        assert_eq!(h1, h3);
    }

    #[test]
    fn fast_path_not_taken_for_noisy_models() {
        let sim = Simulator::with_model(QubitModel::realistic_depolarizing(0.01, 0.01, 0.0));
        let plan = sim.compile(&ghz(3)).unwrap();
        assert!(!plan.terminal_sampling());
    }

    #[test]
    fn ghz_statistics_through_the_fast_path() {
        let p = ghz(10);
        let h = Simulator::perfect().run_shots(&p, 2000).unwrap();
        assert_eq!(h.count(0) + h.count((1 << 10) - 1), 2000);
        let p0 = h.probability(0);
        assert!((p0 - 0.5).abs() < 0.05, "p0 = {p0}");
    }
}

#[cfg(test)]
mod measure_run_fast_path_tests {
    use super::*;
    use crate::plan::{TerminalMeasure, MAX_MEASURE_RUN_SAMPLING};
    use cqasm::GateKind;

    /// A Bell pair measured qubit-by-qubit (not `measure_all`): the shape
    /// the measure-run fast path targets.
    fn bell_measured() -> Program {
        Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure(0)
            .measure(1)
            .build()
    }

    /// The load-bearing equivalence test for the satellite: sampling a
    /// terminal per-qubit measure run must reproduce full per-shot
    /// re-simulation bit for bit.
    #[test]
    fn measure_run_fast_path_matches_full_resimulation() {
        let ghz_measured = {
            let mut b = Program::builder(5).gate(GateKind::H, &[0]);
            for q in 0..4 {
                b = b.gate(GateKind::Cnot, &[q, q + 1]);
            }
            // Measure in scrambled order to exercise non-trivial cascades.
            b.measure(3)
                .measure(0)
                .measure(4)
                .measure(1)
                .measure(2)
                .build()
        };
        for (name, p) in [("bell", bell_measured()), ("ghz5", ghz_measured)] {
            let fast = Simulator::perfect().with_seed(123);
            let slow = fast.clone().with_sampling_fast_path(false);
            assert!(fast.compile(&p).unwrap().terminal_sampling(), "{name}");
            let hf = fast.run_shots(&p, 2000).unwrap();
            let hs = slow.run_shots(&p, 2000).unwrap();
            assert_eq!(hf, hs, "{name}: measure-run fast path diverged");
        }
    }

    #[test]
    fn measure_run_fast_path_is_thread_count_independent() {
        let sim = Simulator::perfect().with_seed(9);
        let p = bell_measured();
        let h1 = sim.run_shots_parallel(&p, 1000, 1).unwrap();
        let h4 = sim.run_shots_parallel(&p, 1000, 4).unwrap();
        assert_eq!(h1, h4);
    }

    #[test]
    fn partial_measure_run_leaves_unmeasured_bits_clear() {
        // Only q1 is measured; bit 0 must stay 0.
        let p = Program::builder(2)
            .gate(GateKind::X, &[1])
            .measure(1)
            .build();
        let hist = Simulator::perfect().run_shots(&p, 50).unwrap();
        assert_eq!(hist.count(0b10), 50);
    }

    #[test]
    fn repeated_qubit_in_run_agrees_with_itself() {
        let p = Program::builder(1)
            .gate(GateKind::H, &[0])
            .measure(0)
            .measure(0)
            .build();
        let fast = Simulator::perfect().with_seed(7);
        let slow = fast.clone().with_sampling_fast_path(false);
        assert_eq!(
            fast.run_shots(&p, 500).unwrap(),
            slow.run_shots(&p, 500).unwrap()
        );
    }

    /// The `MAX_MEASURE_RUN_SAMPLING = 64` boundary: the cap is on run
    /// *length* (outcome prefixes pack into a `u64`), not register width,
    /// so a repeated-measure run probes it cheaply. 63- and 64-long runs
    /// still sample, a 65-long run falls back to the interpreter, and both
    /// paths agree bit for bit on either side of the edge.
    #[test]
    fn measure_run_sampling_boundary_at_64() {
        for len in [63usize, 64, 65] {
            let mut b = Program::builder(2)
                .gate(GateKind::H, &[0])
                .gate(GateKind::Cnot, &[0, 1]);
            for i in 0..len {
                b = b.measure(i % 2);
            }
            let p = b.build();
            let fast = Simulator::perfect().with_seed(0xBEEF + len as u64);
            let slow = fast.clone().with_sampling_fast_path(false);
            let plan = fast.compile(&p).unwrap();
            assert_eq!(
                plan.terminal_sampling(),
                len <= MAX_MEASURE_RUN_SAMPLING,
                "len = {len}: fast-path eligibility at the boundary"
            );
            assert!(matches!(
                plan.terminal_measurement(),
                Some(TerminalMeasure::Run(qs)) if qs.len() == len
            ));
            let hf = fast.run_shots(&p, 8).unwrap();
            let hs = slow.run_shots(&p, 8).unwrap();
            assert_eq!(hf, hs, "len = {len}: paths diverged at the boundary");
        }
    }

    /// The lifted ceiling in action: a 20-qubit register measured qubit by
    /// qubit used to fall back to per-shot interpretation (old cap: 16);
    /// it now samples, and still matches the interpreter bit for bit.
    #[test]
    fn wide_measure_runs_take_the_fast_path() {
        let n = 20;
        let mut b = Program::builder(n).gate(GateKind::H, &[0]);
        for q in 0..n - 1 {
            b = b.gate(GateKind::Cnot, &[q, q + 1]);
        }
        for q in 0..n {
            b = b.measure(q);
        }
        let p = b.build();
        let fast = Simulator::perfect().with_seed(42);
        let slow = fast.clone().with_sampling_fast_path(false);
        assert!(fast.compile(&p).unwrap().terminal_sampling());
        // Few shots: the slow side re-simulates a 2^20 state per shot.
        let hf = fast.run_shots(&p, 6).unwrap();
        let hs = slow.run_shots(&p, 6).unwrap();
        assert_eq!(hf, hs);
    }
}

#[cfg(test)]
mod fusion_execution_tests {
    use super::*;
    use cqasm::GateKind;

    /// A program exercising every fusion shape *and* every fusion barrier:
    /// 1q runs, a diagonal chain, a Toffoli cluster, a mid-circuit
    /// measurement and a conditional.
    fn stress(n: usize) -> Program {
        let mut b = Program::builder(n);
        for q in 0..n {
            b = b.gate(GateKind::H, &[q]);
        }
        b = b
            .gate(GateKind::T, &[0])
            .gate(GateKind::S, &[0])
            .gate(GateKind::Cz, &[0, 1])
            .gate(GateKind::CRk(2), &[1, 2])
            .gate(GateKind::Rz(0.3), &[1])
            .gate(GateKind::Toffoli, &[0, 1, 2])
            .gate(GateKind::Cnot, &[1, 2])
            .measure(0)
            .cond(0, GateKind::X, &[1])
            .gate(GateKind::H, &[2])
            .gate(GateKind::H, &[1]);
        b.measure_all().build()
    }

    /// Fused and unfused plans of the same program produce the same
    /// histogram under the same seed, through both the interpreter and the
    /// (non-)fast paths. Fusion is exact kernel composition, so the seeded
    /// outcome streams coincide.
    #[test]
    fn fused_and_unfused_plans_agree() {
        let p = stress(4);
        for fast_path in [true, false] {
            let fused = Simulator::perfect()
                .with_seed(99)
                .with_sampling_fast_path(fast_path);
            let unfused = fused.clone().with_fusion(false);
            let plan_f = fused.compile(&p).unwrap();
            let plan_u = unfused.compile(&p).unwrap();
            assert!(plan_f.fusion_stats().gates_after < plan_f.fusion_stats().gates_before);
            assert_eq!(plan_u.fusion_stats(), Default::default());
            let hf = fused.run_shots_planned(&plan_f, 500, 2).unwrap();
            let hu = unfused.run_shots_planned(&plan_u, 500, 2).unwrap();
            assert_eq!(hf, hu, "fast_path = {fast_path}");
        }
    }

    /// Fused plans run under realistic noise only when fusion was already
    /// suppressed at compile time — the channel-per-gate semantics must
    /// not change. The noisy histogram therefore matches a simulator with
    /// fusion explicitly off, shot for shot.
    #[test]
    fn noisy_runs_are_unchanged_by_the_fusion_flag() {
        let p = stress(3);
        let noisy = Simulator::with_model(QubitModel::realistic_depolarizing(0.02, 0.03, 0.01))
            .with_seed(7);
        let plan = noisy.compile(&p).unwrap();
        assert_eq!(plan.fusion_stats(), Default::default());
        let h_on = noisy.run_shots(&p, 300).unwrap();
        let h_off = noisy.clone().with_fusion(false).run_shots(&p, 300).unwrap();
        assert_eq!(h_on, h_off);
    }

    /// The density engine replays fused plans through `kernel_unitary`:
    /// 1q/2q fused kernels convert exactly, so density statistics match
    /// the state-vector engine on a fused diagonal-heavy program.
    #[test]
    fn density_engine_accepts_fused_two_qubit_kernels() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::H, &[1])
            .gate(GateKind::T, &[0])
            .gate(GateKind::Cz, &[0, 1])
            .gate(GateKind::CRk(2), &[0, 1])
            .gate(GateKind::H, &[1])
            .measure_all()
            .build();
        let sim = Simulator::perfect().with_seed(5);
        let plan = sim.compile(&p).unwrap();
        assert!(plan.fusion_stats().fused_diag_batches >= 1);
        let hd = sim.run_density_planned(&plan, 2000).unwrap();
        let hs = sim.run_shots(&p, 2000).unwrap();
        for bits in 0..4u64 {
            assert!(
                (hd.probability(bits) - hs.probability(bits)).abs() < 0.05,
                "bits = {bits:02b}"
            );
        }
    }

    /// Kernel timing is sampled into `qxsim.kernel_ns.<class>` series when
    /// telemetry is attached.
    #[test]
    fn kernel_timing_series_are_recorded() {
        let tel = Telemetry::enabled();
        let sim = Simulator::perfect()
            .with_telemetry(tel.clone())
            .with_sampling_fast_path(false);
        let p = stress(3);
        sim.run_shots(&p, 50).unwrap();
        let snap = tel.snapshot();
        assert!(
            snap.values
                .keys()
                .any(|k| k.starts_with("qxsim.kernel_ns.")),
            "no kernel timing series in {:?}",
            snap.values.keys().collect::<Vec<_>>()
        );
    }

    /// Compilation folds fusion decisions into telemetry counters.
    #[test]
    fn fusion_stats_reach_telemetry() {
        let tel = Telemetry::enabled();
        let sim = Simulator::perfect().with_telemetry(tel.clone());
        sim.compile(&stress(3)).unwrap();
        let snap = tel.snapshot();
        assert!(snap.counters.get("qxsim.fusion.gates_before").copied() > Some(0));
        assert!(snap.counters.contains_key("qxsim.fusion.gates_after"));
    }
}

#[cfg(test)]
mod plan_reuse_tests {
    use super::*;
    use cqasm::GateKind;

    fn bell() -> Program {
        Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build()
    }

    #[test]
    fn planned_run_equals_fresh_run() {
        let sim = Simulator::perfect().with_seed(31);
        let plan = sim.compile(&bell()).unwrap();
        let planned = sim.run_shots_planned(&plan, 400, 2).unwrap();
        let fresh = sim.run_shots_parallel(&bell(), 400, 2).unwrap();
        assert_eq!(planned, fresh);
    }

    #[test]
    fn shot_range_shards_merge_to_the_full_run() {
        // Any disjoint cover of 0..shots merges to the single-call
        // histogram — fast path, measure-run path and interpreter path.
        let programs = [
            bell(),
            Program::builder(2)
                .gate(GateKind::H, &[0])
                .gate(GateKind::Cnot, &[0, 1])
                .measure(0)
                .measure(1)
                .build(),
        ];
        let sims = [
            Simulator::perfect().with_seed(5),
            Simulator::with_model(QubitModel::realistic_depolarizing(0.02, 0.02, 0.01))
                .with_seed(5),
        ];
        for p in &programs {
            for sim in &sims {
                let plan = sim.compile(p).unwrap();
                let whole = sim.run_shots_planned(&plan, 300, 1).unwrap();
                let mut merged = ShotHistogram::new();
                for (lo, hi) in [(120, 300), (0, 77), (77, 120)] {
                    merged.merge(&sim.run_shot_range(&plan, lo, hi));
                }
                assert_eq!(merged, whole);
            }
        }
    }

    #[test]
    fn empty_shot_range_is_empty() {
        let sim = Simulator::perfect();
        let plan = sim.compile(&bell()).unwrap();
        assert_eq!(sim.run_shot_range(&plan, 10, 10).shots(), 0);
    }

    #[test]
    fn planned_run_applies_fault_injection() {
        let sim = Simulator::perfect().with_fault_injection(FaultInjection {
            shot_budget: None,
            fail_at_shot: Some(3),
        });
        let plan = sim.compile(&bell()).unwrap();
        assert_eq!(
            sim.run_shots_planned(&plan, 100, 1),
            Err(ExecuteError::InjectedFault { shot: 3 })
        );
    }
}

#[cfg(test)]
mod density_engine_tests {
    use super::*;
    use cqasm::GateKind;

    fn bell() -> Program {
        Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build()
    }

    #[test]
    fn density_bell_matches_state_vector_statistics() {
        let hist = Simulator::perfect()
            .run_shots_density(&bell(), 2000)
            .unwrap();
        assert_eq!(hist.count(0b01) + hist.count(0b10), 0);
        let p00 = hist.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.05, "p00 = {p00}");
    }

    #[test]
    fn density_is_deterministic_per_seed() {
        let sim = Simulator::perfect().with_seed(17);
        assert_eq!(
            sim.run_shots_density(&bell(), 300).unwrap(),
            sim.run_shots_density(&bell(), 300).unwrap()
        );
    }

    #[test]
    fn density_measure_run_marginalises_correctly() {
        // |+>|1>: measuring q1 then q0 — q1 always 1, q0 uniform.
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::X, &[1])
            .measure(1)
            .measure(0)
            .build();
        let hist = Simulator::perfect().run_shots_density(&p, 1000).unwrap();
        assert_eq!(hist.count(0b00) + hist.count(0b01), 0);
        let p10 = hist.probability(0b10);
        assert!((p10 - 0.5).abs() < 0.06, "p10 = {p10}");
    }

    #[test]
    fn density_noise_is_exact_not_sampled() {
        // Depolarizing at p on X|0> leaves P(1) = 1 - 2p/3 exactly; the
        // density engine must land near it even with heavy noise.
        let p = Program::builder(1)
            .gate(GateKind::X, &[0])
            .measure(0)
            .build();
        let sim = Simulator::with_model(QubitModel::realistic_depolarizing(0.3, 0.0, 0.0));
        let hist = sim.run_shots_density(&p, 4000).unwrap();
        let p1 = hist.probability(1);
        assert!((p1 - 0.8).abs() < 0.03, "p1 = {p1}");
    }

    #[test]
    fn density_rejects_mid_circuit_measurement() {
        let p = Program::builder(1)
            .gate(GateKind::H, &[0])
            .measure(0)
            .gate(GateKind::X, &[0])
            .measure(0)
            .build();
        assert!(matches!(
            Simulator::perfect().run_shots_density(&p, 10),
            Err(ExecuteError::Invalid(_))
        ));
    }

    #[test]
    fn density_rejects_oversized_registers() {
        let mut b = Program::builder(MAX_DENSITY_QUBITS + 1);
        b = b.gate(GateKind::X, &[0]);
        let p = b.measure_all().build();
        assert!(matches!(
            Simulator::perfect().run_shots_density(&p, 10),
            Err(ExecuteError::TooManyQubits { .. })
        ));
    }
}

#[cfg(test)]
mod fault_injection_tests {
    use super::*;
    use cqasm::GateKind;

    fn bell() -> Program {
        Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build()
    }

    #[test]
    fn shot_budget_degrades_but_stays_valid() {
        let sim = Simulator::perfect()
            .with_seed(4)
            .with_fault_injection(FaultInjection {
                shot_budget: Some(120),
                fail_at_shot: None,
            });
        let hist = sim.run_shots(&bell(), 1000).unwrap();
        assert_eq!(hist.shots(), 120);
        // Budget truncation is a prefix of the full run: same per-shot
        // streams, so it equals an un-faulted 120-shot run exactly.
        let clean = Simulator::perfect()
            .with_seed(4)
            .run_shots(&bell(), 120)
            .unwrap();
        assert_eq!(hist, clean);
    }

    #[test]
    fn budget_larger_than_request_changes_nothing() {
        let faulty = Simulator::perfect().with_fault_injection(FaultInjection {
            shot_budget: Some(10_000),
            fail_at_shot: None,
        });
        let clean = Simulator::perfect();
        assert_eq!(
            faulty.run_shots(&bell(), 50).unwrap(),
            clean.run_shots(&bell(), 50).unwrap()
        );
    }

    #[test]
    fn fail_at_shot_yields_typed_error() {
        let sim = Simulator::perfect().with_fault_injection(FaultInjection {
            shot_budget: None,
            fail_at_shot: Some(7),
        });
        assert_eq!(
            sim.run_shots(&bell(), 100),
            Err(ExecuteError::InjectedFault { shot: 7 })
        );
        // The fault also fires through the parallel path and the slow path.
        let slow = sim.clone().with_sampling_fast_path(false);
        assert_eq!(
            slow.run_shots_parallel(&bell(), 100, 4),
            Err(ExecuteError::InjectedFault { shot: 7 })
        );
    }

    #[test]
    fn fail_at_shot_beyond_run_is_harmless() {
        let sim = Simulator::perfect().with_fault_injection(FaultInjection {
            shot_budget: None,
            fail_at_shot: Some(500),
        });
        assert!(sim.run_shots(&bell(), 100).is_ok());
    }

    #[test]
    fn budget_can_mask_the_failing_shot() {
        // The budget truncates the run before the failing shot would
        // execute, so the run degrades instead of erroring.
        let sim = Simulator::perfect().with_fault_injection(FaultInjection {
            shot_budget: Some(5),
            fail_at_shot: Some(7),
        });
        let hist = sim.run_shots(&bell(), 100).unwrap();
        assert_eq!(hist.shots(), 5);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let mk = || {
            Simulator::perfect()
                .with_seed(21)
                .with_fault_injection(FaultInjection {
                    shot_budget: Some(33),
                    fail_at_shot: None,
                })
        };
        assert_eq!(
            mk().run_shots(&bell(), 64).unwrap(),
            mk().run_shots(&bell(), 64).unwrap()
        );
    }
}

#[cfg(test)]
mod stabilizer_engine_tests {
    use super::*;
    use crate::plan::MAX_STAB_QUBITS;
    use cqasm::GateKind;

    /// A Clifford circuit with mid-circuit measurement and a conditioned
    /// Pauli correction: quantum teleportation of |+i> across a Bell pair.
    fn clifford_mid_measure() -> Program {
        Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::S, &[0])
            .gate(GateKind::H, &[1])
            .gate(GateKind::Cnot, &[1, 2])
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::H, &[0])
            .measure(0)
            .measure(1)
            .cond(1, GateKind::X, &[2])
            .cond(0, GateKind::Z, &[2])
            .gate(GateKind::Sdag, &[2])
            .gate(GateKind::H, &[2])
            .measure(2)
            .build()
    }

    fn ghz(n: usize) -> Program {
        let mut b = Program::builder(n).gate(GateKind::H, &[0]);
        for q in 0..n - 1 {
            b = b.gate(GateKind::Cnot, &[q, q + 1]);
        }
        b.measure_all().build()
    }

    fn sim(engine: EngineSelect) -> Simulator {
        Simulator::perfect()
            .with_seed(99)
            .with_engine_select(engine)
    }

    #[test]
    fn tableau_matches_statevector_on_mid_measure_clifford() {
        let p = clifford_mid_measure();
        let sv = sim(EngineSelect::StateVector).run_shots(&p, 400).unwrap();
        let tab = sim(EngineSelect::Tableau).run_shots(&p, 400).unwrap();
        let auto = sim(EngineSelect::Auto).run_shots(&p, 400).unwrap();
        assert_eq!(sv, tab);
        assert_eq!(sv, auto);
        // Teleportation is deterministic on the payload: bit 2 is always 0.
        for (bits, _) in sv.iter() {
            assert_eq!((bits >> 2) & 1, 0, "payload survived teleportation");
        }
    }

    #[test]
    fn all_engines_agree_on_terminal_measure_all() {
        let p = ghz(5);
        let sv_sampled = sim(EngineSelect::StateVector).run_shots(&p, 300).unwrap();
        let sv_full = sim(EngineSelect::StateVector)
            .with_sampling_fast_path(false)
            .run_shots(&p, 300)
            .unwrap();
        let tab = sim(EngineSelect::Tableau).run_shots(&p, 300).unwrap();
        let frames = sim(EngineSelect::PauliFrame).run_shots(&p, 300).unwrap();
        let auto = sim(EngineSelect::Auto).run_shots(&p, 300).unwrap();
        assert_eq!(sv_sampled, sv_full);
        assert_eq!(sv_sampled, tab);
        assert_eq!(sv_sampled, frames);
        assert_eq!(sv_sampled, auto);
        assert_eq!(tab.count(0) + tab.count(0b11111), 300);
    }

    #[test]
    fn all_engines_agree_on_terminal_measure_runs() {
        let mut b = Program::builder(4)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::Y90, &[2])
            .gate(GateKind::Cz, &[2, 3]);
        for q in [0usize, 1, 2, 0] {
            b = b.measure(q);
        }
        let p = b.build();
        let sv = sim(EngineSelect::StateVector).run_shots(&p, 300).unwrap();
        let tab = sim(EngineSelect::Tableau).run_shots(&p, 300).unwrap();
        let frames = sim(EngineSelect::PauliFrame).run_shots(&p, 300).unwrap();
        assert_eq!(sv, tab);
        assert_eq!(sv, frames);
    }

    #[test]
    fn all_engines_agree_on_interleaved_measures() {
        // Scheduler-hoisted shape: measures interleaved with later gates
        // on other qubits, including a re-measure of an earlier qubit.
        let p = Program::builder(4)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure(1)
            .gate(GateKind::Y90, &[2])
            .measure(0)
            .gate(GateKind::Cz, &[2, 3])
            .gate(GateKind::H, &[0])
            .measure(2)
            .measure(0)
            .build();
        assert_eq!(
            sim(EngineSelect::Auto).compile(&p).unwrap().circuit_class(),
            CircuitClass::CliffordTerminal
        );
        let sv = sim(EngineSelect::StateVector).run_shots(&p, 300).unwrap();
        let tab = sim(EngineSelect::Tableau).run_shots(&p, 300).unwrap();
        let frames = sim(EngineSelect::PauliFrame).run_shots(&p, 300).unwrap();
        assert_eq!(sv, tab);
        assert_eq!(sv, frames);
    }

    #[test]
    fn stab_engines_shard_bit_identically() {
        let p = clifford_mid_measure();
        let whole = sim(EngineSelect::Auto).run_shots(&p, 240).unwrap();
        let threaded = sim(EngineSelect::Auto)
            .run_shots_parallel(&p, 240, 4)
            .unwrap();
        assert_eq!(whole, threaded);
        // Out-of-order shard merge via run_shot_range.
        let s = sim(EngineSelect::Auto);
        let plan = s.compile(&p).unwrap();
        let mut merged = s.run_shot_range(&plan, 160, 240);
        merged.merge(&s.run_shot_range(&plan, 0, 80));
        merged.merge(&s.run_shot_range(&plan, 80, 160));
        assert_eq!(whole, merged);

        let g = ghz(6);
        let whole = sim(EngineSelect::PauliFrame).run_shots(&g, 500).unwrap();
        let plan = sim(EngineSelect::PauliFrame).compile(&g).unwrap();
        let s = sim(EngineSelect::PauliFrame);
        // Shard boundaries that are not 64-aligned must not matter.
        let mut merged = s.run_shot_range(&plan, 130, 500);
        merged.merge(&s.run_shot_range(&plan, 0, 33));
        merged.merge(&s.run_shot_range(&plan, 33, 130));
        assert_eq!(whole, merged);
    }

    #[test]
    fn forced_engine_mismatch_is_a_typed_error() {
        let t_gate = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::T, &[0])
            .measure_all()
            .build();
        match sim(EngineSelect::Tableau).run_shots(&t_gate, 16) {
            Err(ExecuteError::EngineMismatch { engine, .. }) => assert_eq!(engine, "tableau"),
            other => panic!("expected engine mismatch, got {other:?}"),
        }
        match sim(EngineSelect::PauliFrame).run_shots(&clifford_mid_measure(), 16) {
            Err(ExecuteError::EngineMismatch { engine, .. }) => assert_eq!(engine, "pauli_frame"),
            other => panic!("expected engine mismatch, got {other:?}"),
        }
        match sim(EngineSelect::StateVector).run_shots(&ghz_run(40, 8), 16) {
            Err(ExecuteError::EngineMismatch { engine, .. }) => assert_eq!(engine, "state_vector"),
            other => panic!("expected engine mismatch, got {other:?}"),
        }
    }

    /// GHZ over `n` qubits closed by a terminal measure run on the first
    /// `k` qubits (keeps measured indices inside the u64 register).
    fn ghz_run(n: usize, k: usize) -> Program {
        let mut b = Program::builder(n).gate(GateKind::H, &[0]);
        for q in 0..n - 1 {
            b = b.gate(GateKind::Cnot, &[q, q + 1]);
        }
        for q in 0..k {
            b = b.measure(q);
        }
        b.build()
    }

    #[test]
    fn thousand_qubit_ghz_executes_past_the_statevector_ceiling() {
        let p = ghz_run(1000, 32);
        let plan = sim(EngineSelect::Auto).compile(&p).unwrap();
        assert_eq!(plan.circuit_class(), CircuitClass::CliffordTerminal);
        assert!(plan.qubit_count() > MAX_SIM_QUBITS);
        assert!(plan.qubit_count() <= MAX_STAB_QUBITS);
        let hist = sim(EngineSelect::Auto)
            .run_shots_parallel(&p, 500, 4)
            .unwrap();
        // Perfect GHZ correlations: the first 32 qubits agree in every shot.
        let ones = (1u64 << 32) - 1;
        assert_eq!(hist.count(0) + hist.count(ones), 500);
        assert!(hist.count(0) > 0 && hist.count(ones) > 0);
        // Bit-identical across worker counts.
        let single = sim(EngineSelect::Auto).run_shots(&p, 500).unwrap();
        assert_eq!(hist, single);
        // The tableau engine agrees with the frame sampler.
        let tab = sim(EngineSelect::Tableau).run_shots(&p, 500).unwrap();
        assert_eq!(hist, tab);
    }

    #[test]
    fn prep_z_resets_agree_across_engines() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .prep_z(0)
            .measure(0)
            .measure(1)
            .build();
        let sv = sim(EngineSelect::StateVector).run_shots(&p, 300).unwrap();
        let tab = sim(EngineSelect::Tableau).run_shots(&p, 300).unwrap();
        assert_eq!(sv, tab);
        // prep_z forces bit 0 low; bit 1 keeps the Bell marginal.
        for (bits, _) in sv.iter() {
            assert_eq!(bits & 1, 0);
        }
    }

    #[test]
    fn engine_telemetry_counts_runs() {
        let t = qca_telemetry::Telemetry::enabled();
        let s = Simulator::perfect().with_seed(5).with_telemetry(t.clone());
        s.run_shots(&ghz(4), 64).unwrap();
        s.run_shots(&clifford_mid_measure(), 64).unwrap();
        let snap = t.snapshot();
        let labeled = |family: &str, label: &str| -> u64 {
            snap.labeled
                .get(family)
                .and_then(|m| m.get(label))
                .copied()
                .unwrap_or(0)
        };
        assert_eq!(labeled("qxsim.engine", "pauli_frame"), 1);
        assert_eq!(labeled("qxsim.engine", "tableau"), 1);
        assert_eq!(labeled("qxsim.engine.class", "clifford_terminal"), 1);
        assert_eq!(labeled("qxsim.engine.class", "clifford"), 1);
        assert_eq!(snap.counters.get("qxsim.stab.frame_shots"), Some(&64));
        assert_eq!(snap.counters.get("qxsim.stab.tableau_shots"), Some(&64));
    }

    #[test]
    fn run_once_still_caps_at_statevector_width() {
        let p = ghz_run(40, 4);
        match Simulator::perfect().run_once(&p) {
            Err(ExecuteError::TooManyQubits { needed: 40, max }) => {
                assert_eq!(max, MAX_SIM_QUBITS)
            }
            other => panic!("expected TooManyQubits, got {other:?}"),
        }
    }
}
