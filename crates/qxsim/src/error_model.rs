//! Stochastic error channels for realistic-qubit simulation.
//!
//! The paper (§2.7) calls for simulating "realistic qubits" with error
//! models starting from the depolarizing channel and extending beyond it
//! (bit-flip, phase-flip, amplitude damping), at error rates spanning the
//! current 10⁻² down to the 10⁻⁵/10⁻⁶ regime the physics community needs to
//! reach. Channels are applied by Monte-Carlo unravelling on the state
//! vector (quantum-trajectory method): each shot samples one Kraus branch,
//! so averaging over shots reproduces the channel exactly.

use crate::state::StateVector;
use cqasm::math::{Mat2, C64};
use cqasm::GateKind;
use rand::Rng;

/// A single-qubit noise channel applied after gate operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorChannel {
    /// No noise (perfect qubits).
    None,
    /// Symmetric depolarizing: with probability `p`, apply X, Y or Z chosen
    /// uniformly. This is the "simplistic" baseline model named in §2.7.
    Depolarizing {
        /// Total error probability per application.
        p: f64,
    },
    /// Bit flip: with probability `p` apply X.
    BitFlip {
        /// Error probability per application.
        p: f64,
    },
    /// Phase flip: with probability `p` apply Z.
    PhaseFlip {
        /// Error probability per application.
        p: f64,
    },
    /// Amplitude damping with decay probability `gamma` (energy relaxation
    /// towards `|0>`, the trajectory version of T1 decay).
    AmplitudeDamping {
        /// Decay probability per application.
        gamma: f64,
    },
}

impl ErrorChannel {
    /// Applies one sample of the channel to qubit `q`.
    pub fn apply<R: Rng + ?Sized>(&self, state: &mut StateVector, q: usize, rng: &mut R) {
        match *self {
            ErrorChannel::None => {}
            ErrorChannel::Depolarizing { p } => {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    let pauli = match rng.gen_range(0..3) {
                        0 => GateKind::X,
                        1 => GateKind::Y,
                        _ => GateKind::Z,
                    };
                    state.apply_gate(&pauli, &[q]);
                }
            }
            ErrorChannel::BitFlip { p } => {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    state.apply_gate(&GateKind::X, &[q]);
                }
            }
            ErrorChannel::PhaseFlip { p } => {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    state.apply_gate(&GateKind::Z, &[q]);
                }
            }
            ErrorChannel::AmplitudeDamping { gamma } => {
                apply_amplitude_damping(state, q, gamma, rng);
            }
        }
    }

    /// Whether the channel is the identity.
    pub fn is_none(&self) -> bool {
        matches!(self, ErrorChannel::None)
    }
}

/// Quantum-trajectory application of the amplitude damping channel with
/// Kraus operators `K0 = diag(1, sqrt(1-g))`, `K1 = sqrt(g) |0><1|`.
fn apply_amplitude_damping<R: Rng + ?Sized>(
    state: &mut StateVector,
    q: usize,
    gamma: f64,
    rng: &mut R,
) {
    let gamma = gamma.clamp(0.0, 1.0);
    // Branch probability of the decay (K1) outcome is gamma * P(|1>).
    let p1 = state.probability_one(q);
    let p_decay = gamma * p1;
    if rng.gen_bool(p_decay.clamp(0.0, 1.0)) {
        // K1: project onto |1>, then flip to |0>. collapse() renormalises.
        state.collapse(q, true);
        state.apply_gate(&GateKind::X, &[q]);
    } else {
        // K0: damp the |1> amplitude and renormalise.
        let k0 = Mat2([
            [C64::ONE, C64::ZERO],
            [C64::ZERO, C64::real((1.0 - gamma).sqrt())],
        ]);
        state.apply_1q(&k0, q);
        let norm = state.norm();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            let scaled: Vec<C64> = state.amplitudes().iter().map(|a| *a * inv).collect();
            *state = StateVector::from_amplitudes(scaled);
        }
    }
}

/// Flips a classical measurement outcome with probability `p` (readout
/// error).
pub fn flip_readout<R: Rng + ?Sized>(outcome: bool, p: f64, rng: &mut R) -> bool {
    if p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)) {
        !outcome
    } else {
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn none_channel_is_identity() {
        let mut s = StateVector::zero_state(1);
        s.apply_gate(&GateKind::H, &[0]);
        let before = s.clone();
        ErrorChannel::None.apply(&mut s, 0, &mut rng());
        assert!((s.fidelity(&before) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bit_flip_rate_statistics() {
        let p = 0.3;
        let mut r = rng();
        let mut flipped = 0;
        let trials = 2000;
        for _ in 0..trials {
            let mut s = StateVector::zero_state(1);
            ErrorChannel::BitFlip { p }.apply(&mut s, 0, &mut r);
            if s.probability_one(0) > 0.5 {
                flipped += 1;
            }
        }
        let rate = flipped as f64 / trials as f64;
        assert!((rate - p).abs() < 0.05, "observed flip rate {rate}");
    }

    #[test]
    fn phase_flip_leaves_populations() {
        let mut r = rng();
        let mut s = StateVector::zero_state(1);
        s.apply_gate(&GateKind::H, &[0]);
        for _ in 0..50 {
            ErrorChannel::PhaseFlip { p: 0.5 }.apply(&mut s, 0, &mut r);
            assert!((s.probability_one(0) - 0.5).abs() < 1e-10);
        }
    }

    #[test]
    fn depolarizing_damps_ghz_fidelity() {
        let mut r = rng();
        let build = |noise: Option<f64>, r: &mut StdRng| {
            let mut s = StateVector::zero_state(3);
            s.apply_gate(&GateKind::H, &[0]);
            for q in 0..2 {
                s.apply_gate(&GateKind::Cnot, &[q, q + 1]);
                if let Some(p) = noise {
                    ErrorChannel::Depolarizing { p }.apply(&mut s, q, r);
                    ErrorChannel::Depolarizing { p }.apply(&mut s, q + 1, r);
                }
            }
            s
        };
        let ideal = build(None, &mut r);
        let shots = 300;
        let mut fid = 0.0;
        for _ in 0..shots {
            fid += build(Some(0.2), &mut r).fidelity(&ideal);
        }
        fid /= shots as f64;
        assert!(fid < 0.9, "noisy fidelity should drop, got {fid}");
        assert!(fid > 0.2, "noise should not destroy everything, got {fid}");
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut r = rng();
        let gamma = 0.25;
        let trials = 2000;
        let mut decayed = 0;
        for _ in 0..trials {
            let mut s = StateVector::basis_state(1, 1);
            ErrorChannel::AmplitudeDamping { gamma }.apply(&mut s, 0, &mut r);
            if s.probability_one(0) < 0.5 {
                decayed += 1;
            }
        }
        let rate = decayed as f64 / trials as f64;
        assert!((rate - gamma).abs() < 0.05, "observed decay rate {rate}");
    }

    #[test]
    fn amplitude_damping_fixes_ground_state() {
        let mut r = rng();
        let mut s = StateVector::zero_state(1);
        ErrorChannel::AmplitudeDamping { gamma: 0.9 }.apply(&mut s, 0, &mut r);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn amplitude_damping_biases_superposition_towards_zero() {
        let mut r = rng();
        let gamma = 0.5;
        let trials = 4000;
        let mut p1_sum = 0.0;
        for _ in 0..trials {
            let mut s = StateVector::zero_state(1);
            s.apply_gate(&GateKind::H, &[0]);
            ErrorChannel::AmplitudeDamping { gamma }.apply(&mut s, 0, &mut r);
            p1_sum += s.probability_one(0);
        }
        let p1 = p1_sum / trials as f64;
        // Exact channel: P(1) = 0.5 * (1 - gamma) = 0.25.
        assert!((p1 - 0.25).abs() < 0.03, "mean P(1) = {p1}");
    }

    #[test]
    fn readout_flip_statistics() {
        let mut r = rng();
        let trials = 2000;
        let mut flips = 0;
        for _ in 0..trials {
            if flip_readout(false, 0.1, &mut r) {
                flips += 1;
            }
        }
        let rate = flips as f64 / trials as f64;
        assert!(
            (rate - 0.1).abs() < 0.03,
            "observed readout flip rate {rate}"
        );
        assert!(!flip_readout(false, 0.0, &mut r));
    }

    #[test]
    fn channels_preserve_norm() {
        let mut r = rng();
        let channels = [
            ErrorChannel::Depolarizing { p: 0.5 },
            ErrorChannel::BitFlip { p: 0.5 },
            ErrorChannel::PhaseFlip { p: 0.5 },
            ErrorChannel::AmplitudeDamping { gamma: 0.5 },
        ];
        for ch in channels {
            for _ in 0..50 {
                let mut s = StateVector::zero_state(2);
                s.apply_gate(&GateKind::H, &[0]);
                s.apply_gate(&GateKind::Cnot, &[0, 1]);
                ch.apply(&mut s, 0, &mut r);
                assert!((s.norm() - 1.0).abs() < 1e-9, "{ch:?} broke the norm");
            }
        }
    }
}
