//! Measurement histograms aggregated over shots.

use std::collections::BTreeMap;
use std::fmt;

/// Counts of observed classical bit-strings over a number of shots.
///
/// Bit `i` of the key is the final value of classical bit `b[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShotHistogram {
    counts: BTreeMap<u64, u64>,
    shots: u64,
}

impl ShotHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed bit-string.
    pub fn record(&mut self, bits: u64) {
        *self.counts.entry(bits).or_insert(0) += 1;
        self.shots += 1;
    }

    /// Records `count` observations of the same bit-string at once.
    pub fn record_many(&mut self, bits: u64, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(bits).or_insert(0) += count;
        self.shots += count;
    }

    /// Folds another histogram into this one. Merging is a commutative,
    /// associative sum per bit-string, so partial histograms produced by
    /// disjoint shot ranges merge to the same total in any order.
    pub fn merge(&mut self, other: &ShotHistogram) {
        for (bits, count) in other.iter() {
            self.record_many(bits, count);
        }
    }

    /// Total number of shots recorded.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Number of times `bits` was observed.
    pub fn count(&self, bits: u64) -> u64 {
        self.counts.get(&bits).copied().unwrap_or(0)
    }

    /// Empirical probability of `bits`.
    pub fn probability(&self, bits: u64) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.count(bits) as f64 / self.shots as f64
        }
    }

    /// The most frequently observed bit-string, if any (ties broken by
    /// smallest value).
    pub fn most_likely(&self) -> Option<u64> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(k, _)| *k)
    }

    /// Iterates over `(bits, count)` pairs in ascending bit-string order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of distinct outcomes observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }
}

impl FromIterator<u64> for ShotHistogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut h = ShotHistogram::new();
        for b in iter {
            h.record(b);
        }
        h
    }
}

impl Extend<u64> for ShotHistogram {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for b in iter {
            self.record(b);
        }
    }
}

impl fmt::Display for ShotHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} shots, {} outcomes:", self.shots, self.counts.len())?;
        for (bits, count) in &self.counts {
            writeln!(
                f,
                "  {bits:>8b}: {count:>8} ({:.3})",
                *count as f64 / self.shots.max(1) as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let h: ShotHistogram = [0b00u64, 0b11, 0b11, 0b01].into_iter().collect();
        assert_eq!(h.shots(), 4);
        assert_eq!(h.count(0b11), 2);
        assert_eq!(h.count(0b10), 0);
        assert!((h.probability(0b11) - 0.5).abs() < 1e-12);
        assert_eq!(h.most_likely(), Some(0b11));
        assert_eq!(h.distinct(), 3);
    }

    #[test]
    fn empty_histogram() {
        let h = ShotHistogram::new();
        assert_eq!(h.shots(), 0);
        assert_eq!(h.probability(0), 0.0);
        assert_eq!(h.most_likely(), None);
    }

    #[test]
    fn ties_break_to_smallest() {
        let h: ShotHistogram = [3u64, 1, 3, 1].into_iter().collect();
        assert_eq!(h.most_likely(), Some(1));
    }

    #[test]
    fn display_contains_counts() {
        let h: ShotHistogram = [0b1u64].into_iter().collect();
        let s = h.to_string();
        assert!(s.contains("1 shots"));
    }
}
