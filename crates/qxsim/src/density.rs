//! Exact density-matrix simulation for small registers.
//!
//! While the state-vector engine handles noise by Monte-Carlo trajectory
//! sampling (one Kraus branch per shot), this module evolves the full
//! density matrix, giving *exact* channel semantics. It is quadratically
//! more expensive (`4^n` entries) and therefore reserved for small systems:
//! validating the trajectory sampler, studying error channels exactly, and
//! QEC unit analyses.

use crate::error_model::ErrorChannel;
use cqasm::math::{Mat2, Mat4, C64};
use cqasm::{BlockUnitary, FusedDiagonal, GateKind, GateUnitary, KernelClass};

/// Largest register the density engine accepts: the matrix is `4^n`
/// complex entries, so 13 qubits is ~1 GiB. Callers that cannot panic
/// (the shot executor, the serving runtime) check against this before
/// constructing a [`DensityMatrix`].
pub const MAX_DENSITY_QUBITS: usize = 13;

/// The dense unitary of a planned kernel, for exact density evolution.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelUnitary {
    /// No amplitude is touched.
    Identity,
    /// A single-qubit unitary.
    One(Mat2),
    /// A two-qubit unitary (first operand = high bit).
    Two(Mat4),
    /// A fused diagonal over 3+ support qubits (LSB-first index
    /// convention), applied via [`DensityMatrix::apply_fused_diag`].
    Diag(FusedDiagonal),
    /// A fused dense block (LSB-first index convention; see
    /// [`BlockUnitary`]), applied via [`DensityMatrix::apply_block`].
    Block(BlockUnitary),
}

/// Swaps the two bits of a 2-bit index. Fused kernels store patterns
/// LSB-first (bit `j` is the state of operand `j`) while [`Mat4`] indexes
/// with the *first* operand as the high bit, so converting a fused 2-qubit
/// table to a [`Mat4`] bit-reverses every row/column index.
fn rev2(i: usize) -> usize {
    ((i & 1) << 1) | (i >> 1)
}

/// Maps a [`KernelClass`] back to its dense unitary so the density engine
/// can replay a compiled plan exactly. 1q/2q fused kernels convert to
/// their [`Mat2`]/[`Mat4`] forms; 3-qubit fused blocks pass through as
/// [`KernelUnitary::Block`]. Returns `None` only for Toffoli, which must
/// be decomposed before density simulation.
pub fn kernel_unitary(kernel: &KernelClass) -> Option<KernelUnitary> {
    let two = |kind: GateKind| match kind.unitary() {
        GateUnitary::Two(m) => Some(KernelUnitary::Two(m)),
        _ => None,
    };
    match kernel {
        KernelClass::Identity => Some(KernelUnitary::Identity),
        KernelClass::Diagonal1q(c0, c1) => Some(KernelUnitary::One(Mat2([
            [*c0, C64::ZERO],
            [C64::ZERO, *c1],
        ]))),
        KernelClass::AntiDiagonal1q(c0, c1) => Some(KernelUnitary::One(Mat2([
            [C64::ZERO, *c0],
            [*c1, C64::ZERO],
        ]))),
        KernelClass::General1q(m) => Some(KernelUnitary::One(*m)),
        KernelClass::Cnot => two(GateKind::Cnot),
        KernelClass::Cz => two(GateKind::Cz),
        KernelClass::Swap => two(GateKind::Swap),
        KernelClass::ControlledPhase(p) => {
            let mut m = [[C64::ZERO; 4]; 4];
            m[0][0] = C64::ONE;
            m[1][1] = C64::ONE;
            m[2][2] = C64::ONE;
            m[3][3] = *p;
            Some(KernelUnitary::Two(Mat4(m)))
        }
        KernelClass::General2q(m) => Some(KernelUnitary::Two(*m)),
        KernelClass::ControlledControlled(_) => None,
        KernelClass::Fused1q(m) => Some(KernelUnitary::One(*m)),
        KernelClass::FusedDiag(d) => match d.support() {
            1 => Some(KernelUnitary::One(Mat2([
                [d.entries[0], C64::ZERO],
                [C64::ZERO, d.entries[1]],
            ]))),
            2 => {
                let mut m = [[C64::ZERO; 4]; 4];
                for (i, row) in m.iter_mut().enumerate() {
                    row[i] = d.entries[rev2(i)];
                }
                Some(KernelUnitary::Two(Mat4(m)))
            }
            _ => Some(KernelUnitary::Diag(d.clone())),
        },
        KernelClass::FusedBlock(b) => match b.k {
            1 => Some(KernelUnitary::One(Mat2([
                [b.m[0], b.m[1]],
                [b.m[2], b.m[3]],
            ]))),
            2 => {
                let mut m = [[C64::ZERO; 4]; 4];
                for (r, row) in m.iter_mut().enumerate() {
                    for (c, cell) in row.iter_mut().enumerate() {
                        *cell = b.m[rev2(r) * 4 + rev2(c)];
                    }
                }
                Some(KernelUnitary::Two(Mat4(m)))
            }
            _ => Some(KernelUnitary::Block(b.clone())),
        },
        KernelClass::Fused1qLayer(mats) => {
            // Expand the tensor product LSB-first (bit `j` of a row/column
            // index = the state of operand `j`), then route through the
            // same 1q/2q/block forms as a fused block.
            let k = mats.len();
            let dim = 1usize << k;
            let mut m = vec![C64::ZERO; dim * dim];
            for r in 0..dim {
                for c in 0..dim {
                    let mut acc = C64::ONE;
                    for (j, f) in mats.iter().enumerate() {
                        acc *= f.0[(r >> j) & 1][(c >> j) & 1];
                    }
                    m[r * dim + c] = acc;
                }
            }
            kernel_unitary(&KernelClass::FusedBlock(BlockUnitary { k, m }))
        }
    }
}

/// A mixed quantum state of `n` qubits as a dense `2^n x 2^n` density
/// matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n: usize,
    dim: usize,
    /// Row-major storage: `rho[r * dim + c]`.
    rho: Vec<C64>,
}

impl DensityMatrix {
    /// The pure state `|0...0><0...0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n > `[`MAX_DENSITY_QUBITS`] (the matrix would exceed
    /// ~1 GiB).
    pub fn zero_state(n: usize) -> Self {
        assert!(
            n <= MAX_DENSITY_QUBITS,
            "density matrix of {n} qubits is too large"
        );
        let dim = 1usize << n;
        let mut rho = vec![C64::ZERO; dim * dim];
        rho[0] = C64::ONE;
        DensityMatrix { n, dim, rho }
    }

    /// Builds `|psi><psi|` from a pure state.
    pub fn from_pure(state: &crate::state::StateVector) -> Self {
        let n = state.qubit_count();
        let dim = 1usize << n;
        let amps = state.amplitudes();
        let mut rho = vec![C64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                rho[r * dim + c] = amps[r] * amps[c].conj();
            }
        }
        DensityMatrix { n, dim, rho }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// Trace of the matrix (1 for a valid state).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|i| self.rho[i * self.dim + i].re).sum()
    }

    /// Purity `Tr(rho^2)`: 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        let mut acc = 0.0;
        for r in 0..self.dim {
            for c in 0..self.dim {
                // Tr(rho^2) = sum_{r,c} rho[r][c] * rho[c][r]; for Hermitian
                // rho this is sum |rho[r][c]|^2.
                acc += self.rho[r * self.dim + c].norm_sqr();
            }
        }
        acc
    }

    /// The diagonal of the matrix: the probability of each computational
    /// basis state. For a valid state these are non-negative and sum to 1
    /// (up to rounding); sampling terminal measurements draws from this
    /// distribution.
    pub fn diagonal_probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.rho[i * self.dim + i].re)
            .collect()
    }

    /// Probability of measuring qubit `q` as one.
    pub fn probability_one(&self, q: usize) -> f64 {
        let mask = 1usize << q;
        (0..self.dim)
            .filter(|i| i & mask != 0)
            .map(|i| self.rho[i * self.dim + i].re)
            .sum()
    }

    /// Fidelity `<psi| rho |psi>` against a pure reference state.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn fidelity_pure(&self, psi: &crate::state::StateVector) -> f64 {
        assert_eq!(self.n, psi.qubit_count());
        let amps = psi.amplitudes();
        let mut acc = C64::ZERO;
        for r in 0..self.dim {
            for c in 0..self.dim {
                acc += amps[r].conj() * self.rho[r * self.dim + c] * amps[c];
            }
        }
        acc.re
    }

    /// Applies a single-qubit unitary `U` to qubit `q`:
    /// `rho <- U rho U†`.
    pub fn apply_1q(&mut self, u: &Mat2, q: usize) {
        self.left_mul(u, q);
        self.right_mul_dagger(u, q);
    }

    /// Applies a library gate (single- and two-qubit gates supported).
    ///
    /// # Panics
    ///
    /// Panics on three-qubit gates (decompose first) or bad operands.
    // The panic is this low-level API's documented contract; the stack
    // decomposes Toffoli before density simulation.
    #[allow(clippy::panic)]
    pub fn apply_gate(&mut self, kind: &GateKind, qubits: &[usize]) {
        match kind.unitary() {
            cqasm::GateUnitary::One(m) => self.apply_1q(&m, qubits[0]),
            cqasm::GateUnitary::Two(m) => self.apply_2q(&m, qubits[0], qubits[1]),
            cqasm::GateUnitary::ControlledControlled(_) => {
                panic!("decompose three-qubit gates before density simulation")
            }
        }
    }

    /// Applies a two-qubit unitary (first operand = high bit, matching the
    /// state-vector convention).
    pub fn apply_2q(&mut self, m: &cqasm::math::Mat4, q_hi: usize, q_lo: usize) {
        // Left multiply on rows.
        let bh = 1usize << q_hi;
        let bl = 1usize << q_lo;
        for c in 0..self.dim {
            for r in 0..self.dim {
                if r & bh != 0 || r & bl != 0 {
                    continue;
                }
                let idx = [r, r | bl, r | bh, r | bh | bl];
                let vals = idx.map(|i| self.rho[i * self.dim + c]);
                for (row, &i) in idx.iter().enumerate() {
                    let mut acc = C64::ZERO;
                    for (col, v) in vals.iter().enumerate() {
                        acc += m.0[row][col] * *v;
                    }
                    self.rho[i * self.dim + c] = acc;
                }
            }
        }
        // Right multiply by dagger on columns.
        for r in 0..self.dim {
            for c in 0..self.dim {
                if c & bh != 0 || c & bl != 0 {
                    continue;
                }
                let idx = [c, c | bl, c | bh, c | bh | bl];
                let vals = idx.map(|i| self.rho[r * self.dim + i]);
                for (col, &i) in idx.iter().enumerate() {
                    let mut acc = C64::ZERO;
                    for (k, v) in vals.iter().enumerate() {
                        // (rho * M†)[r][i] = sum_k rho[r][k] * conj(M[i][k])
                        acc += *v * m.0[col][k].conj();
                    }
                    self.rho[r * self.dim + i] = acc;
                }
            }
        }
    }

    /// Applies a fused diagonal (LSB-first: bit `j` of a table index is the
    /// state of `qubits[j]`): `rho[r][c] <- d[pat(r)] rho[r][c] conj(d[pat(c)])`.
    pub fn apply_fused_diag(&mut self, diag: &FusedDiagonal, qubits: &[usize]) {
        assert_eq!(diag.support(), qubits.len(), "diagonal support mismatch");
        let pat = |i: usize| -> usize {
            let mut p = 0usize;
            for (j, &q) in qubits.iter().enumerate() {
                p |= ((i >> q) & 1) << j;
            }
            p
        };
        let row_entries: Vec<C64> = (0..self.dim).map(|i| diag.entries[pat(i)]).collect();
        for (r, &dr) in row_entries.iter().enumerate() {
            for (c, &dc) in row_entries.iter().enumerate() {
                self.rho[r * self.dim + c] *= dr * dc.conj();
            }
        }
    }

    /// Applies a fused dense block over `block.k` operand qubits:
    /// `rho <- U rho U†`. Index convention is the fused LSB-first one: bit
    /// `j` of a block row/column index is the state of `qubits[j]`.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match `block.k`.
    pub fn apply_block(&mut self, block: &BlockUnitary, qubits: &[usize]) {
        assert_eq!(block.k, qubits.len(), "block arity mismatch");
        let bdim = block.dim();
        let offsets: Vec<usize> = (0..bdim)
            .map(|local| {
                let mut o = 0usize;
                for (j, &q) in qubits.iter().enumerate() {
                    if (local >> j) & 1 == 1 {
                        o |= 1 << q;
                    }
                }
                o
            })
            .collect();
        let all: usize = offsets[bdim - 1];
        let mut vals = vec![C64::ZERO; bdim];
        // Left multiply on rows.
        for c in 0..self.dim {
            for base in 0..self.dim {
                if base & all != 0 {
                    continue;
                }
                for (j, &o) in offsets.iter().enumerate() {
                    vals[j] = self.rho[(base | o) * self.dim + c];
                }
                for (row, &o) in offsets.iter().enumerate() {
                    let mut acc = C64::ZERO;
                    for (col, v) in vals.iter().enumerate() {
                        acc += block.m[row * bdim + col] * *v;
                    }
                    self.rho[(base | o) * self.dim + c] = acc;
                }
            }
        }
        // Right multiply by dagger on columns.
        for r in 0..self.dim {
            for base in 0..self.dim {
                if base & all != 0 {
                    continue;
                }
                for (j, &o) in offsets.iter().enumerate() {
                    vals[j] = self.rho[r * self.dim + (base | o)];
                }
                for (col, &o) in offsets.iter().enumerate() {
                    let mut acc = C64::ZERO;
                    for (k, v) in vals.iter().enumerate() {
                        acc += *v * block.m[col * bdim + k].conj();
                    }
                    self.rho[r * self.dim + (base | o)] = acc;
                }
            }
        }
    }

    /// Applies a set of Kraus operators on qubit `q`:
    /// `rho <- sum_k K_k rho K_k†`.
    pub fn apply_kraus(&mut self, kraus: &[Mat2], q: usize) {
        let mut acc = vec![C64::ZERO; self.dim * self.dim];
        for k in kraus {
            let mut branch = self.clone();
            branch.left_mul(k, q);
            branch.right_mul_dagger(k, q);
            for (a, b) in acc.iter_mut().zip(&branch.rho) {
                *a += *b;
            }
        }
        self.rho = acc;
    }

    /// Applies the exact superoperator of an [`ErrorChannel`] on qubit `q`.
    pub fn apply_channel(&mut self, channel: &ErrorChannel, q: usize) {
        match *channel {
            ErrorChannel::None => {}
            ErrorChannel::Depolarizing { p } => {
                let sqrt = |x: f64| C64::real(x.sqrt());
                let id = scale(&pauli(GateKind::I), sqrt(1.0 - p));
                let x = scale(&pauli(GateKind::X), sqrt(p / 3.0));
                let y = scale(&pauli(GateKind::Y), sqrt(p / 3.0));
                let z = scale(&pauli(GateKind::Z), sqrt(p / 3.0));
                self.apply_kraus(&[id, x, y, z], q);
            }
            ErrorChannel::BitFlip { p } => {
                let id = scale(&pauli(GateKind::I), C64::real((1.0 - p).sqrt()));
                let x = scale(&pauli(GateKind::X), C64::real(p.sqrt()));
                self.apply_kraus(&[id, x], q);
            }
            ErrorChannel::PhaseFlip { p } => {
                let id = scale(&pauli(GateKind::I), C64::real((1.0 - p).sqrt()));
                let z = scale(&pauli(GateKind::Z), C64::real(p.sqrt()));
                self.apply_kraus(&[id, z], q);
            }
            ErrorChannel::AmplitudeDamping { gamma } => {
                let k0 = Mat2([
                    [C64::ONE, C64::ZERO],
                    [C64::ZERO, C64::real((1.0 - gamma).sqrt())],
                ]);
                let k1 = Mat2([[C64::ZERO, C64::real(gamma.sqrt())], [C64::ZERO, C64::ZERO]]);
                self.apply_kraus(&[k0, k1], q);
            }
        }
    }

    fn left_mul(&mut self, u: &Mat2, q: usize) {
        let bit = 1usize << q;
        let [[m00, m01], [m10, m11]] = u.0;
        for c in 0..self.dim {
            for r in 0..self.dim {
                if r & bit != 0 {
                    continue;
                }
                let r0 = r;
                let r1 = r | bit;
                let a0 = self.rho[r0 * self.dim + c];
                let a1 = self.rho[r1 * self.dim + c];
                self.rho[r0 * self.dim + c] = m00 * a0 + m01 * a1;
                self.rho[r1 * self.dim + c] = m10 * a0 + m11 * a1;
            }
        }
    }

    fn right_mul_dagger(&mut self, u: &Mat2, q: usize) {
        let bit = 1usize << q;
        let [[m00, m01], [m10, m11]] = u.0;
        for r in 0..self.dim {
            for c in 0..self.dim {
                if c & bit != 0 {
                    continue;
                }
                let c0 = c;
                let c1 = c | bit;
                let a0 = self.rho[r * self.dim + c0];
                let a1 = self.rho[r * self.dim + c1];
                // (rho U†)[r][c] = sum_k rho[r][k] conj(U[c][k])
                self.rho[r * self.dim + c0] = a0 * m00.conj() + a1 * m01.conj();
                self.rho[r * self.dim + c1] = a0 * m10.conj() + a1 * m11.conj();
            }
        }
    }
}

fn pauli(g: GateKind) -> Mat2 {
    match g.unitary() {
        cqasm::GateUnitary::One(m) => m,
        _ => unreachable!("pauli gates are single-qubit"),
    }
}

fn scale(m: &Mat2, s: C64) -> Mat2 {
    Mat2([
        [m.0[0][0] * s, m.0[0][1] * s],
        [m.0[1][0] * s, m.0[1][1] * s],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    #[test]
    fn zero_state_is_pure() {
        let rho = DensityMatrix::zero_state(2);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut rho = DensityMatrix::zero_state(2);
        let mut psi = StateVector::zero_state(2);
        for (g, qs) in [
            (GateKind::H, vec![0]),
            (GateKind::T, vec![0]),
            (GateKind::Cnot, vec![0, 1]),
            (GateKind::Ry(0.7), vec![1]),
        ] {
            rho.apply_gate(&g, &qs);
            psi.apply_gate(&g, &qs);
        }
        assert!((rho.fidelity_pure(&psi) - 1.0).abs() < 1e-10);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    /// `rho[r][c]` of both matrices agree to `tol` everywhere.
    fn assert_close(a: &DensityMatrix, b: &DensityMatrix, tol: f64) {
        assert_eq!(a.dim, b.dim);
        for (i, (x, y)) in a.rho.iter().zip(&b.rho).enumerate() {
            assert!(
                (*x - *y).norm_sqr().sqrt() < tol,
                "entry {i}: {x:?} vs {y:?}"
            );
        }
    }

    /// An LSB-first dense block built by pushing every basis column through
    /// the state-vector engine.
    fn block_of_gates(k: usize, gates: &[(GateKind, Vec<usize>)]) -> BlockUnitary {
        let dim = 1usize << k;
        let mut m = vec![C64::ZERO; dim * dim];
        for col in 0..dim {
            let mut psi = StateVector::basis_state(k, col as u64);
            for (g, qs) in gates {
                psi.apply_gate(g, qs);
            }
            for row in 0..dim {
                m[row * dim + col] = psi.amplitudes()[row];
            }
        }
        BlockUnitary { k, m }
    }

    #[test]
    fn apply_block_matches_gatewise_evolution() {
        let gates = [
            (GateKind::H, vec![0]),
            (GateKind::Cnot, vec![0, 1]),
            (GateKind::Cnot, vec![1, 2]),
            (GateKind::T, vec![2]),
        ];
        let block = block_of_gates(3, &gates);
        // Start from a non-trivial state so every entry is exercised.
        let mut fused = DensityMatrix::zero_state(3);
        for q in 0..3 {
            fused.apply_gate(&GateKind::Ry(0.3 + q as f64), &[q]);
        }
        let mut gatewise = fused.clone();
        fused.apply_block(&block, &[0, 1, 2]);
        for (g, qs) in &gates {
            gatewise.apply_gate(g, qs);
        }
        assert_close(&fused, &gatewise, 1e-12);
    }

    #[test]
    fn apply_fused_diag_matches_gatewise_evolution() {
        // diag(T on q0) * diag(S on q2) over support [0, 2]: entry[pat]
        // multiplies the T phase for bit 0 and the S phase for bit 1.
        let t = GateKind::T.unitary();
        let s = GateKind::S.unitary();
        let (tp, sp) = match (t, s) {
            (GateUnitary::One(t), GateUnitary::One(s)) => (t.0[1][1], s.0[1][1]),
            _ => unreachable!(),
        };
        let mut entries = vec![C64::ONE; 4];
        for (pat, e) in entries.iter_mut().enumerate() {
            if pat & 1 == 1 {
                *e *= tp;
            }
            if pat & 2 == 2 {
                *e *= sp;
            }
        }
        let diag = FusedDiagonal { entries };
        let mut fused = DensityMatrix::zero_state(3);
        for q in 0..3 {
            fused.apply_gate(&GateKind::H, &[q]);
        }
        let mut gatewise = fused.clone();
        fused.apply_fused_diag(&diag, &[0, 2]);
        gatewise.apply_gate(&GateKind::T, &[0]);
        gatewise.apply_gate(&GateKind::S, &[2]);
        assert_close(&fused, &gatewise, 1e-12);
    }

    #[test]
    fn depolarizing_reduces_purity_and_preserves_trace() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&GateKind::H, &[0]);
        rho.apply_channel(&ErrorChannel::Depolarizing { p: 0.3 }, 0);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!(rho.purity() < 1.0 - 1e-6);
    }

    #[test]
    fn full_depolarizing_gives_maximally_mixed() {
        let mut rho = DensityMatrix::zero_state(1);
        // p = 3/4 with uniform Paulis is the completely depolarizing point.
        rho.apply_channel(&ErrorChannel::Depolarizing { p: 0.75 }, 0);
        assert!((rho.probability_one(0) - 0.5).abs() < 1e-10);
        assert!((rho.purity() - 0.5).abs() < 1e-10);
    }

    #[test]
    fn amplitude_damping_exact_population() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&GateKind::X, &[0]);
        rho.apply_channel(&ErrorChannel::AmplitudeDamping { gamma: 0.3 }, 0);
        assert!((rho.probability_one(0) - 0.7).abs() < 1e-10);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn trajectory_sampler_matches_exact_channel() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Exact: H then bit-flip channel p=0.2, measure P(1).
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&GateKind::H, &[0]);
        rho.apply_channel(&ErrorChannel::BitFlip { p: 0.2 }, 0);
        let exact = rho.probability_one(0);
        // Trajectories.
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 4000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let mut psi = StateVector::zero_state(1);
            psi.apply_gate(&GateKind::H, &[0]);
            ErrorChannel::BitFlip { p: 0.2 }.apply(&mut psi, 0, &mut rng);
            acc += psi.probability_one(0);
        }
        let sampled = acc / trials as f64;
        assert!(
            (sampled - exact).abs() < 0.02,
            "trajectory {sampled} vs exact {exact}"
        );
    }

    #[test]
    fn phase_flip_kills_coherences() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(&GateKind::H, &[0]);
        // p = 1/2 phase flip fully dephases.
        rho.apply_channel(&ErrorChannel::PhaseFlip { p: 0.5 }, 0);
        // Off-diagonal elements vanish.
        assert!(rho.rho[1].abs() < 1e-10);
        assert!(rho.rho[2].abs() < 1e-10);
        assert!((rho.purity() - 0.5).abs() < 1e-10);
    }

    #[test]
    fn two_qubit_gate_on_density_matches_statevector() {
        let mut rho = DensityMatrix::zero_state(3);
        let mut psi = StateVector::zero_state(3);
        for (g, qs) in [
            (GateKind::H, vec![2]),
            (GateKind::Cnot, vec![2, 0]),
            (GateKind::Cz, vec![0, 1]),
            (GateKind::Swap, vec![1, 2]),
        ] {
            rho.apply_gate(&g, &qs);
            psi.apply_gate(&g, &qs);
        }
        assert!((rho.fidelity_pure(&psi) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn from_pure_roundtrip() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&GateKind::H, &[0]);
        psi.apply_gate(&GateKind::Cnot, &[0, 1]);
        let rho = DensityMatrix::from_pure(&psi);
        assert!((rho.fidelity_pure(&psi) - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }
}
