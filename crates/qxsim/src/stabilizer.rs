//! The stabilizer engines: a CHP-style tableau executor for
//! [`CircuitClass::Clifford`](crate::plan::CircuitClass) plans and a
//! bit-packed Pauli-frame sampler for
//! [`CircuitClass::CliffordTerminal`](crate::plan::CircuitClass) plans.
//!
//! Both engines execute the stabilizer lowering
//! ([`crate::plan::StabOp`]) of a compiled plan at `O(n^2)` bit-op cost
//! per shot instead of the state vector's `O(2^n)`, lifting the qubit
//! ceiling from [`crate::plan::MAX_SIM_QUBITS`] to
//! [`crate::plan::MAX_STAB_QUBITS`] for the Clifford fragment.
//!
//! # Determinism contract
//!
//! Histograms are bit-identical to the state-vector interpreter (where it
//! can run) and across any worker/shard split, because every engine
//! consumes the *same* per-shot RNG streams in the *same* pattern:
//!
//! - `measure q` / `prep_z q`: exactly one `gen_bool` draw per shot,
//!   random or not — mirroring [`crate::StateVector::measure`] /
//!   [`crate::StateVector::reset`], which always draw once.
//! - `measure_all`: exactly one `f64` draw per shot. The state-vector
//!   engine feeds it to a cumulative-table search; the stabilizer engines
//!   consume its binary digits most-significant-first, one per *random*
//!   measurement, walking qubits from `n-1` down to `0`. For stabilizer
//!   states every conditional one-probability is 0, 1/2 or 1, so the two
//!   procedures select the same basis state.
//! - Gates and conditionals draw nothing.
//!
//! The Pauli-frame sampler additionally packs 64 shots per machine word:
//! one symbolic reference run ([`qec::tableau::Tableau::measure_layout`])
//! expresses every measurement outcome as an XOR of fresh random bits,
//! and per-word sampling just XORs 64-shot bit columns.

use crate::histogram::ShotHistogram;
use crate::plan::{CliffordGate, StabOp};
use qec::tableau::{LayoutTracker, MeasureRecord, Tableau};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// How the executor picks a simulation engine for a compiled plan (see
/// [`crate::Simulator::with_engine_select`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineSelect {
    /// Route by [`crate::plan::CircuitClass`]: `CliffordTerminal` plans go
    /// to the Pauli-frame sampler, `Clifford` plans to the tableau
    /// executor, `General` plans to the state-vector engine. The default.
    #[default]
    Auto,
    /// Force the state-vector engine. Exact for every class, but capped
    /// at [`crate::plan::MAX_SIM_QUBITS`] qubits.
    StateVector,
    /// Force the CHP tableau executor. Requires a Clifford-class plan.
    Tableau,
    /// Force the Pauli-frame sampler. Requires a `CliffordTerminal` plan.
    PauliFrame,
}

impl EngineSelect {
    /// Stable lowercase name for telemetry labels and wire encodings.
    pub fn name(&self) -> &'static str {
        match self {
            EngineSelect::Auto => "auto",
            EngineSelect::StateVector => "state_vector",
            EngineSelect::Tableau => "tableau",
            EngineSelect::PauliFrame => "pauli_frame",
        }
    }
}

/// Applies one Clifford gate to a tableau.
pub(crate) fn apply_clifford(t: &mut Tableau, g: CliffordGate) {
    match g {
        CliffordGate::H(q) => t.h(q),
        CliffordGate::S(q) => t.s(q),
        CliffordGate::Sdag(q) => t.sdag(q),
        CliffordGate::X(q) => t.x_gate(q),
        CliffordGate::Y(q) => t.y_gate(q),
        CliffordGate::Z(q) => t.z_gate(q),
        CliffordGate::X90(q) => t.x90(q),
        CliffordGate::Y90(q) => t.y90(q),
        CliffordGate::Mx90(q) => t.mx90(q),
        CliffordGate::My90(q) => t.my90(q),
        CliffordGate::Cnot(c, tq) => t.cnot(c, tq),
        CliffordGate::Cz(a, b) => t.cz(a, b),
        CliffordGate::Swap(a, b) => t.swap(a, b),
    }
}

#[inline]
fn set_bit(bits: &mut u64, index: usize, value: bool) {
    if value {
        *bits |= 1 << index;
    } else {
        *bits &= !(1 << index);
    }
}

/// `r * 2^53` for `r` produced by the standard `f64` distribution — exact,
/// because such `r` is a multiple of `2^-53`.
const F64_DIGITS: f64 = 9_007_199_254_740_992.0;

/// Executes one shot of a Clifford plan on a fresh tableau, returning the
/// final classical register. Draws from `rng` in exactly the pattern the
/// state-vector interpreter would (see the module docs).
pub(crate) fn tableau_shot<R: Rng + ?Sized>(ops: &[StabOp], n: usize, rng: &mut R) -> u64 {
    let mut t = Tableau::zero_state(n);
    let mut bits = 0u64;
    for op in ops {
        match *op {
            StabOp::Gate(g) => apply_clifford(&mut t, g),
            StabOp::Cond(bit, g) => {
                if (bits >> bit) & 1 == 1 {
                    apply_clifford(&mut t, g);
                }
            }
            StabOp::PrepZ(q) => {
                let outcome = rng.gen_bool(t.probability_one(q));
                let realised = t.measure_given(q, outcome);
                if realised {
                    t.x_gate(q);
                }
            }
            StabOp::Measure(q) => {
                let outcome = rng.gen_bool(t.probability_one(q));
                let realised = t.measure_given(q, outcome);
                set_bit(&mut bits, q, realised);
            }
            StabOp::MeasureAll => {
                let r: f64 = rng.gen();
                let m = (r * F64_DIGITS) as u64;
                let mut v = 0u32;
                for q in (0..n).rev() {
                    let outcome = if t.is_random(q) {
                        let digit = v < 53 && (m >> (52 - v)) & 1 == 1;
                        v += 1;
                        digit
                    } else {
                        t.deterministic_outcome(q)
                    };
                    t.measure_given(q, outcome);
                    set_bit(&mut bits, q, outcome);
                }
            }
        }
    }
    bits
}

/// The measurement shape of a `CliffordTerminal` lowering.
enum FrameTargets {
    /// Per-qubit measures in program order, possibly interleaved with
    /// gates (the scheduler hoists each measure next to its qubit's last
    /// gate, so even logically-terminal measures land mid-sequence).
    Run(Vec<usize>),
    /// One final `measure_all` after a pure-gate prefix.
    All,
}

/// The bit-packed Pauli-frame sampler: one symbolic tableau run over the
/// Clifford prefix expresses every terminal measurement outcome as
/// `base XOR (parity of fresh coin flips)`; sampling then packs 64 shots
/// per `u64` and reduces each shot to a handful of word XORs.
pub(crate) struct FrameSampler {
    n: usize,
    targets: FrameTargets,
    records: Vec<MeasureRecord>,
    num_vars: u32,
}

impl FrameSampler {
    /// Builds the sampler from a `CliffordTerminal` lowering, or `None`
    /// when the shape doesn't qualify (conditionals, resets, a mid-run
    /// `measure_all`) or the layout needs more than 64 random variables
    /// (callers fall back to the per-shot tableau executor, which is
    /// bit-identical).
    pub(crate) fn build(ops: &[StabOp], n: usize) -> Option<FrameSampler> {
        let mut t = Tableau::zero_state(n);
        if let Some(StabOp::MeasureAll) = ops.last() {
            for op in &ops[..ops.len() - 1] {
                match *op {
                    StabOp::Gate(g) => apply_clifford(&mut t, g),
                    _ => return None,
                }
            }
            let positions: Vec<usize> = (0..n).rev().collect();
            let records = t.measure_layout(&positions)?;
            let num_vars = records.iter().filter(|r| r.random).count() as u32;
            return Some(FrameSampler {
                n,
                targets: FrameTargets::All,
                records,
                num_vars,
            });
        }
        // Gates and measures may interleave freely: outcomes never feed
        // back (no conditionals, no resets), so one incremental symbolic
        // pass resolves every measure while gates apply in between.
        let mut tracker: LayoutTracker = t.begin_layout();
        let mut qs = Vec::new();
        let mut records = Vec::new();
        for op in ops {
            match *op {
                StabOp::Gate(g) => apply_clifford(&mut t, g),
                StabOp::Measure(q) => {
                    records.push(t.measure_symbolic(q, &mut tracker)?);
                    qs.push(q);
                }
                _ => return None,
            }
        }
        if qs.is_empty() {
            return None;
        }
        let num_vars = tracker.vars();
        Some(FrameSampler {
            n,
            targets: FrameTargets::Run(qs),
            records,
            num_vars,
        })
    }

    /// Samples shots `lo..hi` against the frozen reference layout,
    /// bit-identical to the tableau executor on the same streams. Disjoint
    /// ranges merge to the single-range histogram in any order.
    pub(crate) fn sample_range(&self, seed: u64, stride: u64, lo: u64, hi: u64) -> ShotHistogram {
        let mut hist = ShotHistogram::new();
        let mut shot = lo;
        while shot < hi {
            let w = (hi - shot).min(64) as usize;
            let keys = self.sample_word(seed, stride, shot, w);
            for &k in keys.iter().take(w) {
                hist.record(k);
            }
            shot += w as u64;
        }
        hist
    }

    /// Number of 64-shot words a `shots`-shot run costs, for telemetry.
    pub(crate) fn words(shots: u64) -> u64 {
        shots.div_ceil(64)
    }

    /// Samples one word of `w <= 64` consecutive shots starting at `base`.
    fn sample_word(&self, seed: u64, stride: u64, base: u64, w: usize) -> [u64; 64] {
        // rand_words[v] bit s = value of random variable v in shot base+s.
        let mut rand_words = [0u64; 64];
        match &self.targets {
            FrameTargets::All => {
                // One f64 draw per shot; variable v is its v-th binary
                // digit, most-significant first (false past digit 52).
                for s in 0..w {
                    let mut rng = frame_rng(seed, stride, base + s as u64);
                    let m = rng.next_u64() >> 11;
                    for v in 0..self.num_vars.min(53) {
                        if (m >> (52 - v)) & 1 == 1 {
                            rand_words[v as usize] |= 1 << s;
                        }
                    }
                }
            }
            FrameTargets::Run(_) => {
                // One gen_bool draw per measure per shot — consumed even at
                // deterministic measures, exactly like the interpreter.
                let mut rngs: Vec<StdRng> = (0..w)
                    .map(|s| frame_rng(seed, stride, base + s as u64))
                    .collect();
                let mut v = 0usize;
                for rec in &self.records {
                    if rec.random {
                        for (s, rng) in rngs.iter_mut().enumerate() {
                            // gen_bool(0.5) is true iff the sampled f64 is
                            // below one half, i.e. iff the top bit is clear.
                            if rng.next_u64() >> 63 == 0 {
                                rand_words[v] |= 1 << s;
                            }
                        }
                        v += 1;
                    } else {
                        for rng in rngs.iter_mut() {
                            rng.next_u64();
                        }
                    }
                }
            }
        }
        // Resolve each measurement record to a 64-shot outcome column and
        // commit it to the register bit it writes; later records in a
        // measure run overwrite earlier writes to the same qubit, matching
        // register semantics.
        let mut keys = [0u64; 64];
        for (i, rec) in self.records.iter().enumerate() {
            let mut column = if rec.base { !0u64 } else { 0u64 };
            let mut deps = rec.deps;
            while deps != 0 {
                let v = deps.trailing_zeros() as usize;
                deps &= deps - 1;
                column ^= rand_words[v];
            }
            let q = match &self.targets {
                FrameTargets::Run(qs) => qs[i],
                FrameTargets::All => self.n - 1 - i,
            };
            for (s, key) in keys.iter_mut().enumerate().take(w) {
                set_bit(key, q, (column >> s) & 1 == 1);
            }
        }
        keys
    }
}

/// The RNG stream of shot `shot`: identical to the executor's per-shot
/// streams so the frame sampler, the tableau executor and the state-vector
/// engines all consume the same randomness.
fn frame_rng(seed: u64, stride: u64, shot: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_add(shot.wrapping_mul(stride)))
}
