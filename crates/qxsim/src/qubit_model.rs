//! The three qubit models of the paper: **perfect**, **realistic** and
//! **real** (§2.1).
//!
//! - *Perfect* qubits never decohere and execute gates exactly — the model
//!   offered to application developers.
//! - *Realistic* qubits attach configurable error channels and readout
//!   errors to every operation — the model used to study the impact of
//!   error rates and error models on circuits.
//! - *Real* qubits are experimentally calibrated realistic qubits; for the
//!   simulator they are a realistic model instantiated from a hardware
//!   platform's calibration numbers (see `qxsim::QubitModel::real_from_rates`).

use crate::error_model::ErrorChannel;

/// Error parameters of a realistic qubit model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealisticParams {
    /// Channel applied to the operand of every single-qubit gate.
    pub channel_1q: ErrorChannel,
    /// Channel applied to *each* operand of every two-qubit gate.
    pub channel_2q: ErrorChannel,
    /// Probability that a measurement outcome is reported flipped.
    pub readout_error: f64,
    /// Channel applied per qubit per `wait` cycle (idle decoherence).
    pub idle_channel: ErrorChannel,
}

impl RealisticParams {
    /// A symmetric depolarizing model: probability `p1` per single-qubit
    /// gate, `p2` per two-qubit gate operand, `pm` readout flip.
    pub fn depolarizing(p1: f64, p2: f64, pm: f64) -> Self {
        RealisticParams {
            channel_1q: ErrorChannel::Depolarizing { p: p1 },
            channel_2q: ErrorChannel::Depolarizing { p: p2 },
            readout_error: pm,
            idle_channel: ErrorChannel::None,
        }
    }
}

/// Which qubits the simulator models.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum QubitModel {
    /// Perfect qubits: no decoherence, no gate errors, exact readout.
    #[default]
    Perfect,
    /// Realistic qubits with the given error parameters.
    Realistic(RealisticParams),
}

impl QubitModel {
    /// Perfect qubits (no errors at all).
    pub fn perfect() -> Self {
        QubitModel::Perfect
    }

    /// Realistic qubits with a uniform depolarizing model.
    pub fn realistic_depolarizing(p1: f64, p2: f64, pm: f64) -> Self {
        QubitModel::Realistic(RealisticParams::depolarizing(p1, p2, pm))
    }

    /// A "real qubit" model instantiated from hardware calibration numbers
    /// in the style of the superconducting devices cited in the paper
    /// (§2.4: error rates ≈ 0.1%, tens of microseconds coherence).
    ///
    /// `t1_us` and `gate_ns` convert coherence into an idle amplitude
    /// damping rate per cycle: `gamma = 1 - exp(-gate_ns / (t1_us * 1000))`.
    pub fn real_from_rates(p1: f64, p2: f64, pm: f64, t1_us: f64, gate_ns: f64) -> Self {
        let gamma = 1.0 - (-gate_ns / (t1_us * 1000.0)).exp();
        QubitModel::Realistic(RealisticParams {
            channel_1q: ErrorChannel::Depolarizing { p: p1 },
            channel_2q: ErrorChannel::Depolarizing { p: p2 },
            readout_error: pm,
            idle_channel: ErrorChannel::AmplitudeDamping { gamma },
        })
    }

    /// Builds a model from a cQASM `error_model` directive, following the
    /// QX conventions:
    ///
    /// - `depolarizing_channel, p` — depolarizing with probability `p` on
    ///   every gate operand;
    /// - `bit_flip_channel, p`, `phase_flip_channel, p`,
    ///   `amplitude_damping, gamma` — the extended models of §2.7;
    /// - an optional second parameter sets the readout flip probability.
    ///
    /// Returns `None` for unknown model names or missing parameters.
    pub fn from_spec(spec: &cqasm::ErrorModelSpec) -> Option<QubitModel> {
        let p = *spec.params.first()?;
        let readout = spec.params.get(1).copied().unwrap_or(0.0);
        let channel = match spec.name.as_str() {
            "depolarizing_channel" => ErrorChannel::Depolarizing { p },
            "bit_flip_channel" => ErrorChannel::BitFlip { p },
            "phase_flip_channel" => ErrorChannel::PhaseFlip { p },
            "amplitude_damping" => ErrorChannel::AmplitudeDamping { gamma: p },
            _ => return None,
        };
        Some(QubitModel::Realistic(crate::qubit_model::RealisticParams {
            channel_1q: channel,
            channel_2q: channel,
            readout_error: readout,
            idle_channel: ErrorChannel::None,
        }))
    }

    /// The channel applied after a gate touching `arity` qubits.
    pub fn gate_channel(&self, arity: usize) -> ErrorChannel {
        match self {
            QubitModel::Perfect => ErrorChannel::None,
            QubitModel::Realistic(p) => {
                if arity <= 1 {
                    p.channel_1q
                } else {
                    p.channel_2q
                }
            }
        }
    }

    /// The per-cycle idle channel.
    pub fn idle_channel(&self) -> ErrorChannel {
        match self {
            QubitModel::Perfect => ErrorChannel::None,
            QubitModel::Realistic(p) => p.idle_channel,
        }
    }

    /// The readout flip probability.
    pub fn readout_error(&self) -> f64 {
        match self {
            QubitModel::Perfect => 0.0,
            QubitModel::Realistic(p) => p.readout_error,
        }
    }

    /// Whether this model introduces any noise.
    pub fn is_noisy(&self) -> bool {
        !matches!(self, QubitModel::Perfect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_model_is_noise_free() {
        let m = QubitModel::perfect();
        assert!(!m.is_noisy());
        assert!(m.gate_channel(1).is_none());
        assert!(m.gate_channel(2).is_none());
        assert_eq!(m.readout_error(), 0.0);
    }

    #[test]
    fn realistic_depolarizing_parameters() {
        let m = QubitModel::realistic_depolarizing(0.001, 0.01, 0.02);
        assert!(m.is_noisy());
        assert_eq!(m.gate_channel(1), ErrorChannel::Depolarizing { p: 0.001 });
        assert_eq!(m.gate_channel(2), ErrorChannel::Depolarizing { p: 0.01 });
        assert_eq!(m.readout_error(), 0.02);
    }

    #[test]
    fn real_model_derives_idle_damping_from_t1() {
        let m = QubitModel::real_from_rates(0.001, 0.01, 0.02, 20.0, 20.0);
        match m.idle_channel() {
            ErrorChannel::AmplitudeDamping { gamma } => {
                // 20 ns gate on 20 us T1: gamma ~ 1 - e^{-0.001} ~ 0.001.
                assert!((gamma - 0.001).abs() < 1e-4, "gamma = {gamma}");
            }
            other => panic!("expected amplitude damping, got {other:?}"),
        }
    }

    #[test]
    fn default_is_perfect() {
        assert_eq!(QubitModel::default(), QubitModel::Perfect);
    }
}
