//! Pauli-string observables and Hamiltonians.
//!
//! §2.3 of the paper lists "physical system simulation" among the
//! candidate quantum killer applications. Simulating a physical system
//! means measuring expectation values of Pauli-string observables
//! (`<Z0 Z1>`, `<X0 X1>`, ...) against prepared states — the primitive
//! behind VQE-style hybrid chemistry. This module evaluates them exactly
//! on the state vector via the standard basis-rotation trick.

use crate::state::StateVector;
use cqasm::GateKind;
use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pauli {
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// A tensor product of Pauli operators on distinct qubits (identity
/// elsewhere).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PauliString {
    /// `(qubit, operator)` pairs; qubits are distinct.
    ops: Vec<(usize, Pauli)>,
}

impl PauliString {
    /// The identity string.
    pub fn identity() -> Self {
        PauliString::default()
    }

    /// Builds a string from `(qubit, op)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a qubit appears twice.
    pub fn new(ops: Vec<(usize, Pauli)>) -> Self {
        for (i, (q, _)) in ops.iter().enumerate() {
            assert!(
                !ops[i + 1..].iter().any(|(q2, _)| q2 == q),
                "qubit {q} appears twice"
            );
        }
        PauliString { ops }
    }

    /// Convenience constructor: `Z` on one qubit.
    pub fn z(q: usize) -> Self {
        PauliString::new(vec![(q, Pauli::Z)])
    }

    /// Convenience constructor: `X` on one qubit.
    pub fn x(q: usize) -> Self {
        PauliString::new(vec![(q, Pauli::X)])
    }

    /// Convenience constructor: `Y` on one qubit.
    pub fn y(q: usize) -> Self {
        PauliString::new(vec![(q, Pauli::Y)])
    }

    /// The operator content.
    pub fn ops(&self) -> &[(usize, Pauli)] {
        &self.ops
    }

    /// Pauli weight.
    pub fn weight(&self) -> usize {
        self.ops.len()
    }

    /// Exact expectation value `<psi| P |psi>`.
    ///
    /// Rotates a copy of the state so that every factor becomes `Z`
    /// (`X -> H`, `Y -> S† H`), then sums signed Born weights.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        if self.ops.is_empty() {
            return 1.0;
        }
        let mut rotated = state.clone();
        let mut mask = 0u64;
        for &(q, p) in &self.ops {
            match p {
                Pauli::Z => {}
                Pauli::X => rotated.apply_gate(&GateKind::H, &[q]),
                Pauli::Y => {
                    rotated.apply_gate(&GateKind::Sdag, &[q]);
                    rotated.apply_gate(&GateKind::H, &[q]);
                }
            }
            mask |= 1 << q;
        }
        rotated.expectation_diagonal(|b| {
            if (b & mask).count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            }
        })
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ops.is_empty() {
            return f.write_str("I");
        }
        for (i, (q, p)) in self.ops.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            let c = match p {
                Pauli::X => 'X',
                Pauli::Y => 'Y',
                Pauli::Z => 'Z',
            };
            write!(f, "{c}{q}")?;
        }
        Ok(())
    }
}

/// A real linear combination of Pauli strings — a Hamiltonian.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PauliSum {
    terms: Vec<(f64, PauliString)>,
}

impl PauliSum {
    /// The zero operator.
    pub fn new() -> Self {
        PauliSum::default()
    }

    /// Adds a term `coefficient * string`.
    pub fn add(&mut self, coefficient: f64, string: PauliString) -> &mut Self {
        self.terms.push((coefficient, string));
        self
    }

    /// The terms.
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// Exact expectation `<psi| H |psi>` (term-by-term).
    pub fn expectation(&self, state: &StateVector) -> f64 {
        self.terms
            .iter()
            .map(|(c, p)| c * p.expectation(state))
            .sum()
    }
}

impl FromIterator<(f64, PauliString)> for PauliSum {
    fn from_iter<T: IntoIterator<Item = (f64, PauliString)>>(iter: T) -> Self {
        PauliSum {
            terms: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plus_state() -> StateVector {
        let mut s = StateVector::zero_state(1);
        s.apply_gate(&GateKind::H, &[0]);
        s
    }

    fn bell() -> StateVector {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&GateKind::H, &[0]);
        s.apply_gate(&GateKind::Cnot, &[0, 1]);
        s
    }

    #[test]
    fn single_qubit_expectations() {
        let zero = StateVector::zero_state(1);
        assert!((PauliString::z(0).expectation(&zero) - 1.0).abs() < 1e-12);
        assert!(PauliString::x(0).expectation(&zero).abs() < 1e-12);
        assert!(PauliString::y(0).expectation(&zero).abs() < 1e-12);

        let plus = plus_state();
        assert!((PauliString::x(0).expectation(&plus) - 1.0).abs() < 1e-12);
        assert!(PauliString::z(0).expectation(&plus).abs() < 1e-12);

        // |i> = S|+> is the +1 eigenstate of Y.
        let mut istate = plus_state();
        istate.apply_gate(&GateKind::S, &[0]);
        assert!((PauliString::y(0).expectation(&istate) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_correlators() {
        let b = bell();
        let zz = PauliString::new(vec![(0, Pauli::Z), (1, Pauli::Z)]);
        let xx = PauliString::new(vec![(0, Pauli::X), (1, Pauli::X)]);
        let yy = PauliString::new(vec![(0, Pauli::Y), (1, Pauli::Y)]);
        assert!((zz.expectation(&b) - 1.0).abs() < 1e-12);
        assert!((xx.expectation(&b) - 1.0).abs() < 1e-12);
        assert!((yy.expectation(&b) + 1.0).abs() < 1e-12);
        // Single-qubit marginals vanish on a Bell pair.
        assert!(PauliString::z(0).expectation(&b).abs() < 1e-12);
        assert!(PauliString::x(1).expectation(&b).abs() < 1e-12);
    }

    #[test]
    fn identity_string_is_one() {
        assert_eq!(PauliString::identity().expectation(&bell()), 1.0);
        assert_eq!(PauliString::identity().weight(), 0);
    }

    #[test]
    fn pauli_sum_energy() {
        // H = Z0 + Z1 + 0.5 X0X1 on |00>: 1 + 1 + 0 = 2.
        let mut h = PauliSum::new();
        h.add(1.0, PauliString::z(0))
            .add(1.0, PauliString::z(1))
            .add(0.5, PauliString::new(vec![(0, Pauli::X), (1, Pauli::X)]));
        let zero = StateVector::zero_state(2);
        assert!((h.expectation(&zero) - 2.0).abs() < 1e-12);
        // On a Bell state: 0 + 0 + 0.5.
        assert!((h.expectation(&bell()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn expectation_matches_agreement_with_simple_rotation() {
        // <X> after Ry(theta)|0> = sin(theta).
        for theta in [0.3f64, 1.0, 2.2] {
            let mut s = StateVector::zero_state(1);
            s.apply_gate(&GateKind::Ry(theta), &[0]);
            let x = PauliString::x(0).expectation(&s);
            assert!((x - theta.sin()).abs() < 1e-10, "theta {theta}: {x}");
            let z = PauliString::z(0).expectation(&s);
            assert!((z - theta.cos()).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_qubit_rejected() {
        let _ = PauliString::new(vec![(0, Pauli::X), (0, Pauli::Z)]);
    }

    #[test]
    fn display_format() {
        let p = PauliString::new(vec![(0, Pauli::X), (3, Pauli::Z)]);
        assert_eq!(p.to_string(), "X0 Z3");
        assert_eq!(PauliString::identity().to_string(), "I");
    }
}
