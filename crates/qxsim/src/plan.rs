//! Compiled shot plans: a validated [`Program`] lowered once into a flat
//! operation list the executor can replay per shot with zero per-shot
//! analysis.
//!
//! Interpreting a [`Program`] directly costs per shot: re-flattening the
//! iterated subcircuits, re-deriving every gate's unitary through
//! [`cqasm::GateKind::unitary`], unpacking operand wrappers, and scanning
//! `involved.contains(&q)` for every qubit of every instruction to find the
//! idle set. A [`CompiledProgram`] pays all of that once: gates are
//! classified into [`KernelClass`] kernels, operands are unpacked to raw
//! indices, and the idle set of each top-level instruction is a precomputed
//! bitmask. Multi-thousand-shot runs then touch nothing but the amplitude
//! vector and the RNG.
//!
//! Compilation also detects the *terminal sampling* shapes — a noise-free
//! program whose only non-unitary operations are a final `measure_all` or
//! a final run of per-qubit `measure`s — for which the executor evolves
//! the state once and draws every shot from the frozen final state (see
//! [`crate::StateVector::cumulative_probabilities`] and the executor's
//! conditional-outcome cascade).

use crate::executor::ExecuteError;
use crate::qubit_model::QubitModel;
use crate::state::StateVector;
use cqasm::math::{Mat2, C64};
use cqasm::{BlockUnitary, FusedDiagonal, Instruction, KernelClass, Program};

/// The largest program the state-vector engine accepts. A 30-qubit state
/// is 2^30 amplitudes (16 GiB of `Complex64`); beyond that the allocation
/// itself is the failure, so compilation rejects the program with a typed
/// [`ExecuteError::TooManyQubits`] instead of aborting inside the kernel.
pub const MAX_SIM_QUBITS: usize = 30;

/// The largest program the stabilizer engines accept. Tableau state is
/// `O(n^2)` bits (a 2048-qubit tableau is ~1 MiB), so the ceiling is set
/// by per-shot `O(n^2)` measurement cost rather than memory; 2048 keeps
/// worst-case shots well under a millisecond-scale budget.
pub const MAX_STAB_QUBITS: usize = 2048;

/// A gate lowered for direct kernel dispatch: the classified kernel plus
/// unpacked operand indices.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedGate {
    /// The specialised (or generic) kernel to apply.
    pub kernel: KernelClass,
    /// Raw operand indices, in gate order (control first for CNOT).
    pub qubits: Vec<usize>,
    /// Operand count, cached for noise-channel selection.
    pub arity: usize,
}

/// One operation of a compiled program.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedOp {
    /// Reset a qubit to `|0>` (projective measure + conditional flip).
    PrepZ(usize),
    /// Apply a gate unconditionally.
    Gate(PlannedGate),
    /// Apply a gate iff the classical bit is one.
    Cond(usize, PlannedGate),
    /// Measure one qubit into its implicit bit.
    Measure(usize),
    /// Measure every qubit.
    MeasureAll,
    /// Apply the idle channel once to every qubit in the mask (bit `q` set
    /// means qubit `q` idles). Emitted only when the model has an idle
    /// channel, for the qubits *not* involved in a top-level instruction.
    Idle(u64),
    /// Explicit `wait`: idle every qubit for the given number of cycles.
    /// Emitted only when the model has an idle channel.
    Wait(u64),
}

/// Which simulation class a compiled plan belongs to, from most to least
/// specialised. The dispatcher routes each plan to the cheapest engine
/// that is provably exact for its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitClass {
    /// Noise-free, feedback-free Clifford circuit: a unitary Clifford
    /// prefix closed by one `measure_all` (on at most 64 qubits), or
    /// Clifford gates and per-qubit `measure`s in any interleaving — no
    /// conditionals, no resets, so outcomes never feed back into the
    /// circuit. Eligible for the bit-packed Pauli-frame sampler (one
    /// symbolic reference tableau run, then word-parallel shots).
    CliffordTerminal,
    /// Noise-free circuit built entirely from Clifford gates, `prep_z`,
    /// measurements and classically-conditioned Clifford corrections, in
    /// any order. Eligible for the per-shot CHP tableau executor.
    Clifford,
    /// Everything else: non-Clifford gates, noise channels, or
    /// measurements that do not fit the 64-bit measurement register.
    /// Served by the state-vector (or density-matrix) engine.
    General,
}

impl CircuitClass {
    /// Stable lowercase name for telemetry labels and reports.
    pub fn name(&self) -> &'static str {
        match self {
            CircuitClass::CliffordTerminal => "clifford_terminal",
            CircuitClass::Clifford => "clifford",
            CircuitClass::General => "general",
        }
    }
}

/// A Clifford gate lowered for tableau dispatch: the generator plus raw
/// operand indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliffordGate {
    /// Hadamard.
    H(usize),
    /// Phase gate `diag(1, i)`.
    S(usize),
    /// Inverse phase gate.
    Sdag(usize),
    /// Pauli-X.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// `Rx(pi/2)` up to global phase.
    X90(usize),
    /// `Ry(pi/2)` up to global phase.
    Y90(usize),
    /// `Rx(-pi/2)` up to global phase.
    Mx90(usize),
    /// `Ry(-pi/2)` up to global phase.
    My90(usize),
    /// Controlled-X (control, target).
    Cnot(usize, usize),
    /// Controlled-Z.
    Cz(usize, usize),
    /// Qubit exchange.
    Swap(usize, usize),
}

/// One operation of the stabilizer lowering of a plan. Parallel to
/// [`PlannedOp`] but restricted to what the tableau engines execute;
/// built pre-fusion (fused kernels have no Clifford identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StabOp {
    /// Reset a qubit to `|0>`.
    PrepZ(usize),
    /// Apply a Clifford gate.
    Gate(CliffordGate),
    /// Apply a Clifford gate iff the classical bit is one.
    Cond(usize, CliffordGate),
    /// Measure one qubit into its implicit bit (`q < 64`).
    Measure(usize),
    /// Measure every qubit (`n <= 64`).
    MeasureAll,
}

/// The measurement shape that closes a plan, when the plan ends in
/// measurements with nothing after them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TerminalMeasure {
    /// One final `measure_all`.
    All,
    /// A final run of per-qubit `measure` instructions; the qubit indices
    /// are in program order (a qubit may appear more than once).
    Run(Vec<usize>),
}

/// The longest per-qubit terminal measure run the sampling fast path
/// accepts: the realised outcome prefix is packed into a `u64`, so runs up
/// to 64 measures qualify. The conditional-outcome cascade memoises one
/// probability per realised prefix and prunes its cache on demand (see the
/// executor's `MeasureCascade`), so long runs no longer risk unbounded
/// memory; programs measuring a qubit more than 64 times fall back to full
/// per-shot interpretation.
pub const MAX_MEASURE_RUN_SAMPLING: usize = 64;

/// The widest support (in qubits) a fused diagonal batch may span: the
/// entry table is `2^support` complex numbers, so 12 caps it at 64 KiB —
/// comfortably cache-resident. Wider diagonal chains are split greedily.
pub const MAX_FUSED_DIAG_QUBITS: usize = 12;

/// The widest support a fused dense block may span (`8x8` matrices); gate
/// clusters on more qubits stay unfused.
pub const MAX_FUSED_BLOCK_QUBITS: usize = 3;

/// Below this register size the state fits in cache and per-kernel
/// dispatch overhead dominates, so block clustering fuses eagerly. At or
/// above it each kernel is a bandwidth/arithmetic-bound sweep over the
/// amplitudes, and a dense block must beat the [`kernel_cost`] estimate of
/// the gates it replaces.
pub const BLOCK_EAGER_MAX_QUBITS: usize = 14;

/// Knobs controlling plan compilation. The default enables gate fusion;
/// benchmarks and differential tests disable it to compare against the
/// unfused plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// Whether the fusion stage runs (it is also suppressed automatically
    /// whenever the model attaches error channels to gates).
    pub fusion: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { fusion: true }
    }
}

/// What the fusion stage did to a plan, for telemetry and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FusionStats {
    /// Gates entering the fusion stage (0 when fusion did not run).
    pub gates_before: u64,
    /// Gates remaining after fusion.
    pub gates_after: u64,
    /// Runs of adjacent same-qubit 1q gates collapsed into one 2x2.
    pub fused_1q_runs: u64,
    /// Batches of consecutive diagonal gates collapsed into one table.
    pub fused_diag_batches: u64,
    /// Clusters collapsed into dense blocks (including blocks that composed
    /// to the exact identity and were dropped outright).
    pub fused_blocks: u64,
    /// Layers of independent 1q gates on distinct qubits folded into one
    /// factored sweep.
    pub fused_1q_layers: u64,
}

/// A [`Program`] lowered against a [`QubitModel`], ready for repeated
/// execution. Built by [`crate::Simulator::compile`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    n: usize,
    ops: Vec<PlannedOp>,
    terminal: Option<TerminalMeasure>,
    sampling: bool,
    stats: FusionStats,
    class: CircuitClass,
    stab_ops: Option<Vec<StabOp>>,
}

impl CompiledProgram {
    /// Validates and lowers `program` for execution under `model` with the
    /// default [`PlanOptions`] (fusion on).
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] if the program fails semantic
    /// validation, or [`ExecuteError::TooManyQubits`] if it addresses more
    /// than [`MAX_SIM_QUBITS`] qubits.
    pub fn compile(program: &Program, model: &QubitModel) -> Result<Self, ExecuteError> {
        Self::compile_with(program, model, PlanOptions::default())
    }

    /// [`CompiledProgram::compile`] with explicit [`PlanOptions`].
    ///
    /// # Errors
    ///
    /// Same as [`CompiledProgram::compile`].
    pub fn compile_with(
        program: &Program,
        model: &QubitModel,
        options: PlanOptions,
    ) -> Result<Self, ExecuteError> {
        program
            .validate()
            .map_err(|e| ExecuteError::Invalid(e.to_string()))?;
        let n = program.qubit_count();
        let idle_active = !model.idle_channel().is_none();
        let noise_free = model.gate_channel(1).is_none()
            && model.gate_channel(2).is_none()
            && !idle_active
            && model.readout_error() == 0.0;
        // Classify before enforcing the state-vector qubit ceiling: a
        // Clifford plan is servable by the tableau engines far past it.
        let stab_ops = if noise_free {
            build_stab_ops(program, n)
        } else {
            None
        };
        let class = match &stab_ops {
            Some(sops) if stab_terminal_shape(sops) => CircuitClass::CliffordTerminal,
            Some(_) => CircuitClass::Clifford,
            None => CircuitClass::General,
        };
        if class == CircuitClass::General && n > MAX_SIM_QUBITS {
            return Err(ExecuteError::TooManyQubits {
                needed: n,
                max: MAX_SIM_QUBITS,
            });
        }
        if n > MAX_STAB_QUBITS {
            return Err(ExecuteError::TooManyQubits {
                needed: n,
                max: MAX_STAB_QUBITS,
            });
        }
        let all_mask: u64 = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut ops = Vec::new();
        for ins in program.flat_instructions() {
            lower(ins, &mut ops, idle_active);
            // Schedule-aware idling, matching the interpreter: while a
            // top-level instruction occupies its operands, every uninvolved
            // qubit decoheres for one step. `wait` idles everything itself;
            // `display` takes no time.
            if idle_active && !matches!(ins, Instruction::Wait(_) | Instruction::Display) {
                let involved: u64 = match ins {
                    Instruction::MeasureAll => all_mask,
                    other => other
                        .qubits()
                        .iter()
                        .fold(0u64, |m, q| m | (1u64 << q.index())),
                };
                let idle_mask = all_mask & !involved;
                if idle_mask != 0 {
                    ops.push(PlannedOp::Idle(idle_mask));
                }
            }
        }
        // Fusion composes gates into single kernels, which is only exact
        // when no error channel (and its RNG draws) attaches to individual
        // gates. Idle channels are fine: `Idle`/`Wait` ops break fusion
        // segments, so idling happens at exactly the same points either way.
        let mut stats = FusionStats::default();
        if options.fusion && model.gate_channel(1).is_none() && model.gate_channel(2).is_none() {
            ops = fuse_ops(n, ops, &mut stats);
        }
        let terminal = classify_terminal(&ops);
        let sampling = noise_free
            && match &terminal {
                Some(TerminalMeasure::All) => ops[..ops.len() - 1]
                    .iter()
                    .all(|op| matches!(op, PlannedOp::Gate(_))),
                Some(TerminalMeasure::Run(qs)) => {
                    qs.len() <= MAX_MEASURE_RUN_SAMPLING
                        && ops[..ops.len() - qs.len()]
                            .iter()
                            .all(|op| matches!(op, PlannedOp::Gate(_)))
                }
                None => false,
            };
        Ok(CompiledProgram {
            n,
            ops,
            terminal,
            sampling,
            stats,
            class,
            stab_ops,
        })
    }

    /// Which simulation class the plan belongs to (see [`CircuitClass`]).
    pub fn circuit_class(&self) -> CircuitClass {
        self.class
    }

    /// The stabilizer lowering of the plan, present exactly when
    /// [`CompiledProgram::circuit_class`] is not [`CircuitClass::General`].
    pub fn stab_ops(&self) -> Option<&[StabOp]> {
        self.stab_ops.as_deref()
    }

    /// Number of qubits the plan executes on.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// What the fusion stage did (all zeros when fusion was disabled or
    /// suppressed by per-gate noise channels).
    pub fn fusion_stats(&self) -> FusionStats {
        self.stats
    }

    /// The lowered operation sequence.
    pub fn ops(&self) -> &[PlannedOp] {
        &self.ops
    }

    /// Whether the plan qualifies for the multi-shot sampling fast path:
    /// a noise-free unitary prefix followed either by a single terminal
    /// `measure_all` or by a terminal run of per-qubit `measure`
    /// instructions (at most [`MAX_MEASURE_RUN_SAMPLING`] of them). Such a
    /// plan is evolved once and all shots are drawn from the frozen final
    /// state, which is statistically *and* bit-for-bit identical to
    /// re-simulating every shot.
    pub fn terminal_sampling(&self) -> bool {
        self.sampling
    }

    /// The terminal measurement the sampling fast path would execute, or
    /// `None` when the plan does not qualify (see
    /// [`CompiledProgram::terminal_sampling`]).
    pub fn sampling_measures(&self) -> Option<&TerminalMeasure> {
        if self.sampling {
            self.terminal.as_ref()
        } else {
            None
        }
    }

    /// The measurement shape closing the plan, independent of noise: the
    /// last operation(s) are a `measure_all` or a run of per-qubit
    /// `measure`s with nothing after them. Unlike
    /// [`CompiledProgram::sampling_measures`] this ignores the qubit model,
    /// so exact-channel executors (the density-matrix engine) can use it on
    /// noisy plans too.
    pub fn terminal_measurement(&self) -> Option<&TerminalMeasure> {
        self.terminal.as_ref()
    }
}

/// Classifies the measurement suffix of a lowered op sequence: a final
/// `measure_all`, or the maximal trailing run of per-qubit `measure`s.
fn classify_terminal(ops: &[PlannedOp]) -> Option<TerminalMeasure> {
    match ops.last()? {
        PlannedOp::MeasureAll => Some(TerminalMeasure::All),
        PlannedOp::Measure(_) => {
            let start = ops
                .iter()
                .rposition(|op| !matches!(op, PlannedOp::Measure(_)))
                .map_or(0, |i| i + 1);
            let qs: Vec<usize> = ops[start..]
                .iter()
                .filter_map(|op| match op {
                    PlannedOp::Measure(q) => Some(*q),
                    _ => None,
                })
                .collect();
            Some(TerminalMeasure::Run(qs))
        }
        _ => None,
    }
}

/// Lowers `program` into stabilizer ops, or `None` when any instruction
/// falls outside the executable Clifford fragment: a non-Clifford gate, a
/// measured or condition bit at index 64 or above (the measurement
/// register is a `u64`), or a `measure_all` past 64 qubits. The
/// [`MAX_STAB_QUBITS`] width cap is enforced by the compiler, not here,
/// so oversized Clifford programs still classify as Clifford and get an
/// error naming the stabilizer ceiling.
fn build_stab_ops(program: &Program, n: usize) -> Option<Vec<StabOp>> {
    let mut ops = Vec::new();
    for ins in program.flat_instructions() {
        if !lower_stab(ins, n, &mut ops) {
            return None;
        }
    }
    Some(ops)
}

fn lower_stab(ins: &Instruction, n: usize, ops: &mut Vec<StabOp>) -> bool {
    match ins {
        Instruction::PrepZ(q) => ops.push(StabOp::PrepZ(q.index())),
        Instruction::Gate(g) => match clifford_gate(g) {
            Ok(Some(cg)) => ops.push(StabOp::Gate(cg)),
            Ok(None) => {} // identity
            Err(()) => return false,
        },
        Instruction::Cond(bit, g) => {
            if bit.index() >= 64 {
                return false;
            }
            match clifford_gate(g) {
                Ok(Some(cg)) => ops.push(StabOp::Cond(bit.index(), cg)),
                Ok(None) => {}
                Err(()) => return false,
            }
        }
        Instruction::Measure(q) => {
            if q.index() >= 64 {
                return false;
            }
            ops.push(StabOp::Measure(q.index()));
        }
        Instruction::MeasureAll => {
            if n > 64 {
                return false;
            }
            ops.push(StabOp::MeasureAll);
        }
        Instruction::Bundle(instrs) => {
            for inner in instrs {
                if !lower_stab(inner, n, ops) {
                    return false;
                }
            }
        }
        // Only meaningful under an idle channel, which already forces the
        // plan out of the stabilizer classes; a no-op on noise-free state.
        Instruction::Wait(_) => {}
        Instruction::Display => {}
    }
    true
}

/// Maps a gate application to its Clifford generator: `Ok(None)` for the
/// identity, `Err(())` when the gate is outside the Clifford group.
fn clifford_gate(g: &cqasm::GateApp) -> Result<Option<CliffordGate>, ()> {
    use cqasm::GateKind::*;
    let q = |i: usize| g.qubits[i].index();
    Ok(Some(match g.kind {
        I => return Ok(None),
        H => CliffordGate::H(q(0)),
        S => CliffordGate::S(q(0)),
        Sdag => CliffordGate::Sdag(q(0)),
        X => CliffordGate::X(q(0)),
        Y => CliffordGate::Y(q(0)),
        Z => CliffordGate::Z(q(0)),
        X90 => CliffordGate::X90(q(0)),
        Y90 => CliffordGate::Y90(q(0)),
        Mx90 => CliffordGate::Mx90(q(0)),
        My90 => CliffordGate::My90(q(0)),
        Cnot => CliffordGate::Cnot(q(0), q(1)),
        Cz => CliffordGate::Cz(q(0), q(1)),
        Swap => CliffordGate::Swap(q(0), q(1)),
        _ => return Err(()),
    }))
}

/// Whether a stabilizer lowering has the feedback-free shape the
/// Pauli-frame sampler handles: either a unitary Clifford prefix closed by
/// one `measure_all`, or gates and per-qubit `measure`s interleaved freely
/// (at least one measure) with no conditionals or resets. Measures may
/// land mid-sequence — the scheduler hoists each `measure` next to its
/// qubit's last gate — but with no feedback the outcomes are still
/// expressible as one symbolic layout over the whole program.
fn stab_terminal_shape(ops: &[StabOp]) -> bool {
    match ops.last() {
        Some(StabOp::MeasureAll) => ops[..ops.len() - 1]
            .iter()
            .all(|op| matches!(op, StabOp::Gate(_))),
        Some(_) => {
            ops.iter()
                .all(|op| matches!(op, StabOp::Gate(_) | StabOp::Measure(_)))
                && ops.iter().any(|op| matches!(op, StabOp::Measure(_)))
        }
        None => false,
    }
}

fn lower(ins: &Instruction, ops: &mut Vec<PlannedOp>, idle_active: bool) {
    match ins {
        Instruction::PrepZ(q) => ops.push(PlannedOp::PrepZ(q.index())),
        Instruction::Gate(g) => ops.push(PlannedOp::Gate(plan_gate(g))),
        Instruction::Cond(bit, g) => ops.push(PlannedOp::Cond(bit.index(), plan_gate(g))),
        Instruction::Measure(q) => ops.push(PlannedOp::Measure(q.index())),
        Instruction::MeasureAll => ops.push(PlannedOp::MeasureAll),
        Instruction::Bundle(instrs) => {
            // Members execute sequentially; the bundle idles uninvolved
            // qubits once, at the top level.
            for inner in instrs {
                lower(inner, ops, idle_active);
            }
        }
        Instruction::Wait(cycles) => {
            if idle_active {
                ops.push(PlannedOp::Wait(*cycles));
            }
        }
        Instruction::Display => {}
    }
}

fn plan_gate(g: &cqasm::GateApp) -> PlannedGate {
    let qubits: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
    PlannedGate {
        kernel: g.kind.kernel(),
        arity: qubits.len(),
        qubits,
    }
}

// --- Gate fusion --------------------------------------------------------
//
// Fusion rewrites maximal runs of consecutive `Gate` ops (a *segment*;
// anything else — `Measure`, `Cond`, `PrepZ`, `Idle`, `Wait` — breaks the
// segment) through three passes:
//
//  1. adjacent 1q gates on the same qubit compose into one 2x2;
//  2. consecutive diagonal gates batch into one strided diagonal table;
//  3. clusters of gates sharing <= MAX_FUSED_BLOCK_QUBITS qubits compose
//     into one dense block applied per orbit.
//
// Every rewrite is exact matrix composition over the same constants the
// unfused kernels would use — no tolerance, no approximation — so a fused
// plan is semantically identical to the original (amplitudes may differ in
// the last ulp because `(M2 M1) v` associates differently than
// `M2 (M1 v)`; the conformance campaign pins the observable histograms).

/// Runs the fusion passes over a lowered op list.
fn fuse_ops(n: usize, ops: Vec<PlannedOp>, stats: &mut FusionStats) -> Vec<PlannedOp> {
    let mut out = Vec::with_capacity(ops.len());
    let mut segment: Vec<PlannedGate> = Vec::new();
    for op in ops {
        match op {
            PlannedOp::Gate(g) => segment.push(g),
            other => {
                flush_segment(n, &mut segment, &mut out, stats);
                out.push(other);
            }
        }
    }
    flush_segment(n, &mut segment, &mut out, stats);
    out
}

fn flush_segment(
    n: usize,
    segment: &mut Vec<PlannedGate>,
    out: &mut Vec<PlannedOp>,
    stats: &mut FusionStats,
) {
    if segment.is_empty() {
        return;
    }
    stats.gates_before += segment.len() as u64;
    let run = collapse_1q_runs(std::mem::take(segment), stats);
    let run = batch_diagonals(n, run, stats);
    let run = cluster_blocks(n, run, stats);
    let run = layer_1q_runs(run, stats);
    stats.gates_after += run.len() as u64;
    out.extend(run.into_iter().map(PlannedOp::Gate));
}

/// The dense 2x2 of a single-qubit kernel, if the kernel is single-qubit.
fn kernel_mat2(kernel: &KernelClass) -> Option<Mat2> {
    match kernel {
        KernelClass::Identity => Some(Mat2::identity()),
        KernelClass::Diagonal1q(c0, c1) => Some(Mat2([[*c0, C64::ZERO], [C64::ZERO, *c1]])),
        KernelClass::AntiDiagonal1q(c0, c1) => Some(Mat2([[C64::ZERO, *c0], [*c1, C64::ZERO]])),
        KernelClass::General1q(m) | KernelClass::Fused1q(m) => Some(*m),
        _ => None,
    }
}

/// Classifies a composed 2x2 back into the cheapest exact kernel: diagonal
/// and anti-diagonal structure is detected by exact-zero entries (matrix
/// products of structured gates produce exact zeros, not small residues).
fn classify_mat2(m: Mat2) -> KernelClass {
    let [[m00, m01], [m10, m11]] = m.0;
    if m01 == C64::ZERO && m10 == C64::ZERO {
        KernelClass::Diagonal1q(m00, m11)
    } else if m00 == C64::ZERO && m11 == C64::ZERO {
        KernelClass::AntiDiagonal1q(m01, m10)
    } else {
        KernelClass::Fused1q(m)
    }
}

/// Pass 1: collapse each run of directly adjacent 1q gates on the same
/// qubit into one composed 2x2 (interleaved runs on *different* qubits are
/// left to pass 3, which handles them without reordering).
fn collapse_1q_runs(gates: Vec<PlannedGate>, stats: &mut FusionStats) -> Vec<PlannedGate> {
    struct Run {
        q: usize,
        m: Mat2,
        count: usize,
        first: PlannedGate,
    }
    let mut out = Vec::with_capacity(gates.len());
    let mut run: Option<Run> = None;
    let flush = |run: &mut Option<Run>, out: &mut Vec<PlannedGate>, stats: &mut FusionStats| {
        if let Some(r) = run.take() {
            if r.count == 1 {
                out.push(r.first);
            } else {
                stats.fused_1q_runs += 1;
                out.push(PlannedGate {
                    kernel: classify_mat2(r.m),
                    qubits: vec![r.q],
                    arity: 1,
                });
            }
        }
    };
    for g in gates {
        match kernel_mat2(&g.kernel) {
            Some(m2) => {
                let q = g.qubits[0];
                match &mut run {
                    Some(r) if r.q == q => {
                        r.m = m2.matmul(&r.m);
                        r.count += 1;
                    }
                    _ => {
                        flush(&mut run, &mut out, stats);
                        run = Some(Run {
                            q,
                            m: m2,
                            count: 1,
                            first: g,
                        });
                    }
                }
            }
            None => {
                flush(&mut run, &mut out, stats);
                out.push(g);
            }
        }
    }
    flush(&mut run, &mut out, stats);
    out
}

/// Whether a kernel is diagonal in the computational basis (batchable by
/// pass 2).
fn is_diag_kernel(kernel: &KernelClass) -> bool {
    matches!(
        kernel,
        KernelClass::Identity
            | KernelClass::Diagonal1q(..)
            | KernelClass::Cz
            | KernelClass::ControlledPhase(_)
            | KernelClass::FusedDiag(_)
    )
}

/// Multiplies `entries` (indexed by support-bit pattern) by gate `g`'s
/// diagonal action, where `pos[j]` is the support position of `g.qubits[j]`.
fn fold_diag_gate(entries: &mut [C64], g: &PlannedGate, pos: &[usize]) {
    match &g.kernel {
        KernelClass::Identity => {}
        KernelClass::Diagonal1q(c0, c1) => {
            let j = pos[0];
            for (p, e) in entries.iter_mut().enumerate() {
                *e *= if (p >> j) & 1 == 1 { *c1 } else { *c0 };
            }
        }
        KernelClass::Cz => {
            let mask = (1usize << pos[0]) | (1usize << pos[1]);
            for (p, e) in entries.iter_mut().enumerate() {
                if p & mask == mask {
                    *e = -*e;
                }
            }
        }
        KernelClass::ControlledPhase(ph) => {
            let mask = (1usize << pos[0]) | (1usize << pos[1]);
            for (p, e) in entries.iter_mut().enumerate() {
                if p & mask == mask {
                    *e *= *ph;
                }
            }
        }
        KernelClass::FusedDiag(d) => {
            for (p, e) in entries.iter_mut().enumerate() {
                let mut sub = 0usize;
                for (j, &jp) in pos.iter().enumerate() {
                    sub |= ((p >> jp) & 1) << j;
                }
                *e *= d.entries[sub];
            }
        }
        other => unreachable!("non-diagonal kernel {other:?} in diagonal batch"),
    }
}

/// Pass 2: batch maximal runs of consecutive diagonal gates into one
/// [`KernelClass::FusedDiag`] table over the sorted union support. Splits
/// greedily when the union would exceed [`MAX_FUSED_DIAG_QUBITS`].
fn batch_diagonals(n: usize, gates: Vec<PlannedGate>, stats: &mut FusionStats) -> Vec<PlannedGate> {
    let mut out = Vec::with_capacity(gates.len());
    let mut group: Vec<PlannedGate> = Vec::new();
    let mut support: Vec<usize> = Vec::new();
    let flush = |group: &mut Vec<PlannedGate>,
                 support: &mut Vec<usize>,
                 out: &mut Vec<PlannedGate>,
                 stats: &mut FusionStats| {
        match group.len() {
            0 => {}
            1 => out.extend(group.pop()),
            _ => {
                stats.fused_diag_batches += 1;
                let k = support.len();
                let mut entries = vec![C64::ONE; 1usize << k];
                for g in group.drain(..) {
                    // `support` is sorted and contains every operand by
                    // construction, so the partition point is its index.
                    let pos: Vec<usize> = g
                        .qubits
                        .iter()
                        .map(|q| support.partition_point(|s| s < q))
                        .collect();
                    fold_diag_gate(&mut entries, &g, &pos);
                }
                out.push(PlannedGate {
                    kernel: KernelClass::FusedDiag(FusedDiagonal { entries }),
                    qubits: std::mem::take(support),
                    arity: k,
                });
            }
        }
        support.clear();
    };
    for g in gates {
        if is_diag_kernel(&g.kernel) {
            let mut union = support.clone();
            for &q in &g.qubits {
                if !union.contains(&q) {
                    union.push(q);
                }
            }
            if union.len() <= MAX_FUSED_DIAG_QUBITS.min(n) {
                union.sort_unstable();
                support = union;
                group.push(g);
            } else {
                flush(&mut group, &mut support, &mut out, stats);
                let mut s: Vec<usize> = g.qubits.clone();
                s.sort_unstable();
                s.dedup();
                support = s;
                group.push(g);
            }
        } else {
            flush(&mut group, &mut support, &mut out, stats);
            out.push(g);
        }
    }
    flush(&mut group, &mut support, &mut out, stats);
    out
}

/// Expands a kernel acting on `local` (positions within a `k`-qubit block)
/// to a dense `2^k x 2^k` LSB-first matrix, by applying the kernel to each
/// basis column on a scratch `k`-qubit state.
fn expand_kernel(kernel: &KernelClass, local: &[usize], k: usize) -> BlockUnitary {
    let dim = 1usize << k;
    let mut m = vec![C64::ZERO; dim * dim];
    for c in 0..dim {
        let mut psi = StateVector::basis_state(k, c as u64);
        psi.apply_kernel(kernel, local);
        for (r, a) in psi.amplitudes().iter().enumerate() {
            m[r * dim + c] = *a;
        }
    }
    BlockUnitary { k, m }
}

/// Rough cost of applying one planned kernel to a large state, in tenths
/// of a cheap streaming pass roughly split as "sweep the amplitudes" plus
/// "complex multiplies per amplitude". Only relative magnitudes matter;
/// the scale is anchored so the cheapest kernels (scale or permute a
/// subset of amplitudes) cost 4 and a dense 1q pair-rotation costs 5.
fn kernel_cost(g: &PlannedGate) -> u32 {
    match &g.kernel {
        KernelClass::Identity => 0,
        KernelClass::Diagonal1q(..)
        | KernelClass::AntiDiagonal1q(..)
        | KernelClass::Cnot
        | KernelClass::Cz
        | KernelClass::Swap
        | KernelClass::ControlledPhase(_)
        | KernelClass::ControlledControlled(_)
        | KernelClass::FusedDiag(_) => 4,
        KernelClass::General1q(_) | KernelClass::Fused1q(_) => 5,
        KernelClass::General2q(_) => 11,
        KernelClass::FusedBlock(b) => block_cost(b.k),
        // One pass plus one in-register pair rotation per factor.
        KernelClass::Fused1qLayer(mats) => 3 + 2 * mats.len() as u32,
    }
}

/// Cost of one dense `2^k` block sweep on the same scale as
/// [`kernel_cost`]: one pass plus `2^k` complex multiplies per amplitude.
fn block_cost(k: usize) -> u32 {
    3 + 2 * (1u32 << k)
}

/// Pass 3: greedily cluster consecutive gates whose union support stays
/// within [`MAX_FUSED_BLOCK_QUBITS`] qubits and compose each cluster into
/// one dense [`KernelClass::FusedBlock`]. Whether a cluster pays off
/// depends on the register size:
///
/// - Below [`BLOCK_EAGER_MAX_QUBITS`] the whole state sits in cache and
///   per-kernel dispatch dominates, so any cluster of >= 2 gates (>= 3
///   for an 8x8 block) is densified.
/// - At or above it the sweep is bandwidth/arithmetic-bound, so a dense
///   `2^k` block must absorb more estimated work ([`kernel_cost`]) than
///   it costs to apply — otherwise e.g. an Rx mixer layer would be
///   densified into 8x8 blocks that are slower than three cheap 1q
///   passes.
///
/// Clusters composing to the exact identity (e.g. `cnot; cnot`) are
/// dropped outright.
fn cluster_blocks(n: usize, gates: Vec<PlannedGate>, stats: &mut FusionStats) -> Vec<PlannedGate> {
    let mut out = Vec::with_capacity(gates.len());
    let mut cluster: Vec<PlannedGate> = Vec::new();
    let mut support: Vec<usize> = Vec::new();
    let flush = |cluster: &mut Vec<PlannedGate>,
                 support: &mut Vec<usize>,
                 out: &mut Vec<PlannedGate>,
                 stats: &mut FusionStats| {
        let k = support.len();
        let worthwhile = k >= 2
            && if n < BLOCK_EAGER_MAX_QUBITS {
                cluster.len() >= if k >= 3 { 3 } else { 2 }
            } else {
                cluster.iter().map(kernel_cost).sum::<u32>() > block_cost(k)
            };
        if !worthwhile {
            out.append(cluster);
        } else {
            let mut block = BlockUnitary::identity(k);
            for g in cluster.drain(..) {
                // `support` is sorted and contains every operand by
                // construction, so the partition point is its index.
                let local: Vec<usize> = g
                    .qubits
                    .iter()
                    .map(|q| support.partition_point(|s| s < q))
                    .collect();
                block = expand_kernel(&g.kernel, &local, k).matmul(&block);
            }
            stats.fused_blocks += 1;
            if !block.is_exact_identity() {
                out.push(PlannedGate {
                    kernel: KernelClass::FusedBlock(block),
                    qubits: std::mem::take(support),
                    arity: k,
                });
            }
        }
        support.clear();
    };
    for g in gates {
        let mut gs: Vec<usize> = g.qubits.clone();
        gs.sort_unstable();
        gs.dedup();
        if gs.len() > MAX_FUSED_BLOCK_QUBITS {
            flush(&mut cluster, &mut support, &mut out, stats);
            out.push(g);
            continue;
        }
        let mut union = support.clone();
        for &q in &gs {
            if !union.contains(&q) {
                union.push(q);
            }
        }
        if union.len() <= MAX_FUSED_BLOCK_QUBITS {
            union.sort_unstable();
            support = union;
            cluster.push(g);
        } else {
            flush(&mut cluster, &mut support, &mut out, stats);
            support = gs;
            cluster.push(g);
        }
    }
    flush(&mut cluster, &mut support, &mut out, stats);
    out
}

/// The dense 2x2 of a kernel eligible to join a fused 1q layer.
fn layer_factor(kernel: &KernelClass) -> Option<Mat2> {
    match kernel {
        KernelClass::General1q(m) | KernelClass::Fused1q(m) => Some(*m),
        KernelClass::Diagonal1q(c0, c1) => Some(Mat2([[*c0, C64::ZERO], [C64::ZERO, *c1]])),
        KernelClass::AntiDiagonal1q(c0, c1) => Some(Mat2([[C64::ZERO, *c0], [*c1, C64::ZERO]])),
        _ => None,
    }
}

/// Pass 4: group runs of consecutive single-qubit gates on pairwise
/// distinct qubits into factored [`KernelClass::Fused1qLayer`] sweeps of
/// up to [`crate::state::MAX_1Q_LAYER_QUBITS`] qubits: the factored orbit
/// pass does the same arithmetic as the separate gates but streams the
/// state once per sweep instead of once per gate (a 20-qubit Rx mixer
/// layer or Hadamard wall becomes 5 sweeps instead of 20 passes). Runs
/// after the cluster pass so denser fusions get first pick; single
/// leftovers stay as their original kernels.
fn layer_1q_runs(gates: Vec<PlannedGate>, stats: &mut FusionStats) -> Vec<PlannedGate> {
    let mut out: Vec<PlannedGate> = Vec::with_capacity(gates.len());
    let mut layer: Vec<PlannedGate> = Vec::new();
    let flush =
        |layer: &mut Vec<PlannedGate>, out: &mut Vec<PlannedGate>, stats: &mut FusionStats| {
            if layer.len() < 2 {
                out.append(layer);
                return;
            }
            // Snake partition: sort the run by qubit and pair low qubits
            // (cache-line/page local strides) with high qubits (huge strides)
            // in each sweep, so a fused orbit gathers a few contiguous
            // clusters instead of 2^k isolated cache lines. The members act
            // on pairwise distinct qubits, so they commute exactly and any
            // grouping composes the same unitary.
            layer.sort_by_key(|g| g.qubits[0]);
            let width = crate::state::MAX_1Q_LAYER_QUBITS;
            let groups = layer.len().div_ceil(width);
            let base = layer.len() / groups;
            let extra = layer.len() % groups;
            let mut lo = 0usize;
            let mut hi = layer.len();
            for i in 0..groups {
                let size = base + usize::from(i < extra);
                let take_lo = size.div_ceil(2);
                let take_hi = size - take_lo;
                let mut group: Vec<PlannedGate> = Vec::with_capacity(size);
                group.extend_from_slice(&layer[lo..lo + take_lo]);
                group.extend_from_slice(&layer[hi - take_hi..hi]);
                lo += take_lo;
                hi -= take_hi;
                if group.len() == 1 {
                    out.append(&mut group);
                    continue;
                }
                let mats: Vec<Mat2> = group
                    .iter()
                    .filter_map(|g| layer_factor(&g.kernel))
                    .collect();
                if mats.len() < group.len() {
                    // Unreachable by construction (eligibility is checked
                    // before a gate joins the run); degrade to the
                    // original kernels rather than panic in library code.
                    out.append(&mut group);
                    continue;
                }
                let qubits: Vec<usize> = group.iter().map(|g| g.qubits[0]).collect();
                let arity = qubits.len();
                stats.fused_1q_layers += 1;
                out.push(PlannedGate {
                    kernel: KernelClass::Fused1qLayer(mats),
                    qubits,
                    arity,
                });
            }
            layer.clear();
        };
    for g in gates {
        let eligible = g.qubits.len() == 1 && layer_factor(&g.kernel).is_some();
        if !eligible {
            flush(&mut layer, &mut out, stats);
            out.push(g);
            continue;
        }
        if layer.iter().any(|l| l.qubits[0] == g.qubits[0]) {
            flush(&mut layer, &mut out, stats);
        }
        layer.push(g);
    }
    flush(&mut layer, &mut out, stats);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqasm::GateKind;

    fn bell() -> Program {
        Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build()
    }

    /// Compiles with fusion disabled (the pre-fusion plan shape).
    fn compile_unfused(p: &Program, model: &QubitModel) -> CompiledProgram {
        CompiledProgram::compile_with(p, model, PlanOptions { fusion: false }).unwrap()
    }

    #[test]
    fn bell_compiles_to_terminal_sampling_plan() {
        let plan = compile_unfused(&bell(), &QubitModel::Perfect);
        assert_eq!(plan.qubit_count(), 2);
        assert_eq!(plan.ops().len(), 3);
        assert!(plan.terminal_sampling());
        assert!(matches!(
            &plan.ops()[0],
            PlannedOp::Gate(PlannedGate {
                kernel: KernelClass::General1q(_),
                ..
            })
        ));
        assert!(matches!(
            &plan.ops()[1],
            PlannedOp::Gate(PlannedGate {
                kernel: KernelClass::Cnot,
                qubits,
                arity: 2,
            }) if qubits == &[0, 1]
        ));
        assert!(matches!(plan.ops()[2], PlannedOp::MeasureAll));
    }

    #[test]
    fn bell_fuses_into_one_block() {
        // With fusion on (the default), h + cnot share two qubits and
        // collapse into one dense 4x4 block.
        let plan = CompiledProgram::compile(&bell(), &QubitModel::Perfect).unwrap();
        assert_eq!(plan.ops().len(), 2);
        assert!(plan.terminal_sampling());
        assert!(matches!(
            &plan.ops()[0],
            PlannedOp::Gate(PlannedGate {
                kernel: KernelClass::FusedBlock(b),
                qubits,
                arity: 2,
            }) if qubits == &[0, 1] && b.k == 2
        ));
        let stats = plan.fusion_stats();
        assert_eq!(stats.gates_before, 2);
        assert_eq!(stats.gates_after, 1);
        assert_eq!(stats.fused_blocks, 1);
    }

    #[test]
    fn noise_disables_terminal_sampling() {
        let noisy = QubitModel::realistic_depolarizing(0.01, 0.01, 0.0);
        let plan = CompiledProgram::compile(&bell(), &noisy).unwrap();
        assert!(!plan.terminal_sampling());
    }

    #[test]
    fn mid_circuit_measurement_disables_terminal_sampling() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .gate(GateKind::X, &[1])
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert!(!plan.terminal_sampling());
    }

    #[test]
    fn idle_masks_cover_uninvolved_qubits_only() {
        let model = QubitModel::Realistic(crate::qubit_model::RealisticParams {
            channel_1q: crate::error_model::ErrorChannel::None,
            channel_2q: crate::error_model::ErrorChannel::None,
            readout_error: 0.0,
            idle_channel: crate::error_model::ErrorChannel::AmplitudeDamping { gamma: 0.1 },
        });
        let p = Program::builder(3)
            .gate(GateKind::H, &[1])
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &model).unwrap();
        // h q[1] idles qubits 0 and 2; measure_all involves everything.
        let idles: Vec<u64> = plan
            .ops()
            .iter()
            .filter_map(|op| match op {
                PlannedOp::Idle(m) => Some(*m),
                _ => None,
            })
            .collect();
        assert_eq!(idles, vec![0b101]);
        assert!(!plan.terminal_sampling());
    }

    #[test]
    fn wait_is_dropped_without_an_idle_channel() {
        let p = Program::builder(1)
            .gate(GateKind::X, &[0])
            .instruction(Instruction::Wait(5))
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert!(plan
            .ops()
            .iter()
            .all(|op| !matches!(op, PlannedOp::Wait(_))));
        assert!(plan.terminal_sampling());
    }

    #[test]
    fn bundles_flatten_and_idle_once() {
        let model = QubitModel::Realistic(crate::qubit_model::RealisticParams {
            channel_1q: crate::error_model::ErrorChannel::None,
            channel_2q: crate::error_model::ErrorChannel::None,
            readout_error: 0.0,
            idle_channel: crate::error_model::ErrorChannel::PhaseFlip { p: 0.1 },
        });
        let p = Program::builder(4)
            .instruction(Instruction::Bundle(vec![
                Instruction::gate(GateKind::X, &[0]),
                Instruction::gate(GateKind::Y, &[2]),
            ]))
            .build();
        let plan = compile_unfused(&p, &model);
        assert_eq!(plan.ops().len(), 3); // x, y, one idle
        assert!(matches!(plan.ops()[2], PlannedOp::Idle(0b1010)));
        // With fusion on, x and y share <= 3 qubits and fuse into one
        // block, but the idle op still lands after them at the same point.
        let fused = CompiledProgram::compile(&p, &model).unwrap();
        assert_eq!(fused.ops().len(), 2);
        assert!(matches!(fused.ops()[1], PlannedOp::Idle(0b1010)));
    }

    #[test]
    fn invalid_programs_are_rejected() {
        let mut p = Program::new(1);
        let mut s = cqasm::Subcircuit::new("s");
        s.push(Instruction::gate(GateKind::H, &[3]));
        p.push_subcircuit(s);
        assert!(matches!(
            CompiledProgram::compile(&p, &QubitModel::Perfect),
            Err(ExecuteError::Invalid(_))
        ));
    }

    #[test]
    fn oversized_programs_get_a_typed_error() {
        // Regression: `qubits 70` used to reach the state-vector kernel and
        // abort on an internal assertion (and would try a 2^70 allocation).
        // A non-Clifford gate pins the plan to the state-vector engine.
        let mut p = Program::new(70);
        let mut s = cqasm::Subcircuit::new("s");
        s.push(Instruction::gate(GateKind::T, &[0]));
        p.push_subcircuit(s);
        assert_eq!(
            CompiledProgram::compile(&p, &QubitModel::Perfect),
            Err(ExecuteError::TooManyQubits {
                needed: 70,
                max: MAX_SIM_QUBITS
            })
        );
        // A pure-Clifford program is accepted far past the state-vector
        // ceiling, up to the stabilizer engines' own cap.
        let clifford = Program::new(70);
        let plan = CompiledProgram::compile(&clifford, &QubitModel::Perfect).unwrap();
        assert_eq!(plan.circuit_class(), CircuitClass::Clifford);
        let huge = Program::new(MAX_STAB_QUBITS + 1);
        assert_eq!(
            CompiledProgram::compile(&huge, &QubitModel::Perfect),
            Err(ExecuteError::TooManyQubits {
                needed: MAX_STAB_QUBITS + 1,
                max: MAX_STAB_QUBITS
            })
        );
    }

    #[test]
    fn empty_and_measure_only_programs_execute() {
        // Regression: degenerate shapes (no gates at all, or a lone
        // measure_all) must compile and run, returning all-zero outcomes.
        let empty = Program::new(2);
        let plan = CompiledProgram::compile(&empty, &QubitModel::Perfect).unwrap();
        assert!(plan.ops().is_empty());
        assert!(!plan.terminal_sampling());

        let measure_only = Program::builder(2).measure_all().build();
        let plan = CompiledProgram::compile(&measure_only, &QubitModel::Perfect).unwrap();
        assert_eq!(plan.ops().len(), 1);
        assert!(plan.terminal_sampling());
        let hist = crate::Simulator::perfect()
            .run_shots(&measure_only, 50)
            .unwrap();
        assert_eq!(hist.count(0), 50);
    }

    #[test]
    fn terminal_measure_runs_qualify_for_sampling() {
        let p = Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure(1)
            .measure(0)
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert!(plan.terminal_sampling());
        assert_eq!(
            plan.sampling_measures(),
            Some(&TerminalMeasure::Run(vec![1, 0]))
        );
        assert_eq!(
            plan.terminal_measurement(),
            Some(&TerminalMeasure::Run(vec![1, 0]))
        );
    }

    #[test]
    fn measure_followed_by_gate_is_not_terminal() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .gate(GateKind::X, &[1])
            .measure(1)
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        // Only the trailing `measure q[1]` is terminal; the mid-circuit
        // measure in the prefix disqualifies the fast path.
        assert!(!plan.terminal_sampling());
        assert_eq!(plan.sampling_measures(), None);
        assert_eq!(
            plan.terminal_measurement(),
            Some(&TerminalMeasure::Run(vec![1]))
        );
    }

    #[test]
    fn noisy_plans_keep_their_terminal_shape() {
        let noisy = QubitModel::realistic_depolarizing(0.01, 0.01, 0.0);
        let plan = CompiledProgram::compile(&bell(), &noisy).unwrap();
        assert!(!plan.terminal_sampling());
        assert_eq!(plan.terminal_measurement(), Some(&TerminalMeasure::All));
    }

    #[test]
    fn wide_measure_runs_now_qualify_for_sampling() {
        // Regression for the old MAX_MEASURE_RUN_SAMPLING = 16 ceiling: a
        // 20-qubit terminal measure run samples instead of falling back to
        // per-shot interpretation (the cascade prunes its cache on demand).
        let n = 20;
        let mut b = Program::builder(n);
        for q in 0..n {
            b = b.gate(GateKind::H, &[q]);
        }
        for q in 0..n {
            b = b.measure(q);
        }
        let plan = CompiledProgram::compile(&b.build(), &QubitModel::Perfect).unwrap();
        assert!(plan.terminal_sampling());
        assert!(matches!(
            plan.terminal_measurement(),
            Some(TerminalMeasure::Run(qs)) if qs.len() == n
        ));
    }

    #[test]
    fn oversized_measure_runs_fall_back() {
        // The prefix of realised outcomes packs into a u64, so runs longer
        // than 64 measures (a qubit measured repeatedly) cannot sample.
        let mut b = Program::builder(2).gate(GateKind::H, &[0]);
        for _ in 0..(MAX_MEASURE_RUN_SAMPLING + 1) {
            b = b.measure(0);
        }
        let plan = CompiledProgram::compile(&b.build(), &QubitModel::Perfect).unwrap();
        assert!(!plan.terminal_sampling(), "prefix must fit in 64 bits");
        assert!(matches!(
            plan.terminal_measurement(),
            Some(TerminalMeasure::Run(qs)) if qs.len() == MAX_MEASURE_RUN_SAMPLING + 1
        ));
    }

    #[test]
    fn iterated_subcircuits_unroll() {
        let mut p = Program::new(1);
        let mut s = cqasm::Subcircuit::with_iterations("loop", 3);
        s.push(Instruction::gate(GateKind::X, &[0]));
        p.push_subcircuit(s);
        let plan = compile_unfused(&p, &QubitModel::Perfect);
        assert_eq!(plan.ops().len(), 3);
    }

    #[test]
    fn adjacent_1q_runs_collapse_to_one_kernel() {
        let p = Program::builder(1)
            .gate(GateKind::H, &[0])
            .gate(GateKind::T, &[0])
            .gate(GateKind::H, &[0])
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert_eq!(plan.ops().len(), 2);
        assert!(matches!(
            &plan.ops()[0],
            PlannedOp::Gate(PlannedGate {
                kernel: KernelClass::Fused1q(_),
                qubits,
                arity: 1,
            }) if qubits == &[0]
        ));
        assert_eq!(plan.fusion_stats().fused_1q_runs, 1);
    }

    #[test]
    fn composed_1q_runs_reclassify_to_structured_kernels() {
        // s; t on the same qubit compose into a *diagonal* 2x2, so the
        // fused kernel keeps the cheap diagonal sweep.
        let p = Program::builder(1)
            .gate(GateKind::S, &[0])
            .gate(GateKind::T, &[0])
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert!(matches!(
            &plan.ops()[0],
            PlannedOp::Gate(PlannedGate {
                kernel: KernelClass::Diagonal1q(..),
                ..
            })
        ));
        // x; x composes to the exact identity matrix -> Diagonal1q(1, 1)
        // never reaches the anti-diagonal swap path.
        let p = Program::builder(1)
            .gate(GateKind::X, &[0])
            .gate(GateKind::X, &[0])
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert!(matches!(
            &plan.ops()[0],
            PlannedOp::Gate(PlannedGate {
                kernel: KernelClass::Diagonal1q(c0, c1),
                ..
            }) if *c0 == C64::ONE && *c1 == C64::ONE
        ));
    }

    #[test]
    fn diagonal_chains_batch_into_one_table() {
        // A QFT-style tail: controlled phases + rz, all diagonal, on 4
        // qubits -> one FusedDiag over the union support.
        let p = Program::builder(4)
            .gate(GateKind::T, &[0])
            .gate(GateKind::CRk(2), &[1, 0])
            .gate(GateKind::CRk(3), &[2, 0])
            .gate(GateKind::Cz, &[3, 0])
            .gate(GateKind::Rz(0.7), &[2])
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert_eq!(plan.ops().len(), 2, "ops: {:?}", plan.ops());
        assert!(matches!(
            &plan.ops()[0],
            PlannedOp::Gate(PlannedGate {
                kernel: KernelClass::FusedDiag(d),
                qubits,
                arity: 4,
            }) if qubits == &[0, 1, 2, 3] && d.entries.len() == 16
        ));
        assert_eq!(plan.fusion_stats().fused_diag_batches, 1);
    }

    #[test]
    fn wide_diagonal_chains_split_greedily() {
        // 14 qubits of diagonal support cannot fit one table
        // (MAX_FUSED_DIAG_QUBITS = 12); the batch splits but stays fused.
        let n = 14;
        let mut b = Program::builder(n);
        for q in 0..n {
            b = b.gate(GateKind::Rz(0.1 * q as f64), &[q]);
        }
        for q in 0..n - 1 {
            b = b.gate(GateKind::Cz, &[q, q + 1]);
        }
        let plan = CompiledProgram::compile(&b.build(), &QubitModel::Perfect).unwrap();
        let stats = plan.fusion_stats();
        assert!(stats.fused_diag_batches >= 2, "stats: {stats:?}");
        assert!(stats.gates_after < stats.gates_before);
        for op in plan.ops() {
            if let PlannedOp::Gate(g) = op {
                if let KernelClass::FusedDiag(d) = &g.kernel {
                    assert!(d.entries.len() <= 1 << MAX_FUSED_DIAG_QUBITS);
                }
            }
        }
    }

    #[test]
    fn self_inverse_pairs_drop_to_nothing() {
        let p = Program::builder(2)
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        // cnot; cnot composes to the exact identity and disappears.
        assert_eq!(plan.ops().len(), 1);
        assert!(matches!(plan.ops()[0], PlannedOp::MeasureAll));
        assert!(plan.terminal_sampling());
    }

    #[test]
    fn measurement_and_cond_break_fusion_runs() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .gate(GateKind::H, &[0])
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        // The two H gates sit on opposite sides of the measure: no fusion.
        assert_eq!(plan.fusion_stats().gates_after, 2);

        let p = Program::builder(2)
            .gate(GateKind::X, &[0])
            .measure(0)
            .cond(0, GateKind::X, &[1])
            .gate(GateKind::X, &[1])
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        // The conditional gate neither fuses nor lets its neighbours fuse
        // across it.
        assert!(plan
            .ops()
            .iter()
            .any(|op| matches!(op, PlannedOp::Cond(..))));
        assert_eq!(plan.fusion_stats().fused_blocks, 0);
    }

    #[test]
    fn per_gate_noise_suppresses_fusion() {
        let noisy = QubitModel::realistic_depolarizing(0.01, 0.01, 0.0);
        let plan = CompiledProgram::compile(&bell(), &noisy).unwrap();
        assert_eq!(plan.fusion_stats(), FusionStats::default());
        assert_eq!(plan.ops().len(), 3);
    }

    #[test]
    fn toffoli_clusters_fuse_into_blocks() {
        // Toffoli + cnot + t on 3 shared qubits -> one 8x8 block.
        let p = Program::builder(3)
            .gate(GateKind::Toffoli, &[0, 1, 2])
            .gate(GateKind::Cnot, &[0, 2])
            .gate(GateKind::T, &[1])
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert_eq!(plan.ops().len(), 2);
        assert!(matches!(
            &plan.ops()[0],
            PlannedOp::Gate(PlannedGate {
                kernel: KernelClass::FusedBlock(b),
                qubits,
                arity: 3,
            }) if qubits == &[0, 1, 2] && b.k == 3
        ));
    }

    #[test]
    fn lone_2q_pairs_of_3q_support_stay_unfused() {
        // Two gates spanning 3 qubits: a dense 8x8 would not beat two
        // specialised kernels, so they stay as-is.
        let p = Program::builder(3)
            .gate(GateKind::Cnot, &[0, 1])
            .gate(GateKind::Cnot, &[1, 2])
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert_eq!(plan.fusion_stats().fused_blocks, 0);
        assert_eq!(plan.ops().len(), 3);
    }

    fn class_of(p: &Program) -> CircuitClass {
        CompiledProgram::compile(p, &QubitModel::Perfect)
            .unwrap()
            .circuit_class()
    }

    #[test]
    fn clifford_terminal_covers_clifford_prefix_plus_terminal_measures() {
        assert_eq!(class_of(&bell()), CircuitClass::CliffordTerminal);
        // A trailing per-qubit measure run qualifies too.
        let run = Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure(0)
            .measure(1)
            .build();
        assert_eq!(class_of(&run), CircuitClass::CliffordTerminal);
    }

    #[test]
    fn interleaved_feedback_free_measures_stay_terminal_class() {
        // The scheduler hoists each measure next to its qubit's last gate,
        // so measures land mid-sequence. Without feedback (no cond, no
        // prep_z) the frame sampler still applies.
        let p = Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure(1)
            .gate(GateKind::Cnot, &[0, 2])
            .measure(0)
            .measure(2)
            .build();
        assert_eq!(class_of(&p), CircuitClass::CliffordTerminal);
        // A trailing gate after the last measure is still feedback-free.
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .gate(GateKind::X, &[1])
            .build();
        assert_eq!(class_of(&p), CircuitClass::CliffordTerminal);
        // But a mid-sequence measure_all is not frame-sampleable.
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure_all()
            .gate(GateKind::X, &[1])
            .measure(1)
            .build();
        assert_eq!(class_of(&p), CircuitClass::Clifford);
    }

    #[test]
    fn non_clifford_gates_classify_general() {
        for kind in [
            GateKind::T,
            GateKind::Tdag,
            GateKind::Rz(0.3),
            GateKind::Rx(0.3),
            GateKind::Toffoli,
        ] {
            let qubits: &[usize] = if kind == GateKind::Toffoli {
                &[0, 1, 2]
            } else {
                &[0]
            };
            let p = Program::builder(3).gate(kind, qubits).measure_all().build();
            assert_eq!(class_of(&p), CircuitClass::General, "{kind:?}");
        }
        // Rz at a Clifford angle is still symbolic: the classifier keys on
        // the gate kind, not the parameter, so it stays General.
        let quarter = Program::builder(1)
            .gate(GateKind::Rz(std::f64::consts::FRAC_PI_2), &[0])
            .measure_all()
            .build();
        assert_eq!(class_of(&quarter), CircuitClass::General);
    }

    #[test]
    fn mid_circuit_measurement_demotes_terminal_to_clifford() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .cond(0, GateKind::X, &[1])
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert_eq!(plan.circuit_class(), CircuitClass::Clifford);
        assert!(plan.stab_ops().is_some());
        // prep_z mid-circuit likewise blocks the frame sampler's
        // terminal shape but keeps the tableau path.
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .prep_z(0)
            .measure_all()
            .build();
        assert_eq!(class_of(&p), CircuitClass::Clifford);
    }

    #[test]
    fn register_width_limits_demote_to_general() {
        // A mid-circuit measure past the 64-bit classical register cannot
        // lower to StabOps; the plan must stay on the state-vector engine
        // (and is then over its width ceiling).
        let mut p = Program::new(70);
        let mut s = cqasm::Subcircuit::new("s");
        s.push(Instruction::gate(GateKind::H, &[65]));
        s.push(Instruction::Measure(cqasm::Qubit(65)));
        p.push_subcircuit(s);
        assert_eq!(
            CompiledProgram::compile(&p, &QubitModel::Perfect),
            Err(ExecuteError::TooManyQubits {
                needed: 70,
                max: MAX_SIM_QUBITS
            })
        );
        // measure_all on >64 qubits cannot fill a u64 register either.
        let mut p = Program::new(70);
        let mut s = cqasm::Subcircuit::new("s");
        s.push(Instruction::MeasureAll);
        p.push_subcircuit(s);
        assert!(CompiledProgram::compile(&p, &QubitModel::Perfect).is_err());
        // But a terminal measure *run* on low qubits keeps wide Clifford
        // programs servable.
        let mut p = Program::new(70);
        let mut s = cqasm::Subcircuit::new("s");
        s.push(Instruction::gate(GateKind::H, &[0]));
        s.push(Instruction::gate(GateKind::Cnot, &[0, 69]));
        s.push(Instruction::Measure(cqasm::Qubit(0)));
        p.push_subcircuit(s);
        assert_eq!(class_of(&p), CircuitClass::CliffordTerminal);
    }

    #[test]
    fn noise_models_classify_general() {
        let noisy = QubitModel::realistic_depolarizing(0.01, 0.01, 0.0);
        let plan = CompiledProgram::compile(&bell(), &noisy).unwrap();
        assert_eq!(plan.circuit_class(), CircuitClass::General);
        assert!(plan.stab_ops().is_none());
        // Readout error alone also forces the state-vector path.
        let readout = QubitModel::Realistic(crate::qubit_model::RealisticParams {
            channel_1q: crate::error_model::ErrorChannel::None,
            channel_2q: crate::error_model::ErrorChannel::None,
            readout_error: 0.02,
            idle_channel: crate::error_model::ErrorChannel::None,
        });
        let plan = CompiledProgram::compile(&bell(), &readout).unwrap();
        assert_eq!(plan.circuit_class(), CircuitClass::General);
    }

    #[test]
    fn stab_ops_presence_matches_class() {
        for (p, class) in [
            (bell(), CircuitClass::CliffordTerminal),
            (
                Program::builder(2)
                    .gate(GateKind::H, &[0])
                    .measure(0)
                    .gate(GateKind::H, &[0])
                    .measure_all()
                    .build(),
                CircuitClass::Clifford,
            ),
            (
                Program::builder(2)
                    .gate(GateKind::T, &[0])
                    .measure_all()
                    .build(),
                CircuitClass::General,
            ),
        ] {
            let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
            assert_eq!(plan.circuit_class(), class);
            assert_eq!(
                plan.stab_ops().is_some(),
                class != CircuitClass::General,
                "{class:?}"
            );
        }
    }

    #[test]
    fn class_names_are_stable_wire_tokens() {
        assert_eq!(CircuitClass::CliffordTerminal.name(), "clifford_terminal");
        assert_eq!(CircuitClass::Clifford.name(), "clifford");
        assert_eq!(CircuitClass::General.name(), "general");
    }
}
