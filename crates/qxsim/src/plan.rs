//! Compiled shot plans: a validated [`Program`] lowered once into a flat
//! operation list the executor can replay per shot with zero per-shot
//! analysis.
//!
//! Interpreting a [`Program`] directly costs per shot: re-flattening the
//! iterated subcircuits, re-deriving every gate's unitary through
//! [`cqasm::GateKind::unitary`], unpacking operand wrappers, and scanning
//! `involved.contains(&q)` for every qubit of every instruction to find the
//! idle set. A [`CompiledProgram`] pays all of that once: gates are
//! classified into [`KernelClass`] kernels, operands are unpacked to raw
//! indices, and the idle set of each top-level instruction is a precomputed
//! bitmask. Multi-thousand-shot runs then touch nothing but the amplitude
//! vector and the RNG.
//!
//! Compilation also detects the *terminal sampling* shapes — a noise-free
//! program whose only non-unitary operations are a final `measure_all` or
//! a final run of per-qubit `measure`s — for which the executor evolves
//! the state once and draws every shot from the frozen final state (see
//! [`crate::StateVector::cumulative_probabilities`] and the executor's
//! conditional-outcome cascade).

use crate::executor::ExecuteError;
use crate::qubit_model::QubitModel;
use cqasm::{Instruction, KernelClass, Program};

/// The largest program the state-vector engine accepts. A 30-qubit state
/// is 2^30 amplitudes (16 GiB of `Complex64`); beyond that the allocation
/// itself is the failure, so compilation rejects the program with a typed
/// [`ExecuteError::TooManyQubits`] instead of aborting inside the kernel.
pub const MAX_SIM_QUBITS: usize = 30;

/// A gate lowered for direct kernel dispatch: the classified kernel plus
/// unpacked operand indices.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedGate {
    /// The specialised (or generic) kernel to apply.
    pub kernel: KernelClass,
    /// Raw operand indices, in gate order (control first for CNOT).
    pub qubits: Vec<usize>,
    /// Operand count, cached for noise-channel selection.
    pub arity: usize,
}

/// One operation of a compiled program.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedOp {
    /// Reset a qubit to `|0>` (projective measure + conditional flip).
    PrepZ(usize),
    /// Apply a gate unconditionally.
    Gate(PlannedGate),
    /// Apply a gate iff the classical bit is one.
    Cond(usize, PlannedGate),
    /// Measure one qubit into its implicit bit.
    Measure(usize),
    /// Measure every qubit.
    MeasureAll,
    /// Apply the idle channel once to every qubit in the mask (bit `q` set
    /// means qubit `q` idles). Emitted only when the model has an idle
    /// channel, for the qubits *not* involved in a top-level instruction.
    Idle(u64),
    /// Explicit `wait`: idle every qubit for the given number of cycles.
    /// Emitted only when the model has an idle channel.
    Wait(u64),
}

/// The measurement shape that closes a plan, when the plan ends in
/// measurements with nothing after them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TerminalMeasure {
    /// One final `measure_all`.
    All,
    /// A final run of per-qubit `measure` instructions; the qubit indices
    /// are in program order (a qubit may appear more than once).
    Run(Vec<usize>),
}

/// The longest per-qubit terminal measure run the sampling fast path
/// accepts. The conditional-outcome cascade caches one probability per
/// realised outcome prefix, so the cache is bounded by `2^(run+1)` entries;
/// longer runs fall back to full per-shot interpretation.
pub const MAX_MEASURE_RUN_SAMPLING: usize = 16;

/// A [`Program`] lowered against a [`QubitModel`], ready for repeated
/// execution. Built by [`crate::Simulator::compile`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    n: usize,
    ops: Vec<PlannedOp>,
    terminal: Option<TerminalMeasure>,
    sampling: bool,
}

impl CompiledProgram {
    /// Validates and lowers `program` for execution under `model`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecuteError::Invalid`] if the program fails semantic
    /// validation, or [`ExecuteError::TooManyQubits`] if it addresses more
    /// than [`MAX_SIM_QUBITS`] qubits.
    pub fn compile(program: &Program, model: &QubitModel) -> Result<Self, ExecuteError> {
        program
            .validate()
            .map_err(|e| ExecuteError::Invalid(e.to_string()))?;
        let n = program.qubit_count();
        if n > MAX_SIM_QUBITS {
            return Err(ExecuteError::TooManyQubits {
                needed: n,
                max: MAX_SIM_QUBITS,
            });
        }
        let idle_active = !model.idle_channel().is_none();
        let all_mask: u64 = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut ops = Vec::new();
        for ins in program.flat_instructions() {
            lower(ins, &mut ops, idle_active);
            // Schedule-aware idling, matching the interpreter: while a
            // top-level instruction occupies its operands, every uninvolved
            // qubit decoheres for one step. `wait` idles everything itself;
            // `display` takes no time.
            if idle_active && !matches!(ins, Instruction::Wait(_) | Instruction::Display) {
                let involved: u64 = match ins {
                    Instruction::MeasureAll => all_mask,
                    other => other
                        .qubits()
                        .iter()
                        .fold(0u64, |m, q| m | (1u64 << q.index())),
                };
                let idle_mask = all_mask & !involved;
                if idle_mask != 0 {
                    ops.push(PlannedOp::Idle(idle_mask));
                }
            }
        }
        let noise_free = model.gate_channel(1).is_none()
            && model.gate_channel(2).is_none()
            && !idle_active
            && model.readout_error() == 0.0;
        let terminal = classify_terminal(&ops);
        let sampling = noise_free
            && match &terminal {
                Some(TerminalMeasure::All) => ops[..ops.len() - 1]
                    .iter()
                    .all(|op| matches!(op, PlannedOp::Gate(_))),
                Some(TerminalMeasure::Run(qs)) => {
                    qs.len() <= MAX_MEASURE_RUN_SAMPLING
                        && ops[..ops.len() - qs.len()]
                            .iter()
                            .all(|op| matches!(op, PlannedOp::Gate(_)))
                }
                None => false,
            };
        Ok(CompiledProgram {
            n,
            ops,
            terminal,
            sampling,
        })
    }

    /// Number of qubits the plan executes on.
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// The lowered operation sequence.
    pub fn ops(&self) -> &[PlannedOp] {
        &self.ops
    }

    /// Whether the plan qualifies for the multi-shot sampling fast path:
    /// a noise-free unitary prefix followed either by a single terminal
    /// `measure_all` or by a terminal run of per-qubit `measure`
    /// instructions (at most [`MAX_MEASURE_RUN_SAMPLING`] of them). Such a
    /// plan is evolved once and all shots are drawn from the frozen final
    /// state, which is statistically *and* bit-for-bit identical to
    /// re-simulating every shot.
    pub fn terminal_sampling(&self) -> bool {
        self.sampling
    }

    /// The terminal measurement the sampling fast path would execute, or
    /// `None` when the plan does not qualify (see
    /// [`CompiledProgram::terminal_sampling`]).
    pub fn sampling_measures(&self) -> Option<&TerminalMeasure> {
        if self.sampling {
            self.terminal.as_ref()
        } else {
            None
        }
    }

    /// The measurement shape closing the plan, independent of noise: the
    /// last operation(s) are a `measure_all` or a run of per-qubit
    /// `measure`s with nothing after them. Unlike
    /// [`CompiledProgram::sampling_measures`] this ignores the qubit model,
    /// so exact-channel executors (the density-matrix engine) can use it on
    /// noisy plans too.
    pub fn terminal_measurement(&self) -> Option<&TerminalMeasure> {
        self.terminal.as_ref()
    }
}

/// Classifies the measurement suffix of a lowered op sequence: a final
/// `measure_all`, or the maximal trailing run of per-qubit `measure`s.
fn classify_terminal(ops: &[PlannedOp]) -> Option<TerminalMeasure> {
    match ops.last()? {
        PlannedOp::MeasureAll => Some(TerminalMeasure::All),
        PlannedOp::Measure(_) => {
            let start = ops
                .iter()
                .rposition(|op| !matches!(op, PlannedOp::Measure(_)))
                .map_or(0, |i| i + 1);
            let qs: Vec<usize> = ops[start..]
                .iter()
                .filter_map(|op| match op {
                    PlannedOp::Measure(q) => Some(*q),
                    _ => None,
                })
                .collect();
            Some(TerminalMeasure::Run(qs))
        }
        _ => None,
    }
}

fn lower(ins: &Instruction, ops: &mut Vec<PlannedOp>, idle_active: bool) {
    match ins {
        Instruction::PrepZ(q) => ops.push(PlannedOp::PrepZ(q.index())),
        Instruction::Gate(g) => ops.push(PlannedOp::Gate(plan_gate(g))),
        Instruction::Cond(bit, g) => ops.push(PlannedOp::Cond(bit.index(), plan_gate(g))),
        Instruction::Measure(q) => ops.push(PlannedOp::Measure(q.index())),
        Instruction::MeasureAll => ops.push(PlannedOp::MeasureAll),
        Instruction::Bundle(instrs) => {
            // Members execute sequentially; the bundle idles uninvolved
            // qubits once, at the top level.
            for inner in instrs {
                lower(inner, ops, idle_active);
            }
        }
        Instruction::Wait(cycles) => {
            if idle_active {
                ops.push(PlannedOp::Wait(*cycles));
            }
        }
        Instruction::Display => {}
    }
}

fn plan_gate(g: &cqasm::GateApp) -> PlannedGate {
    let qubits: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
    PlannedGate {
        kernel: g.kind.kernel(),
        arity: qubits.len(),
        qubits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqasm::GateKind;

    fn bell() -> Program {
        Program::builder(2)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure_all()
            .build()
    }

    #[test]
    fn bell_compiles_to_terminal_sampling_plan() {
        let plan = CompiledProgram::compile(&bell(), &QubitModel::Perfect).unwrap();
        assert_eq!(plan.qubit_count(), 2);
        assert_eq!(plan.ops().len(), 3);
        assert!(plan.terminal_sampling());
        assert!(matches!(
            &plan.ops()[0],
            PlannedOp::Gate(PlannedGate {
                kernel: KernelClass::General1q(_),
                ..
            })
        ));
        assert!(matches!(
            &plan.ops()[1],
            PlannedOp::Gate(PlannedGate {
                kernel: KernelClass::Cnot,
                qubits,
                arity: 2,
            }) if qubits == &[0, 1]
        ));
        assert!(matches!(plan.ops()[2], PlannedOp::MeasureAll));
    }

    #[test]
    fn noise_disables_terminal_sampling() {
        let noisy = QubitModel::realistic_depolarizing(0.01, 0.01, 0.0);
        let plan = CompiledProgram::compile(&bell(), &noisy).unwrap();
        assert!(!plan.terminal_sampling());
    }

    #[test]
    fn mid_circuit_measurement_disables_terminal_sampling() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .gate(GateKind::X, &[1])
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert!(!plan.terminal_sampling());
    }

    #[test]
    fn idle_masks_cover_uninvolved_qubits_only() {
        let model = QubitModel::Realistic(crate::qubit_model::RealisticParams {
            channel_1q: crate::error_model::ErrorChannel::None,
            channel_2q: crate::error_model::ErrorChannel::None,
            readout_error: 0.0,
            idle_channel: crate::error_model::ErrorChannel::AmplitudeDamping { gamma: 0.1 },
        });
        let p = Program::builder(3)
            .gate(GateKind::H, &[1])
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &model).unwrap();
        // h q[1] idles qubits 0 and 2; measure_all involves everything.
        let idles: Vec<u64> = plan
            .ops()
            .iter()
            .filter_map(|op| match op {
                PlannedOp::Idle(m) => Some(*m),
                _ => None,
            })
            .collect();
        assert_eq!(idles, vec![0b101]);
        assert!(!plan.terminal_sampling());
    }

    #[test]
    fn wait_is_dropped_without_an_idle_channel() {
        let p = Program::builder(1)
            .gate(GateKind::X, &[0])
            .instruction(Instruction::Wait(5))
            .measure_all()
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert!(plan
            .ops()
            .iter()
            .all(|op| !matches!(op, PlannedOp::Wait(_))));
        assert!(plan.terminal_sampling());
    }

    #[test]
    fn bundles_flatten_and_idle_once() {
        let model = QubitModel::Realistic(crate::qubit_model::RealisticParams {
            channel_1q: crate::error_model::ErrorChannel::None,
            channel_2q: crate::error_model::ErrorChannel::None,
            readout_error: 0.0,
            idle_channel: crate::error_model::ErrorChannel::PhaseFlip { p: 0.1 },
        });
        let p = Program::builder(4)
            .instruction(Instruction::Bundle(vec![
                Instruction::gate(GateKind::X, &[0]),
                Instruction::gate(GateKind::Y, &[2]),
            ]))
            .build();
        let plan = CompiledProgram::compile(&p, &model).unwrap();
        assert_eq!(plan.ops().len(), 3); // x, y, one idle
        assert!(matches!(plan.ops()[2], PlannedOp::Idle(0b1010)));
    }

    #[test]
    fn invalid_programs_are_rejected() {
        let mut p = Program::new(1);
        let mut s = cqasm::Subcircuit::new("s");
        s.push(Instruction::gate(GateKind::H, &[3]));
        p.push_subcircuit(s);
        assert!(matches!(
            CompiledProgram::compile(&p, &QubitModel::Perfect),
            Err(ExecuteError::Invalid(_))
        ));
    }

    #[test]
    fn oversized_programs_get_a_typed_error() {
        // Regression: `qubits 70` used to reach the state-vector kernel and
        // abort on an internal assertion (and would try a 2^70 allocation).
        let p = Program::new(70);
        assert_eq!(
            CompiledProgram::compile(&p, &QubitModel::Perfect),
            Err(ExecuteError::TooManyQubits {
                needed: 70,
                max: MAX_SIM_QUBITS
            })
        );
    }

    #[test]
    fn empty_and_measure_only_programs_execute() {
        // Regression: degenerate shapes (no gates at all, or a lone
        // measure_all) must compile and run, returning all-zero outcomes.
        let empty = Program::new(2);
        let plan = CompiledProgram::compile(&empty, &QubitModel::Perfect).unwrap();
        assert!(plan.ops().is_empty());
        assert!(!plan.terminal_sampling());

        let measure_only = Program::builder(2).measure_all().build();
        let plan = CompiledProgram::compile(&measure_only, &QubitModel::Perfect).unwrap();
        assert_eq!(plan.ops().len(), 1);
        assert!(plan.terminal_sampling());
        let hist = crate::Simulator::perfect()
            .run_shots(&measure_only, 50)
            .unwrap();
        assert_eq!(hist.count(0), 50);
    }

    #[test]
    fn terminal_measure_runs_qualify_for_sampling() {
        let p = Program::builder(3)
            .gate(GateKind::H, &[0])
            .gate(GateKind::Cnot, &[0, 1])
            .measure(1)
            .measure(0)
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert!(plan.terminal_sampling());
        assert_eq!(
            plan.sampling_measures(),
            Some(&TerminalMeasure::Run(vec![1, 0]))
        );
        assert_eq!(
            plan.terminal_measurement(),
            Some(&TerminalMeasure::Run(vec![1, 0]))
        );
    }

    #[test]
    fn measure_followed_by_gate_is_not_terminal() {
        let p = Program::builder(2)
            .gate(GateKind::H, &[0])
            .measure(0)
            .gate(GateKind::X, &[1])
            .measure(1)
            .build();
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        // Only the trailing `measure q[1]` is terminal; the mid-circuit
        // measure in the prefix disqualifies the fast path.
        assert!(!plan.terminal_sampling());
        assert_eq!(plan.sampling_measures(), None);
        assert_eq!(
            plan.terminal_measurement(),
            Some(&TerminalMeasure::Run(vec![1]))
        );
    }

    #[test]
    fn noisy_plans_keep_their_terminal_shape() {
        let noisy = QubitModel::realistic_depolarizing(0.01, 0.01, 0.0);
        let plan = CompiledProgram::compile(&bell(), &noisy).unwrap();
        assert!(!plan.terminal_sampling());
        assert_eq!(plan.terminal_measurement(), Some(&TerminalMeasure::All));
    }

    #[test]
    fn oversized_measure_runs_fall_back() {
        let n = 20;
        let mut b = Program::builder(n);
        for q in 0..n {
            b = b.gate(GateKind::H, &[q]);
        }
        for q in 0..n {
            b = b.measure(q);
        }
        let plan = CompiledProgram::compile(&b.build(), &QubitModel::Perfect).unwrap();
        assert!(n > MAX_MEASURE_RUN_SAMPLING);
        assert!(!plan.terminal_sampling(), "cascade cache must stay bounded");
        assert!(matches!(
            plan.terminal_measurement(),
            Some(TerminalMeasure::Run(qs)) if qs.len() == n
        ));
    }

    #[test]
    fn iterated_subcircuits_unroll() {
        let mut p = Program::new(1);
        let mut s = cqasm::Subcircuit::with_iterations("loop", 3);
        s.push(Instruction::gate(GateKind::X, &[0]));
        p.push_subcircuit(s);
        let plan = CompiledProgram::compile(&p, &QubitModel::Perfect).unwrap();
        assert_eq!(plan.ops().len(), 3);
    }
}
