//! Dense state-vector representation and gate application kernels.
//!
//! The state of `n` qubits is a vector of `2^n` complex amplitudes. Basis
//! index bit `i` is the state of qubit `i` (qubit 0 is the least significant
//! bit). This is the engine behind the QX simulator of the paper: it scales
//! to however many qubits fit in host memory (the paper quotes ~35 fully
//! entangled qubits on a laptop for the C++ engine; the memory wall is
//! identical here since the representation is the same).

use cqasm::math::{C64, EPSILON, Mat2, Mat4};
use rand::Rng;

/// A pure quantum state of `n` qubits as a dense amplitude vector.
///
/// # Example
///
/// ```
/// use qxsim::StateVector;
/// use cqasm::GateKind;
///
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_gate(&GateKind::H, &[0]);
/// psi.apply_gate(&GateKind::Cnot, &[0, 1]);
/// // Bell state: |00> and |11> each with probability 1/2.
/// assert!((psi.probability_of(0b00) - 0.5).abs() < 1e-12);
/// assert!((psi.probability_of(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// Creates the all-zeros state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is so large that `2^n` amplitudes cannot be allocated
    /// as a `Vec` (practically, `n > ~30` on common machines will abort on
    /// allocation failure).
    pub fn zero_state(n: usize) -> Self {
        assert!(n < 64, "qubit count {n} out of supported range");
        let mut amps = vec![C64::ZERO; 1usize << n];
        amps[0] = C64::ONE;
        StateVector { n, amps }
    }

    /// Creates a computational basis state `|basis>`.
    ///
    /// # Panics
    ///
    /// Panics if `basis >= 2^n`.
    pub fn basis_state(n: usize, basis: u64) -> Self {
        let mut s = StateVector::zero_state(n);
        assert!((basis as usize) < s.amps.len(), "basis index out of range");
        s.amps[0] = C64::ZERO;
        s.amps[basis as usize] = C64::ONE;
        s
    }

    /// Creates a state from explicit amplitudes (normalising them).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the vector is all-zero.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        assert!(amps.len().is_power_of_two(), "length must be a power of two");
        let n = amps.len().trailing_zeros() as usize;
        let mut s = StateVector { n, amps };
        let norm = s.norm();
        assert!(norm > EPSILON, "cannot normalise the zero vector");
        let inv = 1.0 / norm;
        for a in &mut s.amps {
            *a = *a * inv;
        }
        s
    }

    /// Number of qubits.
    #[inline]
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// Read-only view of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Euclidean norm of the amplitude vector (1 for a valid state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Probability of observing the full basis string `basis`.
    #[inline]
    pub fn probability_of(&self, basis: u64) -> f64 {
        self.amps[basis as usize].norm_sqr()
    }

    /// Probability that qubit `q` measures as 1.
    pub fn probability_one(&self, q: usize) -> f64 {
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Expectation value of Pauli-Z on qubit `q` (`+1` for |0>, `-1` for |1>).
    pub fn expectation_z(&self, q: usize) -> f64 {
        1.0 - 2.0 * self.probability_one(q)
    }

    /// Expectation of an arbitrary diagonal observable: sums
    /// `|amp(b)|^2 * f(b)` over all basis states `b`.
    ///
    /// This is how the QAOA layer evaluates cost Hamiltonians exactly
    /// instead of by sampling.
    pub fn expectation_diagonal<F: Fn(u64) -> f64>(&self, f: F) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .map(|(i, a)| a.norm_sqr() * f(i as u64))
            .sum()
    }

    /// `|<self|other>|^2`, the state fidelity between two pure states.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n, "fidelity requires equal qubit counts");
        let mut ip = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            ip += a.conj() * *b;
        }
        ip.norm_sqr()
    }

    /// Applies a single-qubit unitary to qubit `q`.
    pub fn apply_1q(&mut self, m: &Mat2, q: usize) {
        debug_assert!(q < self.n);
        let stride = 1usize << q;
        let [[m00, m01], [m10, m11]] = m.0;
        let mut base = 0usize;
        while base < self.amps.len() {
            for off in base..base + stride {
                let i0 = off;
                let i1 = off + stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m00 * a0 + m01 * a1;
                self.amps[i1] = m10 * a0 + m11 * a1;
            }
            base += stride << 1;
        }
    }

    /// Applies a two-qubit unitary. The matrix is in the basis
    /// `|q_hi q_lo>` where `q_hi` is the **first** operand (matching
    /// [`cqasm::GateUnitary::Two`]).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if operands alias or are out of range.
    pub fn apply_2q(&mut self, m: &Mat4, q_hi: usize, q_lo: usize) {
        debug_assert!(q_hi != q_lo && q_hi < self.n && q_lo < self.n);
        let bh = 1usize << q_hi;
        let bl = 1usize << q_lo;
        for i in 0..self.amps.len() {
            // Visit each 4-element orbit exactly once, from its smallest index.
            if i & bh != 0 || i & bl != 0 {
                continue;
            }
            let i00 = i;
            let i01 = i | bl;
            let i10 = i | bh;
            let i11 = i | bh | bl;
            let a = [
                self.amps[i00],
                self.amps[i01],
                self.amps[i10],
                self.amps[i11],
            ];
            for (row, idx) in [(0, i00), (1, i01), (2, i10), (3, i11)] {
                let mut acc = C64::ZERO;
                for (col, amp) in a.iter().enumerate() {
                    acc += m.0[row][col] * *amp;
                }
                self.amps[idx] = acc;
            }
        }
    }

    /// Applies a single-qubit unitary to `target` conditioned on every qubit
    /// in `controls` being `|1>`. Used for Toffoli and the multi-controlled
    /// oracles of Grover search.
    pub fn apply_controlled_1q(&mut self, m: &Mat2, controls: &[usize], target: usize) {
        debug_assert!(!controls.contains(&target));
        let ctrl_mask: usize = controls.iter().map(|c| 1usize << c).sum();
        let tbit = 1usize << target;
        let [[m00, m01], [m10, m11]] = m.0;
        for i in 0..self.amps.len() {
            if i & tbit != 0 {
                continue;
            }
            if i & ctrl_mask != ctrl_mask {
                continue;
            }
            let i0 = i;
            let i1 = i | tbit;
            let a0 = self.amps[i0];
            let a1 = self.amps[i1];
            self.amps[i0] = m00 * a0 + m01 * a1;
            self.amps[i1] = m10 * a0 + m11 * a1;
        }
    }

    /// Multiplies the amplitude of every basis state selected by `pred` by
    /// `phase`. This is the diagonal-oracle primitive (e.g. Grover's
    /// phase-flip oracle with `phase = -1`).
    pub fn apply_phase_if<F: Fn(u64) -> bool>(&mut self, phase: C64, pred: F) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            if pred(i as u64) {
                *a *= phase;
            }
        }
    }

    /// Applies the diagonal unitary `e^{-i f(b)}` basis state by basis
    /// state. This implements `exp(-i gamma H_C)` for a diagonal cost
    /// Hamiltonian — the QAOA phase-separation layer.
    pub fn apply_diagonal_phase<F: Fn(u64) -> f64>(&mut self, f: F) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a *= C64::cis(-f(i as u64));
        }
    }

    /// Applies a classical permutation unitary: `|b> -> |f(b)>`.
    ///
    /// This is how reversible classical arithmetic (e.g. the modular
    /// multiplication inside Shor's order finding) is executed without
    /// synthesising its full gate network.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a bijection on the basis set.
    pub fn apply_permutation<F: Fn(u64) -> u64>(&mut self, f: F) {
        let len = self.amps.len();
        let mut new = vec![C64::ZERO; len];
        let mut hit = vec![false; len];
        for (b, a) in self.amps.iter().enumerate() {
            let t = f(b as u64) as usize;
            assert!(t < len, "permutation target out of range");
            assert!(!hit[t], "permutation is not a bijection (collision at {t})");
            hit[t] = true;
            new[t] = *a;
        }
        self.amps = new;
    }

    /// Applies a gate from the cQASM library to the given operands.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the gate arity or indices
    /// are out of range.
    pub fn apply_gate(&mut self, kind: &cqasm::GateKind, qubits: &[usize]) {
        assert_eq!(qubits.len(), kind.arity(), "operand count mismatch");
        for &q in qubits {
            assert!(q < self.n, "qubit index {q} out of range");
        }
        match kind.unitary() {
            cqasm::GateUnitary::One(m) => self.apply_1q(&m, qubits[0]),
            cqasm::GateUnitary::Two(m) => self.apply_2q(&m, qubits[0], qubits[1]),
            cqasm::GateUnitary::ControlledControlled(m) => {
                self.apply_controlled_1q(&m, &qubits[..2], qubits[2])
            }
        }
    }

    /// Projectively measures qubit `q` in the Z basis, collapsing the state.
    /// Returns the outcome bit.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        let p1 = self.probability_one(q);
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.collapse(q, outcome);
        outcome
    }

    /// Forces qubit `q` into the given classical value, renormalising.
    /// (Projective collapse without randomness; used by `prep_z` and by
    /// deterministic replay in tests.)
    pub fn collapse(&mut self, q: usize, value: bool) {
        let mask = 1usize << q;
        let mut kept = 0.0f64;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if ((i & mask) != 0) != value {
                *a = C64::ZERO;
            } else {
                kept += a.norm_sqr();
            }
        }
        if kept > EPSILON {
            let inv = 1.0 / kept.sqrt();
            for a in &mut self.amps {
                *a = *a * inv;
            }
        }
    }

    /// Resets qubit `q` to `|0>`: measures it and applies X if the outcome
    /// was 1. This is the semantics of `prep_z` on a running register.
    pub fn reset<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        if self.measure(q, rng) {
            let x = match cqasm::GateKind::X.unitary() {
                cqasm::GateUnitary::One(m) => m,
                _ => unreachable!(),
            };
            self.apply_1q(&x, q);
        }
    }

    /// Samples a full measurement of all qubits *without* collapsing the
    /// state (used for multi-shot histogram estimation on a frozen state).
    pub fn sample_all<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i as u64;
            }
        }
        (self.amps.len() - 1) as u64
    }

    /// Measures all qubits, collapsing to a single basis state. Returns the
    /// observed basis index.
    pub fn measure_all<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let outcome = self.sample_all(rng);
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = if i as u64 == outcome { C64::ONE } else { C64::ZERO };
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqasm::GateKind;
    use rand::SeedableRng;
    use rand::rngs::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zero_state_probabilities() {
        let s = StateVector::zero_state(3);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
        assert!((s.norm() - 1.0).abs() < 1e-12);
        assert_eq!(s.qubit_count(), 3);
    }

    #[test]
    fn basis_state_construction() {
        let s = StateVector::basis_state(3, 0b101);
        assert!((s.probability_of(0b101) - 1.0).abs() < 1e-12);
        assert!((s.probability_one(0) - 1.0).abs() < 1e-12);
        assert!(s.probability_one(1) < 1e-12);
        assert!((s.probability_one(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut s = StateVector::zero_state(1);
        s.apply_gate(&GateKind::H, &[0]);
        assert!((s.probability_of(0) - 0.5).abs() < 1e-12);
        assert!((s.probability_of(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ghz_state() {
        let mut s = StateVector::zero_state(4);
        s.apply_gate(&GateKind::H, &[0]);
        for q in 0..3 {
            s.apply_gate(&GateKind::Cnot, &[q, q + 1]);
        }
        assert!((s.probability_of(0b0000) - 0.5).abs() < 1e-12);
        assert!((s.probability_of(0b1111) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cnot_operand_order() {
        // control = q1 (value 1), target = q0.
        let mut s = StateVector::basis_state(2, 0b10);
        s.apply_gate(&GateKind::Cnot, &[1, 0]);
        assert!((s.probability_of(0b11) - 1.0).abs() < 1e-12);
        // control = q0 (value 0): nothing happens.
        let mut s = StateVector::basis_state(2, 0b10);
        s.apply_gate(&GateKind::Cnot, &[0, 1]);
        assert!((s.probability_of(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn toffoli_truth_table() {
        for c1 in 0..2u64 {
            for c2 in 0..2u64 {
                for t in 0..2u64 {
                    let basis = c1 | (c2 << 1) | (t << 2);
                    let mut s = StateVector::basis_state(3, basis);
                    s.apply_gate(&GateKind::Toffoli, &[0, 1, 2]);
                    let expect_t = if c1 == 1 && c2 == 1 { t ^ 1 } else { t };
                    let expect = c1 | (c2 << 1) | (expect_t << 2);
                    assert!(
                        (s.probability_of(expect) - 1.0).abs() < 1e-12,
                        "toffoli failed for basis {basis:03b}"
                    );
                }
            }
        }
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = StateVector::basis_state(2, 0b01);
        s.apply_gate(&GateKind::Swap, &[0, 1]);
        assert!((s.probability_of(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gates_preserve_norm() {
        let mut s = StateVector::zero_state(3);
        let seq: &[(GateKind, &[usize])] = &[
            (GateKind::H, &[0]),
            (GateKind::T, &[0]),
            (GateKind::Cnot, &[0, 1]),
            (GateKind::Rz(0.7), &[1]),
            (GateKind::Ry(1.1), &[2]),
            (GateKind::Toffoli, &[0, 1, 2]),
            (GateKind::Swap, &[0, 2]),
        ];
        for (g, qs) in seq {
            s.apply_gate(g, qs);
            assert!((s.norm() - 1.0).abs() < 1e-10, "norm drifted after {g}");
        }
    }

    #[test]
    fn measure_collapses() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&GateKind::H, &[0]);
        s.apply_gate(&GateKind::Cnot, &[0, 1]);
        let mut r = rng();
        let m0 = s.measure(0, &mut r);
        // After measuring one half of a Bell pair, the other is determined.
        let p1 = s.probability_one(1);
        if m0 {
            assert!((p1 - 1.0).abs() < 1e-12);
        } else {
            assert!(p1 < 1e-12);
        }
        assert!((s.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn measure_all_statistics() {
        let mut r = rng();
        let mut ones = 0;
        for _ in 0..1000 {
            let mut s = StateVector::zero_state(1);
            s.apply_gate(&GateKind::H, &[0]);
            if s.measure_all(&mut r) == 1 {
                ones += 1;
            }
        }
        assert!((400..600).contains(&ones), "got {ones} ones out of 1000");
    }

    #[test]
    fn reset_always_gives_zero() {
        let mut r = rng();
        for _ in 0..20 {
            let mut s = StateVector::zero_state(1);
            s.apply_gate(&GateKind::H, &[0]);
            s.reset(0, &mut r);
            assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fidelity_of_identical_and_orthogonal() {
        let a = StateVector::basis_state(2, 0);
        let b = StateVector::basis_state(2, 3);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
        assert!(a.fidelity(&b) < 1e-12);
    }

    #[test]
    fn expectation_z_values() {
        let s = StateVector::basis_state(1, 0);
        assert!((s.expectation_z(0) - 1.0).abs() < 1e-12);
        let s = StateVector::basis_state(1, 1);
        assert!((s.expectation_z(0) + 1.0).abs() < 1e-12);
        let mut s = StateVector::zero_state(1);
        s.apply_gate(&GateKind::H, &[0]);
        assert!(s.expectation_z(0).abs() < 1e-12);
    }

    #[test]
    fn expectation_diagonal_counts_ones() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&GateKind::H, &[0]);
        s.apply_gate(&GateKind::H, &[1]);
        let avg_ones = s.expectation_diagonal(|b| b.count_ones() as f64);
        assert!((avg_ones - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_oracle_flips_marked_state() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&GateKind::H, &[0]);
        s.apply_gate(&GateKind::H, &[1]);
        s.apply_phase_if(C64::real(-1.0), |b| b == 0b11);
        assert!(s.amplitudes()[3].re < 0.0);
        assert!(s.amplitudes()[0].re > 0.0);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controlled_1q_matches_cnot() {
        let x = match GateKind::X.unitary() {
            cqasm::GateUnitary::One(m) => m,
            _ => unreachable!(),
        };
        for basis in 0..4u64 {
            let mut a = StateVector::basis_state(2, basis);
            let mut b = a.clone();
            a.apply_gate(&GateKind::Cnot, &[0, 1]);
            b.apply_controlled_1q(&x, &[0], 1);
            assert!((a.fidelity(&b) - 1.0).abs() < 1e-12, "basis {basis}");
        }
    }

    #[test]
    fn from_amplitudes_normalises() {
        let s = StateVector::from_amplitudes(vec![C64::real(3.0), C64::real(4.0)]);
        assert!((s.norm() - 1.0).abs() < 1e-12);
        assert!((s.probability_of(0) - 0.36).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_amplitudes_rejects_bad_length() {
        let _ = StateVector::from_amplitudes(vec![C64::ONE; 3]);
    }
}
