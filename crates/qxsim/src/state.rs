//! Dense state-vector representation and gate application kernels.
//!
//! The state of `n` qubits is a vector of `2^n` complex amplitudes. Basis
//! index bit `i` is the state of qubit `i` (qubit 0 is the least significant
//! bit). This is the engine behind the QX simulator of the paper: it scales
//! to however many qubits fit in host memory (the paper quotes ~35 fully
//! entangled qubits on a laptop for the C++ engine; the memory wall is
//! identical here since the representation is the same).
//!
//! Gate application enumerates each gate's *orbits* directly: a `k`-qubit
//! gate partitions the `2^n` basis states into `2^(n-k)` independent orbits
//! of `2^k` amplitudes, and the kernels iterate over orbit indices and
//! expand them to basis indices with bit insertion ([`insert_bit`]) instead
//! of scanning all `2^n` indices and skipping non-orbit entries. Structured
//! gates (diagonal, anti-diagonal, CNOT/CZ/SWAP, controlled phase) dispatch
//! to specialised kernels via [`cqasm::KernelClass`]; everything else falls
//! back to the generic dense matrix kernels. Large registers are chunked
//! across threads (see [`par`]). The original scan-and-skip kernels are
//! preserved in [`reference`] as ground truth for property tests and as the
//! benchmark baseline.

use cqasm::math::{Mat2, Mat4, C64, EPSILON};
use cqasm::{BlockUnitary, FusedDiagonal, KernelClass};
use rand::Rng;

/// Analytic default for the minimum register size (in qubits) at which the
/// dense 1q/2q kernels are split across threads. Below this the per-thread
/// spawn overhead exceeds the arithmetic saved; at `2^18` amplitudes (4 MiB
/// of state) the split starts to pay on multi-core hosts. The effective
/// threshold is [`par_min_qubits`], tunable via `QCA_PAR_MIN_QUBITS`.
pub const PAR_MIN_QUBITS: usize = 18;

/// Parses a `QCA_PAR_MIN_QUBITS` value. Accepts `0..=63`; anything else
/// (empty, non-numeric, out of range) falls back to the analytic default
/// [`PAR_MIN_QUBITS`]. Pure, so the env-var plumbing is testable without
/// mutating the process environment.
pub fn parse_par_min_qubits(value: Option<&str>) -> usize {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n < 64)
        .unwrap_or(PAR_MIN_QUBITS)
}

/// The effective threads-on threshold: `QCA_PAR_MIN_QUBITS` from the
/// environment if set to a valid qubit count, else the analytic default
/// [`PAR_MIN_QUBITS`]. Read once per process (see DESIGN.md "Observability"
/// for the empirical tuning procedure built on the telemetry counters).
pub fn par_min_qubits() -> usize {
    use std::sync::OnceLock;
    static THRESHOLD: OnceLock<usize> = OnceLock::new();
    *THRESHOLD
        .get_or_init(|| parse_par_min_qubits(std::env::var("QCA_PAR_MIN_QUBITS").ok().as_deref()))
}

/// Number of worker threads the automatic kernel dispatch uses: the host's
/// available parallelism, probed once. `1` disables threading entirely.
pub(crate) fn auto_threads() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Expands a compressed index by inserting a `0` bit at `pos`: bits below
/// `pos` stay, bits at and above shift up by one. Maps orbit index to the
/// orbit's base state.
#[inline(always)]
fn insert_bit(k: usize, pos: usize) -> usize {
    ((k >> pos) << (pos + 1)) | (k & ((1usize << pos) - 1))
}

/// Expands a compressed index by inserting `0` bits at the two *sorted*
/// positions `p0 < p1` (final bit positions in the expanded index).
#[inline(always)]
fn insert_two_bits(k: usize, p0: usize, p1: usize) -> usize {
    debug_assert!(p0 < p1);
    insert_bit(insert_bit(k, p0), p1)
}

/// A pure quantum state of `n` qubits as a dense amplitude vector.
///
/// # Example
///
/// ```
/// use qxsim::StateVector;
/// use cqasm::GateKind;
///
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_gate(&GateKind::H, &[0]);
/// psi.apply_gate(&GateKind::Cnot, &[0, 1]);
/// // Bell state: |00> and |11> each with probability 1/2.
/// assert!((psi.probability_of(0b00) - 0.5).abs() < 1e-12);
/// assert!((psi.probability_of(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// Creates the all-zeros state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is so large that `2^n` amplitudes cannot be allocated
    /// as a `Vec` (practically, `n > ~30` on common machines will abort on
    /// allocation failure).
    pub fn zero_state(n: usize) -> Self {
        assert!(n < 64, "qubit count {n} out of supported range");
        let mut amps = vec![C64::ZERO; 1usize << n];
        amps[0] = C64::ONE;
        StateVector { n, amps }
    }

    /// Creates a computational basis state `|basis>`.
    ///
    /// # Panics
    ///
    /// Panics if `basis >= 2^n`.
    pub fn basis_state(n: usize, basis: u64) -> Self {
        let mut s = StateVector::zero_state(n);
        assert!((basis as usize) < s.amps.len(), "basis index out of range");
        s.amps[0] = C64::ZERO;
        s.amps[basis as usize] = C64::ONE;
        s
    }

    /// Creates a state from explicit amplitudes (normalising them).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the vector is all-zero.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        assert!(
            amps.len().is_power_of_two(),
            "length must be a power of two"
        );
        let n = amps.len().trailing_zeros() as usize;
        let mut s = StateVector { n, amps };
        let norm = s.norm();
        assert!(norm > EPSILON, "cannot normalise the zero vector");
        let inv = 1.0 / norm;
        for a in &mut s.amps {
            *a = *a * inv;
        }
        s
    }

    /// Wraps explicit amplitudes *without* normalising. For callers that
    /// have already produced a normalised (or deliberately unnormalised)
    /// vector — e.g. differential oracles replaying the executor's exact
    /// collapse arithmetic — where [`StateVector::from_amplitudes`]'s
    /// renormalisation would perturb the bit pattern.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_raw(amps: Vec<C64>) -> Self {
        assert!(
            amps.len().is_power_of_two(),
            "length must be a power of two"
        );
        let n = amps.len().trailing_zeros() as usize;
        StateVector { n, amps }
    }

    /// Number of qubits.
    #[inline]
    pub fn qubit_count(&self) -> usize {
        self.n
    }

    /// Read-only view of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Euclidean norm of the amplitude vector (1 for a valid state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Probability of observing the full basis string `basis`.
    #[inline]
    pub fn probability_of(&self, basis: u64) -> f64 {
        self.amps[basis as usize].norm_sqr()
    }

    /// Probability that qubit `q` measures as 1.
    ///
    /// Walks only the `2^(n-1)` amplitudes with bit `q` set, in strided
    /// blocks, instead of filtering all `2^n` indices.
    pub fn probability_one(&self, q: usize) -> f64 {
        let stride = 1usize << q;
        let mut sum = 0.0f64;
        let mut base = stride;
        while base < self.amps.len() {
            for a in &self.amps[base..base + stride] {
                sum += a.norm_sqr();
            }
            base += stride << 1;
        }
        sum
    }

    /// Expectation value of Pauli-Z on qubit `q` (`+1` for |0>, `-1` for |1>).
    pub fn expectation_z(&self, q: usize) -> f64 {
        1.0 - 2.0 * self.probability_one(q)
    }

    /// Expectation of an arbitrary diagonal observable: sums
    /// `|amp(b)|^2 * f(b)` over all basis states `b`.
    ///
    /// This is how the QAOA layer evaluates cost Hamiltonians exactly
    /// instead of by sampling.
    pub fn expectation_diagonal<F: Fn(u64) -> f64>(&self, f: F) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .map(|(i, a)| a.norm_sqr() * f(i as u64))
            .sum()
    }

    /// `|<self|other>|^2`, the state fidelity between two pure states.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n, "fidelity requires equal qubit counts");
        let mut ip = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            ip += a.conj() * *b;
        }
        ip.norm_sqr()
    }

    /// Applies a single-qubit unitary to qubit `q`.
    ///
    /// Registers of [`par_min_qubits`] or more qubits are chunked across
    /// the host's threads (see [`par`]); the result is bit-identical either
    /// way since every amplitude pair is updated independently.
    pub fn apply_1q(&mut self, m: &Mat2, q: usize) {
        debug_assert!(q < self.n);
        let threads = auto_threads();
        if self.n >= par_min_qubits() && threads > 1 {
            par::apply_1q_threaded(self, m, q, threads);
        } else {
            let pairs = self.amps.len() >> 1;
            self.apply_1q_range(m, q, 0, pairs);
        }
    }

    /// Applies `m` to the amplitude pairs with pair index in `lo..hi`.
    /// Pair index `p` expands to the basis pair `(insert_bit(p, q),
    /// insert_bit(p, q) | 1 << q)`.
    ///
    /// Consecutive pair indices within a `2^q`-aligned block map to
    /// consecutive basis indices, so the range is walked block-by-block
    /// with a contiguous inner loop (one `insert_bit` per block, not per
    /// pair) to keep the traversal as cheap as the classic strided form.
    fn apply_1q_range(&mut self, m: &Mat2, q: usize, lo: usize, hi: usize) {
        let bit = 1usize << q;
        let [[m00, m01], [m10, m11]] = m.0;
        let mut p = lo;
        while p < hi {
            let run = (bit - (p & (bit - 1))).min(hi - p);
            let i0 = insert_bit(p, q);
            for j in 0..run {
                let a0 = self.amps[i0 + j];
                let a1 = self.amps[i0 + j + bit];
                self.amps[i0 + j] = m00 * a0 + m01 * a1;
                self.amps[i0 + j + bit] = m10 * a0 + m11 * a1;
            }
            p += run;
        }
    }

    /// Applies a two-qubit unitary. The matrix is in the basis
    /// `|q_hi q_lo>` where `q_hi` is the **first** operand (matching
    /// [`cqasm::GateUnitary::Two`]).
    ///
    /// Enumerates the `2^(n-2)` four-element orbits directly (no scan over
    /// non-orbit indices) and chunks them across threads for large
    /// registers, like [`StateVector::apply_1q`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if operands alias or are out of range.
    pub fn apply_2q(&mut self, m: &Mat4, q_hi: usize, q_lo: usize) {
        debug_assert!(q_hi != q_lo && q_hi < self.n && q_lo < self.n);
        let threads = auto_threads();
        if self.n >= par_min_qubits() && threads > 1 {
            par::apply_2q_threaded(self, m, q_hi, q_lo, threads);
        } else {
            let orbits = self.amps.len() >> 2;
            self.apply_2q_range(m, q_hi, q_lo, 0, orbits);
        }
    }

    /// Applies `m` to the four-element orbits with orbit index in `lo..hi`.
    fn apply_2q_range(&mut self, m: &Mat4, q_hi: usize, q_lo: usize, lo: usize, hi: usize) {
        let bh = 1usize << q_hi;
        let bl = 1usize << q_lo;
        let (p0, p1) = if q_hi < q_lo {
            (q_hi, q_lo)
        } else {
            (q_lo, q_hi)
        };
        let mm = &m.0;
        for k in lo..hi {
            let i00 = insert_two_bits(k, p0, p1);
            let i01 = i00 | bl;
            let i10 = i00 | bh;
            let i11 = i00 | bh | bl;
            let a0 = self.amps[i00];
            let a1 = self.amps[i01];
            let a2 = self.amps[i10];
            let a3 = self.amps[i11];
            self.amps[i00] = mm[0][0] * a0 + mm[0][1] * a1 + mm[0][2] * a2 + mm[0][3] * a3;
            self.amps[i01] = mm[1][0] * a0 + mm[1][1] * a1 + mm[1][2] * a2 + mm[1][3] * a3;
            self.amps[i10] = mm[2][0] * a0 + mm[2][1] * a1 + mm[2][2] * a2 + mm[2][3] * a3;
            self.amps[i11] = mm[3][0] * a0 + mm[3][1] * a1 + mm[3][2] * a2 + mm[3][3] * a3;
        }
    }

    /// Applies a single-qubit unitary to `target` conditioned on every qubit
    /// in `controls` being `|1>`. Used for Toffoli and the multi-controlled
    /// oracles of Grover search.
    ///
    /// Enumerates only the `2^(n - controls - 1)` amplitude pairs where all
    /// control bits are set, by inserting the fixed control/target bits into
    /// a compressed counter.
    pub fn apply_controlled_1q(&mut self, m: &Mat2, controls: &[usize], target: usize) {
        debug_assert!(!controls.contains(&target));
        // Fixed bits of the orbit base, sorted by position: each control is
        // pinned to 1, the target to 0.
        let mut fixed: Vec<(usize, usize)> = controls.iter().map(|&c| (c, 1)).collect();
        fixed.push((target, 0));
        fixed.sort_unstable();
        let pairs = self.amps.len() >> fixed.len();
        let threads = auto_threads();
        if self.n >= par_min_qubits() && threads > 1 {
            par::apply_controlled_1q_threaded(self, m, controls, target, threads);
        } else {
            self.apply_controlled_1q_range(m, &fixed, target, 0, pairs);
        }
    }

    /// Applies `m` to the fixed-bit orbit pairs with pair index in `lo..hi`:
    /// pair index `k` expands to the basis pair by inserting every
    /// `(position, value)` of `fixed` (controls pinned to 1, target to 0),
    /// then setting the target bit for the second element.
    fn apply_controlled_1q_range(
        &mut self,
        m: &Mat2,
        fixed: &[(usize, usize)],
        target: usize,
        lo: usize,
        hi: usize,
    ) {
        let tbit = 1usize << target;
        let [[m00, m01], [m10, m11]] = m.0;
        for k in lo..hi {
            let mut i0 = k;
            for &(pos, val) in fixed {
                i0 = ((i0 >> pos) << (pos + 1)) | (val << pos) | (i0 & ((1usize << pos) - 1));
            }
            let i1 = i0 | tbit;
            let a0 = self.amps[i0];
            let a1 = self.amps[i1];
            self.amps[i0] = m00 * a0 + m01 * a1;
            self.amps[i1] = m10 * a0 + m11 * a1;
        }
    }

    /// Applies a fused diagonal operator over the given support qubits:
    /// each amplitude is scaled by the table entry its support bits select
    /// (one sweep over all `2^n` amplitudes, no matter how many gates were
    /// fused into the table).
    ///
    /// Registers at or above [`par_min_qubits`] are chunked across threads;
    /// the result is bit-identical since every amplitude is independent.
    pub fn apply_fused_diag(&mut self, diag: &FusedDiagonal, qubits: &[usize]) {
        debug_assert_eq!(diag.entries.len(), 1usize << qubits.len());
        let threads = auto_threads();
        if self.n >= par_min_qubits() && threads > 1 {
            par::apply_fused_diag_threaded(self, diag, qubits, threads);
        } else {
            let len = self.amps.len();
            self.apply_fused_diag_range(&diag.entries, qubits, 0, len);
        }
    }

    /// Scales the amplitudes with basis index in `lo..hi` by their fused
    /// diagonal entry.
    ///
    /// The pattern gather (bit `j` of the table index = the state of
    /// `qubits[j]`) is split at bit `m`: contributions from basis bits
    /// below `m` are tabulated once, contributions from the bits at or
    /// above `m` only change every `2^m` indices, so the hot loop is one
    /// table load, an OR and a complex multiply per amplitude.
    fn apply_fused_diag_range(&mut self, entries: &[C64], qubits: &[usize], lo: usize, hi: usize) {
        const LOW_BITS_MAX: usize = 11;
        let m = self.n.min(LOW_BITS_MAX);
        let low_len = 1usize << m;
        // Support is capped at MAX_FUSED_DIAG_QUBITS = 12, so patterns fit u16.
        let mut low_table = vec![0u16; low_len];
        for (low_bits, slot) in low_table.iter_mut().enumerate() {
            let mut pat = 0usize;
            for (j, &q) in qubits.iter().enumerate() {
                if q < m {
                    pat |= ((low_bits >> q) & 1) << j;
                }
            }
            *slot = pat as u16;
        }
        let mut i = lo;
        while i < hi {
            let mut high_pat = 0usize;
            for (j, &q) in qubits.iter().enumerate() {
                if q >= m {
                    high_pat |= ((i >> q) & 1) << j;
                }
            }
            let run_end = hi.min((i | (low_len - 1)) + 1);
            for idx in i..run_end {
                let pat = high_pat | low_table[idx & (low_len - 1)] as usize;
                self.amps[idx] *= entries[pat];
            }
            i = run_end;
        }
    }

    /// Applies a fused dense block over `k <= 3` support qubits in one
    /// cache-blocked orbit pass: each of the `2^(n-k)` orbits gathers its
    /// `2^k` amplitudes, multiplies by the block matrix, and scatters back.
    /// The block's index convention is LSB-first over `qubits` (bit `j` of
    /// a row/column index = the state of `qubits[j]`).
    ///
    /// Registers at or above [`par_min_qubits`] are chunked across threads
    /// by orbit range; the result is bit-identical to the serial pass.
    ///
    /// # Panics
    ///
    /// Panics if `block.k != qubits.len()` or `block.k > 3`.
    pub fn apply_block(&mut self, block: &BlockUnitary, qubits: &[usize]) {
        assert_eq!(block.k, qubits.len(), "block operand count mismatch");
        assert!(block.k <= 3, "fused blocks are limited to 3 qubits");
        let orbits = self.amps.len() >> block.k;
        let threads = auto_threads();
        if self.n >= par_min_qubits() && threads > 1 {
            par::apply_block_threaded(self, block, qubits, threads);
        } else {
            self.apply_block_range(block, qubits, 0, orbits);
        }
    }

    /// Applies the block to the orbits with orbit index in `lo..hi`,
    /// monomorphised over the block width so the matvec unrolls.
    fn apply_block_range(&mut self, block: &BlockUnitary, qubits: &[usize], lo: usize, hi: usize) {
        match block.k {
            1 => self.block_orbits::<1, 2>(block, qubits, lo, hi),
            2 => self.block_orbits::<2, 4>(block, qubits, lo, hi),
            _ => self.block_orbits::<3, 8>(block, qubits, lo, hi),
        }
    }

    /// The dense `DIM x DIM` orbit pass (`DIM = 2^K`): gather, matvec,
    /// scatter.
    fn block_orbits<const K: usize, const DIM: usize>(
        &mut self,
        block: &BlockUnitary,
        qubits: &[usize],
        lo: usize,
        hi: usize,
    ) {
        debug_assert_eq!(block.k, K);
        debug_assert_eq!(1usize << K, DIM);
        let mut sorted = [0usize; K];
        sorted.copy_from_slice(qubits);
        sorted.sort_unstable();
        // offsets[l]: the basis offset of local index l from the orbit base
        // (the OR of operand bit j for every set bit j of l).
        let mut offsets = [0usize; DIM];
        for (l, off) in offsets.iter_mut().enumerate() {
            for (j, &q) in qubits.iter().enumerate() {
                if (l >> j) & 1 == 1 {
                    *off |= 1usize << q;
                }
            }
        }
        let mut m = [C64::ZERO; 64];
        m[..DIM * DIM].copy_from_slice(&block.m);
        let mut a = [C64::ZERO; DIM];
        let amps = self.amps.as_mut_slice();
        for k in lo..hi {
            let mut base = k;
            for &p in &sorted {
                base = insert_bit(base, p);
            }
            debug_assert!(base | offsets[DIM - 1] < amps.len());
            // SAFETY: `base` has zeros in every support-bit position and
            // `base | offsets[DIM - 1]` (all support bits set) is the
            // largest index of the orbit, below `amps.len()` for any
            // in-range orbit index.
            unsafe {
                for (l, slot) in a.iter_mut().enumerate() {
                    *slot = *amps.get_unchecked(base | offsets[l]);
                }
                for r in 0..DIM {
                    let mut acc = C64::ZERO;
                    for (c, amp) in a.iter().enumerate() {
                        acc += m[r * DIM + c] * *amp;
                    }
                    *amps.get_unchecked_mut(base | offsets[r]) = acc;
                }
            }
        }
    }

    /// Applies a layer of independent single-qubit unitaries — factor `j`
    /// acts on `qubits[j]` — in one factored orbit pass: each `2^k` orbit
    /// is loaded once, each factor rotates its amplitude pairs in
    /// registers, and the orbit is stored once. Same arithmetic as
    /// applying the gates separately, but one memory sweep instead of one
    /// per gate.
    ///
    /// Registers at or above [`par_min_qubits`] are chunked across threads
    /// by orbit range; the result is bit-identical to the serial pass.
    ///
    /// # Panics
    ///
    /// Panics if `mats.len() != qubits.len()` or the layer spans more than
    /// 3 qubits.
    pub fn apply_1q_layer(&mut self, mats: &[Mat2], qubits: &[usize]) {
        assert_eq!(mats.len(), qubits.len(), "layer factor count mismatch");
        assert!(
            !qubits.is_empty() && qubits.len() <= MAX_1Q_LAYER_QUBITS,
            "fused 1q layers are limited to {MAX_1Q_LAYER_QUBITS} qubits"
        );
        let orbits = self.amps.len() >> qubits.len();
        let threads = auto_threads();
        if self.n >= par_min_qubits() && threads > 1 {
            par::apply_1q_layer_threaded(self, mats, qubits, threads);
        } else {
            let (sorted, offsets) = layer_tables(qubits);
            // SAFETY: `&mut self` gives exclusive access to the full
            // amplitude storage, and `0..orbits` covers exactly the
            // in-bounds orbits.
            unsafe {
                layer_pass_raw(self.amps.as_mut_ptr(), mats, &sorted, &offsets, 0, orbits);
            }
        }
    }

    /// Applies the diagonal unitary `diag(c0, c1)` to qubit `q` (Z, S, T,
    /// Rz, ...): every amplitude is scaled, none move.
    pub fn apply_diagonal_1q(&mut self, c0: C64, c1: C64, q: usize) {
        debug_assert!(q < self.n);
        let stride = 1usize << q;
        let mut base = 0usize;
        while base < self.amps.len() {
            for a in &mut self.amps[base..base + stride] {
                *a *= c0;
            }
            for a in &mut self.amps[base + stride..base + (stride << 1)] {
                *a *= c1;
            }
            base += stride << 1;
        }
    }

    /// Applies the anti-diagonal unitary `[[0, c0], [c1, 0]]` to qubit `q`:
    /// each amplitude pair swaps, scaled by `c0` (new `|0>` row) and `c1`
    /// (new `|1>` row). X is `c0 = c1 = 1`; Y is `c0 = -i`, `c1 = i`.
    pub fn apply_antidiagonal_1q(&mut self, c0: C64, c1: C64, q: usize) {
        debug_assert!(q < self.n);
        let bit = 1usize << q;
        for p in 0..self.amps.len() >> 1 {
            let i0 = insert_bit(p, q);
            let i1 = i0 | bit;
            let a0 = self.amps[i0];
            let a1 = self.amps[i1];
            self.amps[i0] = c0 * a1;
            self.amps[i1] = c1 * a0;
        }
    }

    /// Applies CNOT as a pure index permutation: swaps each amplitude pair
    /// whose control bit is set.
    pub fn apply_cnot(&mut self, control: usize, target: usize) {
        debug_assert!(control != target && control < self.n && target < self.n);
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        let (p0, p1) = if control < target {
            (control, target)
        } else {
            (target, control)
        };
        for k in 0..self.amps.len() >> 2 {
            let i10 = insert_two_bits(k, p0, p1) | cbit;
            self.amps.swap(i10, i10 | tbit);
        }
    }

    /// Applies CZ: negates the amplitudes with both qubit bits set.
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        self.apply_controlled_phase(-C64::ONE, a, b);
    }

    /// Applies a controlled phase (CZ, `cr`, `crk`): multiplies the
    /// amplitudes with both qubit bits set by `phase`.
    pub fn apply_controlled_phase(&mut self, phase: C64, a: usize, b: usize) {
        debug_assert!(a != b && a < self.n && b < self.n);
        let both = (1usize << a) | (1usize << b);
        let (p0, p1) = if a < b { (a, b) } else { (b, a) };
        for k in 0..self.amps.len() >> 2 {
            let i11 = insert_two_bits(k, p0, p1) | both;
            self.amps[i11] *= phase;
        }
    }

    /// Applies SWAP as a pure index permutation: exchanges the `|01>` and
    /// `|10>` amplitudes of each orbit.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        debug_assert!(a != b && a < self.n && b < self.n);
        let ba = 1usize << a;
        let bb = 1usize << b;
        let (p0, p1) = if a < b { (a, b) } else { (b, a) };
        for k in 0..self.amps.len() >> 2 {
            let i00 = insert_two_bits(k, p0, p1);
            self.amps.swap(i00 | ba, i00 | bb);
        }
    }

    /// Applies a pre-classified kernel (see [`cqasm::GateKind::kernel`]) to
    /// the given operands. This is the dispatch point the compiled shot
    /// plans use: classification happens once per program, not per shot.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if operand indices are out of range or the
    /// operand count does not match the kernel's arity.
    pub fn apply_kernel(&mut self, kernel: &KernelClass, qubits: &[usize]) {
        match kernel {
            KernelClass::Identity => {}
            KernelClass::Diagonal1q(c0, c1) => self.apply_diagonal_1q(*c0, *c1, qubits[0]),
            KernelClass::AntiDiagonal1q(c0, c1) => self.apply_antidiagonal_1q(*c0, *c1, qubits[0]),
            KernelClass::General1q(m) => self.apply_1q(m, qubits[0]),
            KernelClass::Cnot => self.apply_cnot(qubits[0], qubits[1]),
            KernelClass::Cz => self.apply_cz(qubits[0], qubits[1]),
            KernelClass::Swap => self.apply_swap(qubits[0], qubits[1]),
            KernelClass::ControlledPhase(p) => {
                self.apply_controlled_phase(*p, qubits[0], qubits[1])
            }
            KernelClass::General2q(m) => self.apply_2q(m, qubits[0], qubits[1]),
            KernelClass::ControlledControlled(m) => {
                self.apply_controlled_1q(m, &qubits[..2], qubits[2])
            }
            KernelClass::Fused1q(m) => self.apply_1q(m, qubits[0]),
            KernelClass::FusedDiag(d) => self.apply_fused_diag(d, qubits),
            KernelClass::FusedBlock(b) => self.apply_block(b, qubits),
            KernelClass::Fused1qLayer(mats) => self.apply_1q_layer(mats, qubits),
        }
    }

    /// Multiplies the amplitude of every basis state selected by `pred` by
    /// `phase`. This is the diagonal-oracle primitive (e.g. Grover's
    /// phase-flip oracle with `phase = -1`).
    pub fn apply_phase_if<F: Fn(u64) -> bool>(&mut self, phase: C64, pred: F) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            if pred(i as u64) {
                *a *= phase;
            }
        }
    }

    /// Applies the diagonal unitary `e^{-i f(b)}` basis state by basis
    /// state. This implements `exp(-i gamma H_C)` for a diagonal cost
    /// Hamiltonian — the QAOA phase-separation layer.
    pub fn apply_diagonal_phase<F: Fn(u64) -> f64>(&mut self, f: F) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a *= C64::cis(-f(i as u64));
        }
    }

    /// Applies a classical permutation unitary: `|b> -> |f(b)>`.
    ///
    /// This is how reversible classical arithmetic (e.g. the modular
    /// multiplication inside Shor's order finding) is executed without
    /// synthesising its full gate network.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a bijection on the basis set.
    pub fn apply_permutation<F: Fn(u64) -> u64>(&mut self, f: F) {
        let len = self.amps.len();
        let mut new = vec![C64::ZERO; len];
        let mut hit = vec![false; len];
        for (b, a) in self.amps.iter().enumerate() {
            let t = f(b as u64) as usize;
            assert!(t < len, "permutation target out of range");
            assert!(!hit[t], "permutation is not a bijection (collision at {t})");
            hit[t] = true;
            new[t] = *a;
        }
        self.amps = new;
    }

    /// Applies a gate from the cQASM library to the given operands.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the gate arity or indices
    /// are out of range.
    pub fn apply_gate(&mut self, kind: &cqasm::GateKind, qubits: &[usize]) {
        assert_eq!(qubits.len(), kind.arity(), "operand count mismatch");
        for &q in qubits {
            assert!(q < self.n, "qubit index {q} out of range");
        }
        self.apply_kernel(&kind.kernel(), qubits);
    }

    /// Projectively measures qubit `q` in the Z basis, collapsing the state.
    /// Returns the outcome bit.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        let p1 = self.probability_one(q);
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.collapse(q, outcome);
        outcome
    }

    /// Forces qubit `q` into the given classical value, renormalising.
    /// (Projective collapse without randomness; used by `prep_z` and by
    /// deterministic replay in tests.)
    pub fn collapse(&mut self, q: usize, value: bool) {
        let mask = 1usize << q;
        let mut kept = 0.0f64;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if ((i & mask) != 0) != value {
                *a = C64::ZERO;
            } else {
                kept += a.norm_sqr();
            }
        }
        if kept > EPSILON {
            let inv = 1.0 / kept.sqrt();
            for a in &mut self.amps {
                *a = *a * inv;
            }
        }
    }

    /// Resets qubit `q` to `|0>`: measures it and applies X if the outcome
    /// was 1. This is the semantics of `prep_z` on a running register.
    pub fn reset<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        if self.measure(q, rng) {
            let x = match cqasm::GateKind::X.unitary() {
                cqasm::GateUnitary::One(m) => m,
                _ => unreachable!(),
            };
            self.apply_1q(&x, q);
        }
    }

    /// The running sum of basis-state probabilities: entry `i` is
    /// `sum_{j <= i} |amp(j)|^2` (the last entry is ~1). Build this once on
    /// a frozen state and draw any number of samples from it with
    /// [`StateVector::sample_from_cumulative`] in `O(log 2^n)` each — the
    /// noise-free multi-shot fast path of the executor.
    pub fn cumulative_probabilities(&self) -> Vec<f64> {
        let mut cum = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0f64;
        for a in &self.amps {
            acc += a.norm_sqr();
            cum.push(acc);
        }
        cum
    }

    /// Maps a uniform draw `r` in `[0, 1)` to a basis index by binary search
    /// on a cumulative table from
    /// [`StateVector::cumulative_probabilities`]: the first index `i` with
    /// `r < cum[i]`. Equivalent to (and bit-compatible with) a linear scan
    /// accumulating left to right.
    pub fn sample_from_cumulative(cum: &[f64], r: f64) -> u64 {
        cum.partition_point(|&c| c <= r).min(cum.len() - 1) as u64
    }

    /// Samples a full measurement of all qubits *without* collapsing the
    /// state (used for multi-shot histogram estimation on a frozen state).
    pub fn sample_all<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let r: f64 = rng.gen();
        Self::sample_from_cumulative(&self.cumulative_probabilities(), r)
    }

    /// Measures all qubits, collapsing to a single basis state. Returns the
    /// observed basis index.
    pub fn measure_all<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let outcome = self.sample_all(rng);
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = if i as u64 == outcome {
                C64::ONE
            } else {
                C64::ZERO
            };
        }
        outcome
    }
}

/// The widest fused 1q layer the factored orbit pass accepts. Measured
/// sweet spot: wider layers cut memory passes but each extra factor
/// doubles the gather footprint per orbit, and past `2^4` amplitudes the
/// strided gather (page-sized strides for high qubits) costs more than
/// the passes it saves. The kernel itself handles widths up to 8 (see
/// [`layer_pass_raw`]) so this cap can be retuned without code changes.
pub const MAX_1Q_LAYER_QUBITS: usize = 4;

/// Precomputes the sorted support and the orbit-local offset table for a
/// 1q layer: `offsets[l]` is the basis offset of local index `l` from the
/// orbit base (the OR of operand bit `j` for every set bit `j` of `l`).
fn layer_tables(qubits: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut sorted: Vec<usize> = qubits.to_vec();
    sorted.sort_unstable();
    let dim = 1usize << qubits.len();
    let mut offsets = vec![0usize; dim];
    for (l, off) in offsets.iter_mut().enumerate() {
        for (j, &q) in qubits.iter().enumerate() {
            if (l >> j) & 1 == 1 {
                *off |= 1usize << q;
            }
        }
    }
    (sorted, offsets)
}

/// The factored 1q-layer orbit pass over raw amplitude storage: each orbit
/// in `lo..hi` is gathered into an L1-resident buffer, every factor
/// rotates its amplitude pairs in the buffer (branchless strided walk),
/// and the orbit is scattered back — the same arithmetic as applying the
/// gates separately, in one memory sweep.
///
/// # Safety
///
/// `amps` must point to storage containing every basis index `base |
/// offsets[l]` reachable from an orbit index in `lo..hi`, and the caller
/// must have exclusive access to those indices (disjoint orbit ranges on
/// disjoint workers are fine).
unsafe fn layer_pass_raw(
    amps: *mut C64,
    mats: &[Mat2],
    sorted: &[usize],
    offsets: &[usize],
    lo: usize,
    hi: usize,
) {
    // Monomorphize per width so the factor loop unrolls into fixed-stride
    // passes the compiler can vectorize.
    match mats.len() {
        1 => layer_orbits::<1, 2>(amps, mats, sorted, offsets, lo, hi),
        2 => layer_orbits::<2, 4>(amps, mats, sorted, offsets, lo, hi),
        3 => layer_orbits::<3, 8>(amps, mats, sorted, offsets, lo, hi),
        4 => layer_orbits::<4, 16>(amps, mats, sorted, offsets, lo, hi),
        5 => layer_orbits::<5, 32>(amps, mats, sorted, offsets, lo, hi),
        6 => layer_orbits::<6, 64>(amps, mats, sorted, offsets, lo, hi),
        7 => layer_orbits::<7, 128>(amps, mats, sorted, offsets, lo, hi),
        8 => layer_orbits::<8, 256>(amps, mats, sorted, offsets, lo, hi),
        k => unreachable!("fused 1q layer width {k} exceeds {MAX_1Q_LAYER_QUBITS}"),
    }
}

/// The width-`K` instantiation of the layer pass (`DIM` must be `2^K`).
///
/// # Safety
///
/// Same contract as [`layer_pass_raw`], plus `mats`/`sorted` must hold
/// exactly `K` entries and `offsets` exactly `DIM`.
unsafe fn layer_orbits<const K: usize, const DIM: usize>(
    amps: *mut C64,
    mats: &[Mat2],
    sorted: &[usize],
    offsets: &[usize],
    lo: usize,
    hi: usize,
) {
    let mut m = [[[C64::ZERO; 2]; 2]; K];
    for (slot, mat) in m.iter_mut().zip(mats) {
        *slot = mat.0;
    }
    let mut sp = [0usize; K];
    sp.copy_from_slice(&sorted[..K]);
    let mut off = [0usize; DIM];
    off.copy_from_slice(&offsets[..DIM]);
    let mut buf = [C64::ZERO; DIM];
    for orbit in lo..hi {
        let mut base = orbit;
        for &p in sp.iter() {
            base = insert_bit(base, p);
        }
        for l in 0..DIM {
            *buf.get_unchecked_mut(l) = *amps.add(base | *off.get_unchecked(l));
        }
        for (j, [[m00, m01], [m10, m11]]) in m.into_iter().enumerate() {
            let bit = 1usize << j;
            let mut b = 0usize;
            while b < DIM {
                for l in b..b + bit {
                    let x = *buf.get_unchecked(l);
                    let y = *buf.get_unchecked(l | bit);
                    *buf.get_unchecked_mut(l) = m00 * x + m01 * y;
                    *buf.get_unchecked_mut(l | bit) = m10 * x + m11 * y;
                }
                b += bit << 1;
            }
        }
        for l in 0..DIM {
            *amps.add(base | *off.get_unchecked(l)) = *buf.get_unchecked(l);
        }
    }
}

/// Chunk-parallel dense kernels over `std::thread::scope`.
///
/// Each worker owns a disjoint range of *orbit indices*; since the orbit
/// index ↔ basis indices mapping is a bijection, no two workers ever touch
/// the same amplitude, and because every orbit's update is the same
/// floating-point expression regardless of which thread runs it, the result
/// is bit-identical to the serial kernels for any thread count.
///
/// (The project vendors no `rayon`; scoped threads give the same chunked
/// fork-join shape with zero dependencies.)
pub mod par {
    use super::{insert_bit, insert_two_bits, StateVector};
    use cqasm::math::{Mat2, Mat4, C64};
    use cqasm::{BlockUnitary, FusedDiagonal};

    /// A raw amplitude pointer that may cross thread boundaries. Safety is
    /// argued at each use site: workers write disjoint index sets.
    struct AmpsPtr(*mut cqasm::math::C64);
    unsafe impl Send for AmpsPtr {}
    unsafe impl Sync for AmpsPtr {}

    /// [`StateVector::apply_1q`] with the amplitude pairs split across
    /// `threads` workers. Exposed so tests can force a thread count on
    /// registers below the automatic threshold.
    pub fn apply_1q_threaded(state: &mut StateVector, m: &Mat2, q: usize, threads: usize) {
        let pairs = state.amps.len() >> 1;
        let threads = threads.clamp(1, pairs.max(1));
        if threads <= 1 {
            state.apply_1q_range(m, q, 0, pairs);
            return;
        }
        let bit = 1usize << q;
        let [[m00, m01], [m10, m11]] = m.0;
        let amps = AmpsPtr(state.amps.as_mut_ptr());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let lo = pairs * t / threads;
                let hi = pairs * (t + 1) / threads;
                let amps = &amps;
                scope.spawn(move || {
                    let base = amps.0;
                    for p in lo..hi {
                        let i0 = insert_bit(p, q);
                        let i1 = i0 | bit;
                        // SAFETY: `p -> (i0, i1)` is injective with disjoint
                        // images across pair indices, and the `lo..hi`
                        // ranges partition `0..pairs`, so no other worker
                        // reads or writes these two amplitudes.
                        unsafe {
                            let a0 = *base.add(i0);
                            let a1 = *base.add(i1);
                            *base.add(i0) = m00 * a0 + m01 * a1;
                            *base.add(i1) = m10 * a0 + m11 * a1;
                        }
                    }
                });
            }
        });
    }

    /// [`StateVector::apply_2q`] with the four-element orbits split across
    /// `threads` workers. Exposed so tests can force a thread count on
    /// registers below the automatic threshold.
    pub fn apply_2q_threaded(
        state: &mut StateVector,
        m: &Mat4,
        q_hi: usize,
        q_lo: usize,
        threads: usize,
    ) {
        let orbits = state.amps.len() >> 2;
        let threads = threads.clamp(1, orbits.max(1));
        if threads <= 1 {
            state.apply_2q_range(m, q_hi, q_lo, 0, orbits);
            return;
        }
        let bh = 1usize << q_hi;
        let bl = 1usize << q_lo;
        let (p0, p1) = if q_hi < q_lo {
            (q_hi, q_lo)
        } else {
            (q_lo, q_hi)
        };
        let mm = m.0;
        let amps = AmpsPtr(state.amps.as_mut_ptr());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let lo = orbits * t / threads;
                let hi = orbits * (t + 1) / threads;
                let amps = &amps;
                scope.spawn(move || {
                    let base = amps.0;
                    for k in lo..hi {
                        let i00 = insert_two_bits(k, p0, p1);
                        let i01 = i00 | bl;
                        let i10 = i00 | bh;
                        let i11 = i00 | bh | bl;
                        // SAFETY: orbit index `k` maps to four basis indices
                        // disjoint from every other orbit's, and the
                        // `lo..hi` ranges partition `0..orbits`.
                        unsafe {
                            let a0 = *base.add(i00);
                            let a1 = *base.add(i01);
                            let a2 = *base.add(i10);
                            let a3 = *base.add(i11);
                            *base.add(i00) =
                                mm[0][0] * a0 + mm[0][1] * a1 + mm[0][2] * a2 + mm[0][3] * a3;
                            *base.add(i01) =
                                mm[1][0] * a0 + mm[1][1] * a1 + mm[1][2] * a2 + mm[1][3] * a3;
                            *base.add(i10) =
                                mm[2][0] * a0 + mm[2][1] * a1 + mm[2][2] * a2 + mm[2][3] * a3;
                            *base.add(i11) =
                                mm[3][0] * a0 + mm[3][1] * a1 + mm[3][2] * a2 + mm[3][3] * a3;
                        }
                    }
                });
            }
        });
    }

    /// [`StateVector::apply_controlled_1q`] with the fixed-bit orbit pairs
    /// split across `threads` workers. Exposed so tests can force a thread
    /// count on registers below the automatic threshold.
    pub fn apply_controlled_1q_threaded(
        state: &mut StateVector,
        m: &Mat2,
        controls: &[usize],
        target: usize,
        threads: usize,
    ) {
        let mut fixed: Vec<(usize, usize)> = controls.iter().map(|&c| (c, 1)).collect();
        fixed.push((target, 0));
        fixed.sort_unstable();
        let pairs = state.amps.len() >> fixed.len();
        let threads = threads.clamp(1, pairs.max(1));
        if threads <= 1 {
            state.apply_controlled_1q_range(m, &fixed, target, 0, pairs);
            return;
        }
        let tbit = 1usize << target;
        let [[m00, m01], [m10, m11]] = m.0;
        let fixed = &fixed;
        let amps = AmpsPtr(state.amps.as_mut_ptr());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let lo = pairs * t / threads;
                let hi = pairs * (t + 1) / threads;
                let amps = &amps;
                scope.spawn(move || {
                    let base = amps.0;
                    for k in lo..hi {
                        let mut i0 = k;
                        for &(pos, val) in fixed {
                            i0 = ((i0 >> pos) << (pos + 1))
                                | (val << pos)
                                | (i0 & ((1usize << pos) - 1));
                        }
                        let i1 = i0 | tbit;
                        // SAFETY: the fixed-bit expansion is injective with
                        // disjoint `(i0, i1)` images across pair indices,
                        // and `lo..hi` ranges partition `0..pairs`.
                        unsafe {
                            let a0 = *base.add(i0);
                            let a1 = *base.add(i1);
                            *base.add(i0) = m00 * a0 + m01 * a1;
                            *base.add(i1) = m10 * a0 + m11 * a1;
                        }
                    }
                });
            }
        });
    }

    /// [`StateVector::apply_fused_diag`] with the amplitude range split
    /// across `threads` workers. Exposed so tests can force a thread count
    /// on registers below the automatic threshold.
    pub fn apply_fused_diag_threaded(
        state: &mut StateVector,
        diag: &FusedDiagonal,
        qubits: &[usize],
        threads: usize,
    ) {
        let len = state.amps.len();
        let threads = threads.clamp(1, len.max(1));
        if threads <= 1 {
            state.apply_fused_diag_range(&diag.entries, qubits, 0, len);
            return;
        }
        let entries = &diag.entries;
        // Same low-bits pattern table as the serial pass (see
        // `apply_fused_diag_range`), built once and shared by the workers.
        const LOW_BITS_MAX: usize = 11;
        let split = state.n.min(LOW_BITS_MAX);
        let low_len = 1usize << split;
        let mut low_table = vec![0u16; low_len];
        for (low_bits, slot) in low_table.iter_mut().enumerate() {
            let mut pat = 0usize;
            for (j, &q) in qubits.iter().enumerate() {
                if q < split {
                    pat |= ((low_bits >> q) & 1) << j;
                }
            }
            *slot = pat as u16;
        }
        let low_table = &low_table;
        let amps = AmpsPtr(state.amps.as_mut_ptr());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let lo = len * t / threads;
                let hi = len * (t + 1) / threads;
                let amps = &amps;
                scope.spawn(move || {
                    let base = amps.0;
                    let mut i = lo;
                    while i < hi {
                        let mut high_pat = 0usize;
                        for (j, &q) in qubits.iter().enumerate() {
                            if q >= split {
                                high_pat |= ((i >> q) & 1) << j;
                            }
                        }
                        let run_end = hi.min((i | (low_len - 1)) + 1);
                        for idx in i..run_end {
                            let pat = high_pat | low_table[idx & (low_len - 1)] as usize;
                            // SAFETY: each worker touches only its own
                            // `lo..hi` amplitude range; the ranges
                            // partition `0..len`.
                            unsafe {
                                *base.add(idx) *= entries[pat];
                            }
                        }
                        i = run_end;
                    }
                });
            }
        });
    }

    /// [`StateVector::apply_block`] with the `2^k`-element orbits split
    /// across `threads` workers. Exposed so tests can force a thread count
    /// on registers below the automatic threshold.
    pub fn apply_block_threaded(
        state: &mut StateVector,
        block: &BlockUnitary,
        qubits: &[usize],
        threads: usize,
    ) {
        let orbits = state.amps.len() >> block.k;
        let threads = threads.clamp(1, orbits.max(1));
        if threads <= 1 {
            state.apply_block_range(block, qubits, 0, orbits);
            return;
        }
        let dim = block.dim();
        let mut sorted: Vec<usize> = qubits.to_vec();
        sorted.sort_unstable();
        let mut offsets = [0usize; 8];
        for (l, off) in offsets.iter_mut().enumerate().take(dim) {
            for (j, &q) in qubits.iter().enumerate() {
                if (l >> j) & 1 == 1 {
                    *off |= 1usize << q;
                }
            }
        }
        let sorted = &sorted;
        let m = &block.m;
        let amps = AmpsPtr(state.amps.as_mut_ptr());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let lo = orbits * t / threads;
                let hi = orbits * (t + 1) / threads;
                let amps = &amps;
                scope.spawn(move || {
                    let base_ptr = amps.0;
                    let mut a = [C64::ZERO; 8];
                    for k in lo..hi {
                        let mut base = k;
                        for &p in sorted {
                            base = insert_bit(base, p);
                        }
                        // SAFETY: orbit index `k` maps to `2^k` basis
                        // indices disjoint from every other orbit's, and
                        // the `lo..hi` ranges partition `0..orbits`.
                        unsafe {
                            for (l, slot) in a.iter_mut().enumerate().take(dim) {
                                *slot = *base_ptr.add(base | offsets[l]);
                            }
                            for r in 0..dim {
                                let mut acc = C64::ZERO;
                                for (c, amp) in a.iter().enumerate().take(dim) {
                                    acc += m[r * dim + c] * *amp;
                                }
                                *base_ptr.add(base | offsets[r]) = acc;
                            }
                        }
                    }
                });
            }
        });
    }

    /// [`StateVector::apply_1q_layer`] with the `2^k`-element orbits split
    /// across `threads` workers. Exposed so tests can force a thread count
    /// on registers below the automatic threshold.
    pub fn apply_1q_layer_threaded(
        state: &mut StateVector,
        mats: &[Mat2],
        qubits: &[usize],
        threads: usize,
    ) {
        let orbits = state.amps.len() >> qubits.len();
        let threads = threads.clamp(1, orbits.max(1));
        let (sorted, offsets) = super::layer_tables(qubits);
        if threads <= 1 {
            // SAFETY: exclusive `&mut` access, full in-bounds orbit range.
            unsafe {
                super::layer_pass_raw(state.amps.as_mut_ptr(), mats, &sorted, &offsets, 0, orbits);
            }
            return;
        }
        let sorted = &sorted;
        let offsets = &offsets;
        let amps = AmpsPtr(state.amps.as_mut_ptr());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let lo = orbits * t / threads;
                let hi = orbits * (t + 1) / threads;
                let amps = &amps;
                scope.spawn(move || {
                    // SAFETY: orbit indices map to disjoint basis-index
                    // sets; the orbit ranges partition `0..orbits`.
                    unsafe {
                        super::layer_pass_raw(amps.0, mats, sorted, offsets, lo, hi);
                    }
                });
            }
        });
    }
}

/// The original scan-and-skip kernels, kept verbatim as executable ground
/// truth: the property tests check every specialised kernel against these,
/// and the benchmark suite reports speedups relative to them.
pub mod reference {
    use super::StateVector;
    use cqasm::math::{Mat2, Mat4, C64};
    use rand::Rng;

    /// Baseline strided single-qubit kernel.
    pub fn apply_1q(state: &mut StateVector, m: &Mat2, q: usize) {
        let stride = 1usize << q;
        let [[m00, m01], [m10, m11]] = m.0;
        let mut base = 0usize;
        while base < state.amps.len() {
            for off in base..base + stride {
                let i0 = off;
                let i1 = off + stride;
                let a0 = state.amps[i0];
                let a1 = state.amps[i1];
                state.amps[i0] = m00 * a0 + m01 * a1;
                state.amps[i1] = m10 * a0 + m11 * a1;
            }
            base += stride << 1;
        }
    }

    /// Baseline two-qubit kernel: scans all `2^n` indices, skipping the
    /// three quarters that are not an orbit base.
    pub fn apply_2q(state: &mut StateVector, m: &Mat4, q_hi: usize, q_lo: usize) {
        let bh = 1usize << q_hi;
        let bl = 1usize << q_lo;
        for i in 0..state.amps.len() {
            if i & bh != 0 || i & bl != 0 {
                continue;
            }
            let i00 = i;
            let i01 = i | bl;
            let i10 = i | bh;
            let i11 = i | bh | bl;
            let a = [
                state.amps[i00],
                state.amps[i01],
                state.amps[i10],
                state.amps[i11],
            ];
            for (row, idx) in [(0, i00), (1, i01), (2, i10), (3, i11)] {
                let mut acc = C64::ZERO;
                for (col, amp) in a.iter().enumerate() {
                    acc += m.0[row][col] * *amp;
                }
                state.amps[idx] = acc;
            }
        }
    }

    /// Baseline multi-controlled kernel: scans all `2^n` indices, skipping
    /// those whose control bits are not all set.
    pub fn apply_controlled_1q(
        state: &mut StateVector,
        m: &Mat2,
        controls: &[usize],
        target: usize,
    ) {
        let ctrl_mask: usize = controls.iter().map(|c| 1usize << c).sum();
        let tbit = 1usize << target;
        let [[m00, m01], [m10, m11]] = m.0;
        for i in 0..state.amps.len() {
            if i & tbit != 0 {
                continue;
            }
            if i & ctrl_mask != ctrl_mask {
                continue;
            }
            let i0 = i;
            let i1 = i | tbit;
            let a0 = state.amps[i0];
            let a1 = state.amps[i1];
            state.amps[i0] = m00 * a0 + m01 * a1;
            state.amps[i1] = m10 * a0 + m11 * a1;
        }
    }

    /// Baseline gate dispatch straight through the dense unitary, with no
    /// kernel specialisation.
    pub fn apply_gate(state: &mut StateVector, kind: &cqasm::GateKind, qubits: &[usize]) {
        assert_eq!(qubits.len(), kind.arity(), "operand count mismatch");
        match kind.unitary() {
            cqasm::GateUnitary::One(m) => apply_1q(state, &m, qubits[0]),
            cqasm::GateUnitary::Two(m) => apply_2q(state, &m, qubits[0], qubits[1]),
            cqasm::GateUnitary::ControlledControlled(m) => {
                apply_controlled_1q(state, &m, &qubits[..2], qubits[2])
            }
        }
    }

    /// Baseline marginal probability: filters all `2^n` indices.
    pub fn probability_one(state: &StateVector, q: usize) -> f64 {
        let mask = 1usize << q;
        state
            .amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Baseline sampling: linear scan of the running probability sum.
    pub fn sample_all<R: Rng + ?Sized>(state: &StateVector, rng: &mut R) -> u64 {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, a) in state.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i as u64;
            }
        }
        (state.amps.len() - 1) as u64
    }
}

#[cfg(test)]
mod par_min_qubits_tests {
    use super::*;

    #[test]
    fn valid_overrides_are_honoured() {
        assert_eq!(parse_par_min_qubits(Some("12")), 12);
        assert_eq!(parse_par_min_qubits(Some(" 0 ")), 0);
        assert_eq!(parse_par_min_qubits(Some("63")), 63);
    }

    #[test]
    fn invalid_values_fall_back_to_the_analytic_default() {
        assert_eq!(parse_par_min_qubits(None), PAR_MIN_QUBITS);
        assert_eq!(parse_par_min_qubits(Some("")), PAR_MIN_QUBITS);
        assert_eq!(parse_par_min_qubits(Some("lots")), PAR_MIN_QUBITS);
        assert_eq!(parse_par_min_qubits(Some("-3")), PAR_MIN_QUBITS);
        assert_eq!(parse_par_min_qubits(Some("64")), PAR_MIN_QUBITS);
        assert_eq!(parse_par_min_qubits(Some("18.5")), PAR_MIN_QUBITS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqasm::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zero_state_probabilities() {
        let s = StateVector::zero_state(3);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
        assert!((s.norm() - 1.0).abs() < 1e-12);
        assert_eq!(s.qubit_count(), 3);
    }

    #[test]
    fn basis_state_construction() {
        let s = StateVector::basis_state(3, 0b101);
        assert!((s.probability_of(0b101) - 1.0).abs() < 1e-12);
        assert!((s.probability_one(0) - 1.0).abs() < 1e-12);
        assert!(s.probability_one(1) < 1e-12);
        assert!((s.probability_one(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut s = StateVector::zero_state(1);
        s.apply_gate(&GateKind::H, &[0]);
        assert!((s.probability_of(0) - 0.5).abs() < 1e-12);
        assert!((s.probability_of(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ghz_state() {
        let mut s = StateVector::zero_state(4);
        s.apply_gate(&GateKind::H, &[0]);
        for q in 0..3 {
            s.apply_gate(&GateKind::Cnot, &[q, q + 1]);
        }
        assert!((s.probability_of(0b0000) - 0.5).abs() < 1e-12);
        assert!((s.probability_of(0b1111) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cnot_operand_order() {
        // control = q1 (value 1), target = q0.
        let mut s = StateVector::basis_state(2, 0b10);
        s.apply_gate(&GateKind::Cnot, &[1, 0]);
        assert!((s.probability_of(0b11) - 1.0).abs() < 1e-12);
        // control = q0 (value 0): nothing happens.
        let mut s = StateVector::basis_state(2, 0b10);
        s.apply_gate(&GateKind::Cnot, &[0, 1]);
        assert!((s.probability_of(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn toffoli_truth_table() {
        for c1 in 0..2u64 {
            for c2 in 0..2u64 {
                for t in 0..2u64 {
                    let basis = c1 | (c2 << 1) | (t << 2);
                    let mut s = StateVector::basis_state(3, basis);
                    s.apply_gate(&GateKind::Toffoli, &[0, 1, 2]);
                    let expect_t = if c1 == 1 && c2 == 1 { t ^ 1 } else { t };
                    let expect = c1 | (c2 << 1) | (expect_t << 2);
                    assert!(
                        (s.probability_of(expect) - 1.0).abs() < 1e-12,
                        "toffoli failed for basis {basis:03b}"
                    );
                }
            }
        }
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = StateVector::basis_state(2, 0b01);
        s.apply_gate(&GateKind::Swap, &[0, 1]);
        assert!((s.probability_of(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gates_preserve_norm() {
        let mut s = StateVector::zero_state(3);
        let seq: &[(GateKind, &[usize])] = &[
            (GateKind::H, &[0]),
            (GateKind::T, &[0]),
            (GateKind::Cnot, &[0, 1]),
            (GateKind::Rz(0.7), &[1]),
            (GateKind::Ry(1.1), &[2]),
            (GateKind::Toffoli, &[0, 1, 2]),
            (GateKind::Swap, &[0, 2]),
        ];
        for (g, qs) in seq {
            s.apply_gate(g, qs);
            assert!((s.norm() - 1.0).abs() < 1e-10, "norm drifted after {g}");
        }
    }

    #[test]
    fn measure_collapses() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&GateKind::H, &[0]);
        s.apply_gate(&GateKind::Cnot, &[0, 1]);
        let mut r = rng();
        let m0 = s.measure(0, &mut r);
        // After measuring one half of a Bell pair, the other is determined.
        let p1 = s.probability_one(1);
        if m0 {
            assert!((p1 - 1.0).abs() < 1e-12);
        } else {
            assert!(p1 < 1e-12);
        }
        assert!((s.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn measure_all_statistics() {
        let mut r = rng();
        let mut ones = 0;
        for _ in 0..1000 {
            let mut s = StateVector::zero_state(1);
            s.apply_gate(&GateKind::H, &[0]);
            if s.measure_all(&mut r) == 1 {
                ones += 1;
            }
        }
        assert!((400..600).contains(&ones), "got {ones} ones out of 1000");
    }

    #[test]
    fn reset_always_gives_zero() {
        let mut r = rng();
        for _ in 0..20 {
            let mut s = StateVector::zero_state(1);
            s.apply_gate(&GateKind::H, &[0]);
            s.reset(0, &mut r);
            assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fidelity_of_identical_and_orthogonal() {
        let a = StateVector::basis_state(2, 0);
        let b = StateVector::basis_state(2, 3);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
        assert!(a.fidelity(&b) < 1e-12);
    }

    #[test]
    fn expectation_z_values() {
        let s = StateVector::basis_state(1, 0);
        assert!((s.expectation_z(0) - 1.0).abs() < 1e-12);
        let s = StateVector::basis_state(1, 1);
        assert!((s.expectation_z(0) + 1.0).abs() < 1e-12);
        let mut s = StateVector::zero_state(1);
        s.apply_gate(&GateKind::H, &[0]);
        assert!(s.expectation_z(0).abs() < 1e-12);
    }

    #[test]
    fn expectation_diagonal_counts_ones() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&GateKind::H, &[0]);
        s.apply_gate(&GateKind::H, &[1]);
        let avg_ones = s.expectation_diagonal(|b| b.count_ones() as f64);
        assert!((avg_ones - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_oracle_flips_marked_state() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(&GateKind::H, &[0]);
        s.apply_gate(&GateKind::H, &[1]);
        s.apply_phase_if(C64::real(-1.0), |b| b == 0b11);
        assert!(s.amplitudes()[3].re < 0.0);
        assert!(s.amplitudes()[0].re > 0.0);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controlled_1q_matches_cnot() {
        let x = match GateKind::X.unitary() {
            cqasm::GateUnitary::One(m) => m,
            _ => unreachable!(),
        };
        for basis in 0..4u64 {
            let mut a = StateVector::basis_state(2, basis);
            let mut b = a.clone();
            a.apply_gate(&GateKind::Cnot, &[0, 1]);
            b.apply_controlled_1q(&x, &[0], 1);
            assert!((a.fidelity(&b) - 1.0).abs() < 1e-12, "basis {basis}");
        }
    }

    #[test]
    fn from_amplitudes_normalises() {
        let s = StateVector::from_amplitudes(vec![C64::real(3.0), C64::real(4.0)]);
        assert!((s.norm() - 1.0).abs() < 1e-12);
        assert!((s.probability_of(0) - 0.36).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_amplitudes_rejects_bad_length() {
        let _ = StateVector::from_amplitudes(vec![C64::ONE; 3]);
    }

    /// A dense random state for kernel-equivalence checks.
    fn random_state(n: usize, seed: u64) -> StateVector {
        let mut r = StdRng::seed_from_u64(seed);
        let amps: Vec<C64> = (0..1usize << n)
            .map(|_| C64::new(r.gen::<f64>() - 0.5, r.gen::<f64>() - 0.5))
            .collect();
        StateVector::from_amplitudes(amps)
    }

    fn assert_states_close(a: &StateVector, b: &StateVector, what: &str) {
        for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
            assert!(
                (*x - *y).norm_sqr() < 1e-20,
                "{what}: amplitude {i} differs: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn orbit_kernels_match_reference_on_random_states() {
        let n = 6;
        let gates: &[(GateKind, &[usize])] = &[
            (GateKind::H, &[3]),
            (GateKind::X, &[0]),
            (GateKind::Y, &[5]),
            (GateKind::Z, &[2]),
            (GateKind::T, &[4]),
            (GateKind::Rz(0.81), &[1]),
            (GateKind::Rx(-1.3), &[2]),
            (GateKind::Cnot, &[4, 1]),
            (GateKind::Cnot, &[1, 4]),
            (GateKind::Cz, &[0, 5]),
            (GateKind::Swap, &[3, 0]),
            (GateKind::Cr(0.4), &[5, 2]),
            (GateKind::CRk(3), &[2, 5]),
            (GateKind::Toffoli, &[5, 0, 3]),
        ];
        for (seed, (g, qs)) in gates.iter().enumerate() {
            let mut fast = random_state(n, seed as u64);
            let mut slow = fast.clone();
            fast.apply_gate(g, qs);
            reference::apply_gate(&mut slow, g, qs);
            assert_states_close(&fast, &slow, &format!("{g} on {qs:?}"));
        }
    }

    #[test]
    fn threaded_kernels_are_bit_identical_to_serial() {
        // Force the threaded path on a small register (the automatic
        // dispatch would stay serial below PAR_MIN_QUBITS) and require
        // exact equality: the per-amplitude arithmetic is identical.
        let h = match GateKind::H.unitary() {
            cqasm::GateUnitary::One(m) => m,
            _ => unreachable!(),
        };
        let cnot = match GateKind::Cnot.unitary() {
            cqasm::GateUnitary::Two(m) => m,
            _ => unreachable!(),
        };
        for threads in [2, 3, 8] {
            let mut a = random_state(7, 99);
            let mut b = a.clone();
            a.apply_1q(&h, 4);
            par::apply_1q_threaded(&mut b, &h, 4, threads);
            assert_eq!(a, b, "1q, {threads} threads");

            let mut a = random_state(7, 100);
            let mut b = a.clone();
            a.apply_2q(&cnot, 6, 2);
            par::apply_2q_threaded(&mut b, &cnot, 6, 2, threads);
            assert_eq!(a, b, "2q, {threads} threads");
        }
    }

    #[test]
    fn fused_diag_matches_sequential_diagonal_gates() {
        // t q2; rz q0; cz q0,q2; crk q2,q0 fused into one diagonal table
        // must match the sequential gates exactly in structure (entrywise
        // products commute with the sweep order).
        let mut seq = random_state(5, 7);
        let mut fused = seq.clone();
        seq.apply_gate(&GateKind::T, &[2]);
        seq.apply_gate(&GateKind::Rz(0.43), &[0]);
        seq.apply_gate(&GateKind::Cz, &[0, 2]);
        seq.apply_gate(&GateKind::CRk(2), &[2, 0]);

        // Build the table by hand over support [0, 2] (bit 0 = q0).
        let (t0, t1) = match GateKind::T.kernel() {
            KernelClass::Diagonal1q(a, b) => (a, b),
            other => panic!("unexpected {other:?}"),
        };
        let (r0, r1) = match GateKind::Rz(0.43).kernel() {
            KernelClass::Diagonal1q(a, b) => (a, b),
            other => panic!("unexpected {other:?}"),
        };
        let crk = match GateKind::CRk(2).kernel() {
            KernelClass::ControlledPhase(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        let mut entries = vec![C64::ONE; 4];
        for (p, e) in entries.iter_mut().enumerate() {
            *e *= if p >> 1 & 1 == 1 { t1 } else { t0 };
            *e *= if p & 1 == 1 { r1 } else { r0 };
            if p == 3 {
                *e *= -C64::ONE * crk;
            }
        }
        fused.apply_fused_diag(&FusedDiagonal { entries }, &[0, 2]);
        assert_states_close(&seq, &fused, "fused diagonal");
    }

    #[test]
    fn fused_block_applies_lsb_first_convention() {
        // A block that is CNOT with control = local bit 0 = qubits[0].
        let mut m = vec![C64::ZERO; 16];
        // |c t> with c = bit 0: 00->00, 01(c=1)->11, 10->10, 11->01.
        m[0] = C64::ONE; // col 0 -> row 0
        m[3 * 4 + 1] = C64::ONE; // col 1 -> row 3
        m[2 * 4 + 2] = C64::ONE; // col 2 -> row 2
        m[4 + 3] = C64::ONE; // col 3 -> row 1
        let block = BlockUnitary { k: 2, m };
        for basis in 0..8u64 {
            let mut a = StateVector::basis_state(3, basis);
            let mut b = a.clone();
            a.apply_gate(&GateKind::Cnot, &[2, 1]);
            b.apply_block(&block, &[2, 1]);
            assert_states_close(&a, &b, &format!("block cnot, basis {basis}"));
        }
    }

    #[test]
    fn threaded_fused_kernels_are_bit_identical_to_serial() {
        let tof = match GateKind::Toffoli.kernel() {
            KernelClass::ControlledControlled(m) => m,
            other => panic!("unexpected {other:?}"),
        };
        let diag = FusedDiagonal {
            entries: vec![
                C64::ONE,
                C64::I,
                C64::cis(0.3),
                -C64::ONE,
                C64::cis(-1.1),
                C64::ONE,
                C64::I,
                C64::cis(2.0),
            ],
        };
        let block = {
            // Any unitary works for the identity-of-arithmetic check; build
            // one from columns of gate applications on basis states.
            let mut m = vec![C64::ZERO; 64];
            for c in 0..8 {
                let mut col = StateVector::basis_state(3, c as u64);
                col.apply_gate(&GateKind::H, &[0]);
                col.apply_gate(&GateKind::Cnot, &[0, 1]);
                col.apply_gate(&GateKind::T, &[2]);
                for (r, a) in col.amplitudes().iter().enumerate() {
                    m[r * 8 + c] = *a;
                }
            }
            BlockUnitary { k: 3, m }
        };
        for threads in [2, 3, 8] {
            let mut a = random_state(7, 101);
            let mut b = a.clone();
            a.apply_controlled_1q(&tof, &[1, 5], 3);
            par::apply_controlled_1q_threaded(&mut b, &tof, &[1, 5], 3, threads);
            assert_eq!(a, b, "controlled 1q, {threads} threads");

            let mut a = random_state(7, 102);
            let mut b = a.clone();
            a.apply_fused_diag(&diag, &[2, 4, 6]);
            par::apply_fused_diag_threaded(&mut b, &diag, &[2, 4, 6], threads);
            assert_eq!(a, b, "fused diag, {threads} threads");

            let mut a = random_state(7, 103);
            let mut b = a.clone();
            a.apply_block(&block, &[5, 0, 3]);
            par::apply_block_threaded(&mut b, &block, &[5, 0, 3], threads);
            assert_eq!(a, b, "fused block, {threads} threads");
        }
    }

    #[test]
    fn probability_one_matches_reference() {
        let s = random_state(6, 17);
        for q in 0..6 {
            let fast = s.probability_one(q);
            let slow = reference::probability_one(&s, q);
            assert!((fast - slow).abs() < 1e-12, "qubit {q}: {fast} vs {slow}");
        }
    }

    #[test]
    fn binary_search_sampling_matches_linear_scan() {
        let mut s = StateVector::zero_state(5);
        for q in 0..5 {
            s.apply_gate(&GateKind::H, &[q]);
            s.apply_gate(&GateKind::T, &[q]);
        }
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..200 {
            assert_eq!(s.sample_all(&mut r1), reference::sample_all(&s, &mut r2));
        }
    }

    #[test]
    fn cumulative_table_handles_edge_draws() {
        let s = StateVector::basis_state(2, 0b10);
        let cum = s.cumulative_probabilities();
        assert_eq!(StateVector::sample_from_cumulative(&cum, 0.0), 0b10);
        // Draws at or beyond the total mass clamp to the last basis state
        // with any probability (here exactly the last nonzero entry works
        // out to the final index by the partition rule).
        assert_eq!(StateVector::sample_from_cumulative(&cum, 0.999999), 0b10);
    }

    #[test]
    fn bit_insertion_expands_correctly() {
        assert_eq!(insert_bit(0b101, 1), 0b1001);
        assert_eq!(insert_bit(0b101, 0), 0b1010);
        assert_eq!(insert_two_bits(0b11, 0, 2), 0b1010);
        // Every expanded index has the inserted bits clear and the mapping
        // is injective.
        let mut seen = std::collections::HashSet::new();
        for k in 0..16usize {
            let i = insert_two_bits(k, 1, 3);
            assert_eq!(i & 0b1010, 0, "k={k} -> {i:b}");
            assert!(seen.insert(i));
        }
    }
}
