//! The heterogeneous system model of Fig 1: a classical host CPU
//! delegating kernels to a pool of accelerators.
//!
//! "The classical host processor keeps the control over the total system
//! and delegates the execution of certain parts to the available
//! accelerators" — including the paper's two new co-processor classes:
//! the quantum-gate accelerator and the quantum annealer.

use crate::stack::{FullStack, StackError};
use annealer::{Ising, SampleSet, Sampler};
use openql::QuantumProgram;
use qxsim::ShotHistogram;
use std::fmt;

/// Accelerator classes attached to the host (Fig 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceleratorKind {
    /// Field-programmable gate array.
    Fpga,
    /// Graphics processing unit.
    Gpu,
    /// Neural processing unit (e.g. a TPU).
    Npu,
    /// Gate-model quantum accelerator.
    QuantumGate,
    /// Quantum annealer.
    QuantumAnnealer,
}

impl fmt::Display for AcceleratorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AcceleratorKind::Fpga => "fpga",
            AcceleratorKind::Gpu => "gpu",
            AcceleratorKind::Npu => "npu",
            AcceleratorKind::QuantumGate => "quantum-gate",
            AcceleratorKind::QuantumAnnealer => "quantum-annealer",
        };
        f.write_str(s)
    }
}

/// A computational kernel the host may offload.
#[derive(Debug, Clone)]
pub enum KernelPayload {
    /// A gate-model circuit with a shot budget.
    GateCircuit {
        /// The quantum program.
        program: QuantumProgram,
        /// Shots to execute.
        shots: u64,
    },
    /// An Ising/QUBO sampling task.
    Anneal {
        /// The spin model.
        ising: Ising,
        /// Reads to draw.
        reads: u64,
    },
}

/// What an offloaded kernel returned.
#[derive(Debug, Clone)]
pub enum KernelResult {
    /// Measurement histogram from a gate-model run.
    Histogram(ShotHistogram),
    /// Sample set from an annealing run.
    Samples(SampleSet),
}

/// Something the host can delegate kernels to.
pub trait Accelerator {
    /// The accelerator class.
    fn kind(&self) -> AcceleratorKind;
    /// Human-readable name.
    fn name(&self) -> String;
    /// Whether this accelerator can execute the payload.
    fn accepts(&self, payload: &KernelPayload) -> bool;
    /// Executes a kernel.
    ///
    /// # Errors
    ///
    /// Propagates any stack-layer failure.
    fn execute(&mut self, payload: &KernelPayload) -> Result<KernelResult, StackError>;
}

/// The gate-model quantum accelerator: a [`FullStack`] behind the
/// accelerator interface.
#[derive(Debug, Clone)]
pub struct QuantumGateAccelerator {
    stack: FullStack,
}

impl QuantumGateAccelerator {
    /// Wraps a configured stack.
    pub fn new(stack: FullStack) -> Self {
        QuantumGateAccelerator { stack }
    }
}

impl Accelerator for QuantumGateAccelerator {
    fn kind(&self) -> AcceleratorKind {
        AcceleratorKind::QuantumGate
    }

    fn name(&self) -> String {
        format!("quantum-gate({})", self.stack.platform().name())
    }

    fn accepts(&self, payload: &KernelPayload) -> bool {
        match payload {
            KernelPayload::GateCircuit { program, .. } => {
                program.qubit_count() <= self.stack.platform().qubit_count()
            }
            KernelPayload::Anneal { .. } => false,
        }
    }

    fn execute(&mut self, payload: &KernelPayload) -> Result<KernelResult, StackError> {
        match payload {
            KernelPayload::GateCircuit { program, shots } => {
                let run = self.stack.execute(program, *shots)?;
                Ok(KernelResult::Histogram(run.histogram))
            }
            KernelPayload::Anneal { .. } => {
                unreachable!("host checks accepts() before execute()")
            }
        }
    }
}

/// The annealing accelerator: any [`Sampler`] behind the interface.
pub struct QuantumAnnealerAccelerator<S: Sampler> {
    sampler: S,
    capacity: usize,
}

impl<S: Sampler> QuantumAnnealerAccelerator<S> {
    /// Wraps a sampler with a variable-count capacity.
    pub fn new(sampler: S, capacity: usize) -> Self {
        QuantumAnnealerAccelerator { sampler, capacity }
    }
}

impl<S: Sampler> Accelerator for QuantumAnnealerAccelerator<S> {
    fn kind(&self) -> AcceleratorKind {
        AcceleratorKind::QuantumAnnealer
    }

    fn name(&self) -> String {
        format!("quantum-annealer({})", self.sampler.name())
    }

    fn accepts(&self, payload: &KernelPayload) -> bool {
        match payload {
            KernelPayload::Anneal { ising, .. } => ising.len() <= self.capacity,
            KernelPayload::GateCircuit { .. } => false,
        }
    }

    fn execute(&mut self, payload: &KernelPayload) -> Result<KernelResult, StackError> {
        match payload {
            KernelPayload::Anneal { ising, reads } => {
                Ok(KernelResult::Samples(self.sampler.sample(ising, *reads)))
            }
            KernelPayload::GateCircuit { .. } => {
                unreachable!("host checks accepts() before execute()")
            }
        }
    }
}

/// Errors from the host's delegation logic.
#[derive(Debug)]
pub enum OffloadError {
    /// No attached accelerator accepts the payload.
    NoAccelerator,
    /// The chosen accelerator failed.
    Failed(StackError),
}

impl fmt::Display for OffloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffloadError::NoAccelerator => write!(f, "no accelerator accepts this kernel"),
            OffloadError::Failed(e) => write!(f, "accelerator failed: {e}"),
        }
    }
}

impl std::error::Error for OffloadError {}

/// The classical host CPU controlling the heterogeneous system.
#[derive(Default)]
pub struct HostCpu {
    accelerators: Vec<Box<dyn Accelerator>>,
}

impl HostCpu {
    /// A host with no accelerators attached.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an accelerator.
    pub fn attach(&mut self, accelerator: Box<dyn Accelerator>) -> &mut Self {
        self.accelerators.push(accelerator);
        self
    }

    /// Names and kinds of attached accelerators.
    pub fn inventory(&self) -> Vec<(AcceleratorKind, String)> {
        self.accelerators
            .iter()
            .map(|a| (a.kind(), a.name()))
            .collect()
    }

    /// Delegates a kernel to the first accelerator that accepts it — the
    /// host "keeps the control over the total system".
    ///
    /// # Errors
    ///
    /// [`OffloadError::NoAccelerator`] if nothing accepts the payload.
    pub fn offload(&mut self, payload: &KernelPayload) -> Result<KernelResult, OffloadError> {
        for acc in &mut self.accelerators {
            if acc.accepts(payload) {
                return acc.execute(payload).map_err(OffloadError::Failed);
            }
        }
        Err(OffloadError::NoAccelerator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annealer::SimulatedAnnealer;
    use openql::Kernel;

    fn bell_payload() -> KernelPayload {
        let mut k = Kernel::new("bell", 2);
        k.h(0).cnot(0, 1).measure_all();
        let mut p = QuantumProgram::new("bell", 2);
        p.add_kernel(k);
        KernelPayload::GateCircuit {
            program: p,
            shots: 100,
        }
    }

    fn chain_payload() -> KernelPayload {
        let mut m = Ising::new(4);
        for i in 0..3 {
            m.add_coupling(i, i + 1, -1.0);
        }
        KernelPayload::Anneal { ising: m, reads: 5 }
    }

    fn host() -> HostCpu {
        let mut h = HostCpu::new();
        h.attach(Box::new(QuantumGateAccelerator::new(FullStack::perfect(4))));
        h.attach(Box::new(QuantumAnnealerAccelerator::new(
            SimulatedAnnealer::new(),
            8192,
        )));
        h
    }

    #[test]
    fn host_routes_gate_kernels_to_gate_accelerator() {
        let mut h = host();
        match h.offload(&bell_payload()).unwrap() {
            KernelResult::Histogram(hist) => {
                assert_eq!(hist.shots(), 100);
                assert_eq!(hist.count(0b01) + hist.count(0b10), 0);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn host_routes_anneal_kernels_to_annealer() {
        let mut h = host();
        match h.offload(&chain_payload()).unwrap() {
            KernelResult::Samples(set) => {
                assert_eq!(set.lowest_energy(), Some(-3.0));
            }
            other => panic!("expected samples, got {other:?}"),
        }
    }

    #[test]
    fn unservable_kernel_is_rejected() {
        let mut h = HostCpu::new();
        h.attach(Box::new(QuantumGateAccelerator::new(FullStack::perfect(1))));
        let err = h.offload(&chain_payload()).unwrap_err();
        assert!(matches!(err, OffloadError::NoAccelerator));
        // Also when the circuit is too big for the attached device.
        let err = h.offload(&bell_payload()).unwrap_err();
        assert!(matches!(err, OffloadError::NoAccelerator));
    }

    #[test]
    fn inventory_lists_all() {
        let h = host();
        let inv = h.inventory();
        assert_eq!(inv.len(), 2);
        assert_eq!(inv[0].0, AcceleratorKind::QuantumGate);
        assert_eq!(inv[1].0, AcceleratorKind::QuantumAnnealer);
    }
}
