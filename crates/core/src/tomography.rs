//! Single-qubit state tomography.
//!
//! The perfect-qubit track exists so end-users can "verify and check the
//! algorithm that they are working on and test if the computed results
//! have a meaning" (§2.1). Tomography is the verification primitive for
//! *states*: measure a prepared qubit in the X, Y and Z bases over many
//! shots, estimate the Bloch vector, and compare with the ideal state.

use crate::stack::{FullStack, StackError};
use cqasm::GateKind;
use openql::{Kernel, QuantumProgram};

/// An estimated single-qubit state as a Bloch vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlochVector {
    /// `<X>` component.
    pub x: f64,
    /// `<Y>` component.
    pub y: f64,
    /// `<Z>` component.
    pub z: f64,
}

impl BlochVector {
    /// Euclidean length (1 for pure states, < 1 for mixed estimates).
    pub fn length(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Fidelity with another Bloch vector's state:
    /// `F = (1 + a . b) / 2` for one pure and one arbitrary state.
    pub fn fidelity(&self, other: &BlochVector) -> f64 {
        0.5 * (1.0 + self.x * other.x + self.y * other.y + self.z * other.z)
    }
}

/// A preparation circuit under tomography: a closure appending gates that
/// prepare the state of `qubit` inside a kernel.
pub type Preparation<'a> = &'a dyn Fn(&mut Kernel);

/// Runs single-qubit tomography of the state prepared by `prepare` on
/// qubit 0, using `shots` per basis on the given stack.
///
/// # Errors
///
/// Propagates stack failures.
pub fn tomography_qubit(
    stack: &FullStack,
    prepare: Preparation<'_>,
    shots: u64,
) -> Result<BlochVector, StackError> {
    // Z basis: measure directly. X basis: H then measure.
    // Y basis: S† then H then measure.
    let run_basis = |basis: &[GateKind]| -> Result<f64, StackError> {
        let mut k = Kernel::new("tomo", 1);
        prepare(&mut k);
        for g in basis {
            k.gate(*g, &[0]);
        }
        k.measure(0);
        let mut p = QuantumProgram::new("tomo", 1);
        p.add_kernel(k);
        let hist = stack.execute(&p, shots)?.histogram;
        // <P> = P(0) - P(1).
        Ok(hist.probability(0) - hist.probability(1))
    };
    Ok(BlochVector {
        x: run_basis(&[GateKind::H])?,
        y: run_basis(&[GateKind::Sdag, GateKind::H])?,
        z: run_basis(&[])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubits::QubitKind;

    fn stack() -> FullStack {
        FullStack::perfect(1).with_seed(99)
    }

    #[test]
    fn tomography_of_zero_state() {
        let b = tomography_qubit(&stack(), &|_k| {}, 3000).unwrap();
        assert!(b.x.abs() < 0.05, "x {}", b.x);
        assert!(b.y.abs() < 0.05, "y {}", b.y);
        assert!((b.z - 1.0).abs() < 0.02, "z {}", b.z);
    }

    #[test]
    fn tomography_of_plus_state() {
        let b = tomography_qubit(
            &stack(),
            &|k| {
                k.h(0);
            },
            3000,
        )
        .unwrap();
        assert!((b.x - 1.0).abs() < 0.02, "x {}", b.x);
        assert!(b.y.abs() < 0.05);
        assert!(b.z.abs() < 0.05);
    }

    #[test]
    fn tomography_of_y_eigenstate() {
        let b = tomography_qubit(
            &stack(),
            &|k| {
                k.h(0).s(0);
            },
            3000,
        )
        .unwrap();
        assert!((b.y - 1.0).abs() < 0.02, "y {}", b.y);
        assert!((b.length() - 1.0).abs() < 0.05);
    }

    #[test]
    fn tomography_of_rotated_state() {
        let theta = 0.8f64;
        let b = tomography_qubit(
            &stack(),
            &|k| {
                k.ry(0, theta);
            },
            4000,
        )
        .unwrap();
        assert!((b.x - theta.sin()).abs() < 0.05, "x {}", b.x);
        assert!((b.z - theta.cos()).abs() < 0.05, "z {}", b.z);
    }

    #[test]
    fn noise_shrinks_the_bloch_vector() {
        let noisy = FullStack::perfect(1)
            .with_qubits(QubitKind::Realistic {
                p1: 0.05,
                p2: 0.0,
                readout: 0.0,
            })
            .with_seed(7);
        // Use a rotation preparation: the compiler cannot cancel it
        // against the tomography basis change, so every circuit carries
        // noisy gates.
        let pure = tomography_qubit(
            &stack(),
            &|k| {
                k.ry(0, 1.1);
            },
            4000,
        )
        .unwrap();
        let mixed = tomography_qubit(
            &noisy,
            &|k| {
                k.ry(0, 1.1);
            },
            4000,
        )
        .unwrap();
        assert!(
            mixed.length() < pure.length() - 0.02,
            "noise must shrink: {} vs {}",
            mixed.length(),
            pure.length()
        );
    }

    #[test]
    fn fidelity_between_estimates() {
        let plus = BlochVector {
            x: 1.0,
            y: 0.0,
            z: 0.0,
        };
        let minus = BlochVector {
            x: -1.0,
            y: 0.0,
            z: 0.0,
        };
        let zero = BlochVector {
            x: 0.0,
            y: 0.0,
            z: 1.0,
        };
        assert!((plus.fidelity(&plus) - 1.0).abs() < 1e-12);
        assert!(plus.fidelity(&minus).abs() < 1e-12);
        assert!((plus.fidelity(&zero) - 0.5).abs() < 1e-12);
    }
}
