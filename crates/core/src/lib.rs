//! # qca-core — the full-stack quantum accelerator architecture
//!
//! The top-level crate of this reproduction of Bertels et al., *"Quantum
//! Computer Architecture: Towards Full-Stack Quantum Accelerators"* (DATE
//! 2020). The paper's contribution is an *architecture*: a quantum
//! computer is a co-processor behind a classical host, built as a full
//! stack of layers. This crate wires the layer crates together:
//!
//! | Layer | Crate |
//! |-------|-------|
//! | Application / accelerator logic | [`qgs`], [`optim`] |
//! | Quantum language + compiler | [`openql`] |
//! | Common assembly | [`cqasm`] |
//! | Executable assembly + micro-architecture | [`eqasm`] |
//! | Simulator (perfect/realistic/real qubits) | [`qxsim`] |
//! | Error correction substrate | [`qec`] |
//! | Annealing substrate | [`annealer`] |
//!
//! and adds the architecture-level pieces:
//!
//! - [`QubitKind`] — the real / realistic / perfect qubit taxonomy (§2.1);
//! - [`FullStack`] — application → OpenQL → cQASM → (QX | eQASM →
//!   micro-architecture) execution (Fig 2/3);
//! - [`HostCpu`] + [`Accelerator`] — the heterogeneous system of Fig 1;
//! - [`amdahl`] — the acceleration model;
//! - [`rb`] — the randomised-benchmarking workloads of §3.1;
//! - [`runtime`] — in-accelerator measurement aggregation (§3.2).
//!
//! # Example: the same Bell program on two stacks
//!
//! ```
//! use openql::{Kernel, QuantumProgram};
//! use qca_core::{ExecutionBackend, FullStack, QubitKind};
//!
//! # fn main() -> Result<(), qca_core::StackError> {
//! let mut k = Kernel::new("bell", 2);
//! k.h(0).cnot(0, 1).measure_all();
//! let mut program = QuantumProgram::new("demo", 2);
//! program.add_kernel(k);
//!
//! // Application development: perfect qubits, QX simulator.
//! let dev = FullStack::perfect(2).execute(&program, 100)?;
//! assert_eq!(dev.histogram.count(0b01) + dev.histogram.count(0b10), 0);
//!
//! // Experimental control: eQASM micro-architecture with pulse trace.
//! let lab = FullStack::superconducting(1, 2)
//!     .with_qubits(QubitKind::Perfect)
//!     .execute(&program, 10)?;
//! assert!(lab.pulses.expect("pulse trace").len() > 0);
//! # Ok(())
//! # }
//! ```

// Library paths must return typed errors, never abort (CI gates these
// lints); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod accelerator;
pub mod amdahl;
pub mod chaos;
pub mod conform;
pub mod qubits;
pub mod rb;
pub mod runtime;
pub mod shor;
pub mod stack;
pub mod tomography;

/// Stack-wide observability: hierarchical spans, counters/histograms,
/// and JSON / Chrome-trace exporters (re-export of the bottom-layer
/// `qca-telemetry` crate, which every stack layer shares).
pub use qca_telemetry as telemetry;

pub use accelerator::{
    Accelerator, AcceleratorKind, HostCpu, KernelPayload, KernelResult, OffloadError,
    QuantumAnnealerAccelerator, QuantumGateAccelerator,
};
pub use chaos::{
    run_campaign, run_campaign_traced, run_case, CampaignReport, CaseReport, Mutation, Outcome,
};
pub use conform::{generate_case, reference_histogram, CaseShape, ConformCase};
pub use qubits::QubitKind;
pub use stack::{ExecutionBackend, FullStack, StackError, StackRun};
pub use telemetry::Telemetry;
pub use tomography::{tomography_qubit, BlochVector};
