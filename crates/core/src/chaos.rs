//! Seeded fault-injection campaigns across the full stack.
//!
//! Robustness of the paper's stack is an architectural property: every
//! layer (cQASM parser, OpenQL passes, eQASM backend, micro-architecture,
//! QX executor) must turn malformed input into a *typed error* and
//! degraded conditions into *degraded-but-valid results* — never into an
//! abort. This module hunts violations by construction: it generates
//! random cQASM programs, mutates them (operand corruption, truncation,
//! bad angles, unknown gates and error models, token garbling, huge
//! counts) or injects executor faults (shot budgets, mid-run kernel
//! failure), and drives each case through the whole pipeline under
//! `catch_unwind`.
//!
//! Campaigns are bit-reproducible: every case's behaviour is a pure
//! function of its seed, so any failure found by
//! [`run_campaign`] replays exactly via [`run_case`] (the `chaos` bin
//! target wraps both).

use cqasm::Program;
use eqasm::{translate, MicroArchitecture, QxDevice};
use openql::{Compiler, CompilerOptions, Platform};
use qca_telemetry::Telemetry;
use qxsim::{FaultInjection, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Multiplier deriving case `i`'s seed from the campaign seed (the same
/// golden-ratio stride the executor uses for per-shot streams).
pub const CASE_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The fault a chaos case injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Control case: no fault. Must end `Ok`.
    None,
    /// A qubit operand is replaced with an out-of-range index.
    CorruptOperand,
    /// The program text is cut at a random byte.
    Truncate,
    /// An angle becomes `nan`, `inf`, garbage or an overflow.
    BadAngle,
    /// An unknown gate mnemonic is inserted.
    UnknownGate,
    /// The `error_model` directive names an unknown model or bad params.
    BadErrorModel,
    /// One random byte is replaced with a random punctuation byte.
    GarbleToken,
    /// A random line is duplicated verbatim.
    DuplicateLine,
    /// A huge `wait` count or subcircuit iteration count is inserted.
    HugeCounts,
    /// Executor fault: the shot budget is cut below the requested shots.
    ExecutorBudget,
    /// Executor fault: a mid-run shot fails with a kernel error.
    ExecutorFailShot,
}

impl Mutation {
    /// A stable lower-case name, used as the telemetry histogram label.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::CorruptOperand => "corrupt-operand",
            Mutation::Truncate => "truncate",
            Mutation::BadAngle => "bad-angle",
            Mutation::UnknownGate => "unknown-gate",
            Mutation::BadErrorModel => "bad-error-model",
            Mutation::GarbleToken => "garble-token",
            Mutation::DuplicateLine => "duplicate-line",
            Mutation::HugeCounts => "huge-counts",
            Mutation::ExecutorBudget => "executor-budget",
            Mutation::ExecutorFailShot => "executor-fail-shot",
        }
    }
}

/// All mutations, in the order the case RNG indexes them.
pub const ALL_MUTATIONS: [Mutation; 11] = [
    Mutation::None,
    Mutation::CorruptOperand,
    Mutation::Truncate,
    Mutation::BadAngle,
    Mutation::UnknownGate,
    Mutation::BadErrorModel,
    Mutation::GarbleToken,
    Mutation::DuplicateLine,
    Mutation::HugeCounts,
    Mutation::ExecutorBudget,
    Mutation::ExecutorFailShot,
];

/// How one case ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The pipeline completed with a (possibly degraded) histogram.
    Ok {
        /// Shots actually recorded (less than requested when a shot
        /// budget truncated the run).
        shots: u64,
    },
    /// A layer rejected the case with a typed error — the designed
    /// behaviour for malformed input.
    TypedError(String),
    /// A layer panicked. The bug class this harness exists to find.
    Panic(String),
}

/// One executed chaos case, sufficient to reproduce it.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Case index within its campaign (0 for direct replays).
    pub index: u64,
    /// The case seed; [`run_case`] with this seed replays it exactly.
    pub seed: u64,
    /// The injected fault.
    pub mutation: Mutation,
    /// The (mutated) cQASM source the pipeline consumed.
    pub source: String,
    /// How it ended.
    pub outcome: Outcome,
}

/// Aggregate result of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign seed.
    pub seed: u64,
    /// Cases executed.
    pub cases: u64,
    /// Cases that completed with a valid histogram.
    pub ok: u64,
    /// Cases rejected with a typed error.
    pub typed_errors: u64,
    /// Cases that panicked, with full reproduction info. A robust stack
    /// keeps this empty.
    pub panics: Vec<CaseReport>,
}

impl CampaignReport {
    /// Whether every case ended in `Ok` or a typed error.
    pub fn is_clean(&self) -> bool {
        self.panics.is_empty()
    }
}

/// Runs `cases` chaos cases derived from `seed`. Panic-hook output is
/// suppressed for the duration (caught panics are *data* here, not
/// crashes worth a backtrace on stderr).
pub fn run_campaign(seed: u64, cases: u64) -> CampaignReport {
    run_campaign_traced(seed, cases, &qca_telemetry::Telemetry::disabled())
}

/// [`run_campaign`] under a telemetry context: records the campaign span
/// (category `chaos`), cases run, the mutation-kind histogram
/// (`chaos.mutations`), outcomes (`chaos.outcomes`), and typed-error
/// failures per stack layer (`chaos.typed_errors_by_layer`, keyed by the
/// layer prefix of the error — `parse`, `compile`, `translate`,
/// `translate-verify`, `execute`, `simulate`).
pub fn run_campaign_traced(seed: u64, cases: u64, telemetry: &Telemetry) -> CampaignReport {
    let _span = telemetry.span("chaos", "campaign");
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut report = CampaignReport {
        seed,
        cases,
        ok: 0,
        typed_errors: 0,
        panics: Vec::new(),
    };
    for i in 0..cases {
        let case_seed = seed.wrapping_add(i.wrapping_mul(CASE_SEED_STRIDE));
        let mut case = run_case(case_seed);
        case.index = i;
        telemetry.incr("chaos.cases", 1);
        telemetry.incr_labeled("chaos.mutations", case.mutation.name(), 1);
        match &case.outcome {
            Outcome::Ok { .. } => {
                telemetry.incr_labeled("chaos.outcomes", "ok", 1);
                report.ok += 1;
            }
            Outcome::TypedError(msg) => {
                telemetry.incr_labeled("chaos.outcomes", "typed-error", 1);
                telemetry.incr_labeled("chaos.typed_errors_by_layer", error_layer(msg), 1);
                report.typed_errors += 1;
            }
            Outcome::Panic(_) => {
                telemetry.incr_labeled("chaos.outcomes", "panic", 1);
                report.panics.push(case);
            }
        }
    }
    std::panic::set_hook(prev_hook);
    report
}

/// The stack layer a typed-error message came from: its `layer:` prefix
/// (every error [`drive_stack`] folds is prefixed with the layer name).
fn error_layer(message: &str) -> &str {
    match message.split_once(':') {
        Some((layer, _)) => layer,
        None => "unknown",
    }
}

/// Runs the single chaos case identified by `seed` (deterministic; the
/// campaign derives per-case seeds from its own seed, and any failing
/// case replays bit-for-bit from the seed it reports).
pub fn run_case(seed: u64) -> CaseReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = generate_program(&mut rng);
    let mutation = ALL_MUTATIONS[rng.gen_range(0..ALL_MUTATIONS.len())];
    let source = mutate_source(&base, mutation, &mut rng);
    let faults = executor_faults(mutation, &mut rng);
    let backend_choice = rng.gen_range(0..3u8);
    let shots = rng.gen_range(1..=32u64);
    let pipeline_seed = rng.gen::<u64>();

    let src = source.clone();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        drive_stack(&src, faults, backend_choice, shots, pipeline_seed)
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Outcome::Panic(msg)
    });
    CaseReport {
        index: 0,
        seed,
        mutation,
        source,
        outcome,
    }
}

/// Drives one source text through parse → compile (with differential
/// verification) → backend execution. Every error is folded into
/// [`Outcome::TypedError`]; only a panic escapes (to the caller's
/// `catch_unwind`).
fn drive_stack(
    source: &str,
    faults: FaultInjection,
    backend_choice: u8,
    shots: u64,
    seed: u64,
) -> Outcome {
    let program = match Program::parse(source) {
        Ok(p) => p,
        Err(e) => return Outcome::TypedError(format!("parse: {e}")),
    };
    let n = program.qubit_count().max(1);

    // Pick a platform covering the program; verification is cheap at the
    // sizes the generator emits, so it is always on: a pass that corrupts
    // a mutated-but-valid program is exactly what chaos should surface.
    let platform = match backend_choice {
        0 => Platform::perfect(n),
        1 => Platform::superconducting_grid(1, n),
        _ => Platform::semiconducting_linear(n),
    };
    let compiled = match Compiler::with_options(platform, CompilerOptions::default())
        .with_verification(true)
        .compile_cqasm(&program)
    {
        Ok(out) => out,
        Err(e) => return Outcome::TypedError(format!("compile: {e}")),
    };

    if backend_choice == 1 {
        // eQASM + micro-architecture path, one shot per device.
        let eq = match translate(&compiled.schedule) {
            Ok(eq) => eq,
            Err(e) => return Outcome::TypedError(format!("translate: {e}")),
        };
        if let Err(e) = eqasm::verify_translation(&compiled.schedule, &eq) {
            return Outcome::TypedError(format!("translate-verify: {e}"));
        }
        let arch = MicroArchitecture::superconducting();
        let mut device = QxDevice::perfect(compiled.program.qubit_count());
        match arch.execute(&eq, &mut device) {
            Ok(_) => Outcome::Ok { shots: 1 },
            Err(e) => Outcome::TypedError(format!("execute: {e}")),
        }
    } else {
        let sim = Simulator::for_program(&program)
            .with_seed(seed)
            .with_fault_injection(faults);
        match sim.run_shots(&compiled.program, shots) {
            Ok(hist) => Outcome::Ok {
                shots: hist.shots(),
            },
            Err(e) => Outcome::TypedError(format!("simulate: {e}")),
        }
    }
}

fn executor_faults(mutation: Mutation, rng: &mut StdRng) -> FaultInjection {
    match mutation {
        Mutation::ExecutorBudget => FaultInjection {
            shot_budget: Some(rng.gen_range(0..8u64)),
            fail_at_shot: None,
        },
        Mutation::ExecutorFailShot => FaultInjection {
            shot_budget: None,
            fail_at_shot: Some(rng.gen_range(0..16u64)),
        },
        _ => FaultInjection::none(),
    }
}

/// Generates a small random (valid) cQASM program as text.
fn generate_program(rng: &mut StdRng) -> String {
    let n = rng.gen_range(2..=5usize);
    let mut src = String::from("version 1.0\n");
    src.push_str(&format!("qubits {n}\n"));
    if rng.gen_bool(0.3) {
        let p = rng.gen_range(0.0..0.1);
        src.push_str(&format!("error_model depolarizing_channel, {p:.4}\n"));
    }
    if rng.gen_bool(0.4) {
        let iters = rng.gen_range(1..=3u64);
        if iters > 1 {
            src.push_str(&format!(".body({iters})\n"));
        } else {
            src.push_str(".body\n");
        }
    }
    let gates = rng.gen_range(3..=12usize);
    for _ in 0..gates {
        src.push_str(&random_gate_line(rng, n));
    }
    // Measurement-interleaved and conditional shapes: a mid-circuit
    // measurement feeding binary-controlled gates, optionally followed by
    // more unitary work. Conditional gates stay single-qubit — the eQASM
    // backend's conditional pattern supports nothing wider.
    if rng.gen_bool(0.35) {
        let mq = rng.gen_range(0..n);
        src.push_str(&format!("measure q[{mq}]\n"));
        for _ in 0..rng.gen_range(1..=2usize) {
            let mut t = rng.gen_range(0..n);
            if t == mq {
                t = (mq + 1) % n;
            }
            let g = ["x", "y", "z", "h", "s"][rng.gen_range(0..5usize)];
            src.push_str(&format!("c-{g} b[{mq}], q[{t}]\n"));
        }
        for _ in 0..rng.gen_range(0..=2usize) {
            src.push_str(&random_gate_line(rng, n));
        }
    }
    if rng.gen_bool(0.2) {
        src.push_str(&format!("wait {}\n", rng.gen_range(1..=10u64)));
    }
    if rng.gen_bool(0.7) {
        src.push_str("measure_all\n");
    }
    src
}

fn random_gate_line(rng: &mut StdRng, n: usize) -> String {
    let q = rng.gen_range(0..n);
    match rng.gen_range(0..8u8) {
        0 => format!("h q[{q}]\n"),
        1 => format!("x q[{q}]\n"),
        2 => format!("t q[{q}]\n"),
        3 => format!("s q[{q}]\n"),
        4 => format!(
            "rz q[{q}], {:.4}\n",
            rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)
        ),
        5 => format!(
            "rx q[{q}], {:.4}\n",
            rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)
        ),
        6 if n >= 2 => {
            let mut p = rng.gen_range(0..n);
            if p == q {
                p = (q + 1) % n;
            }
            format!("cnot q[{q}], q[{p}]\n")
        }
        _ if n >= 2 => {
            let mut p = rng.gen_range(0..n);
            if p == q {
                p = (q + 1) % n;
            }
            format!("cz q[{q}], q[{p}]\n")
        }
        _ => format!("y q[{q}]\n"),
    }
}

/// Applies a textual mutation to `source`.
fn mutate_source(source: &str, mutation: Mutation, rng: &mut StdRng) -> String {
    match mutation {
        Mutation::None | Mutation::ExecutorBudget | Mutation::ExecutorFailShot => {
            source.to_string()
        }
        Mutation::CorruptOperand => {
            if let Some(pos) = source.find("q[") {
                let bad = rng.gen_range(50..5000usize);
                if let Some(close) = source[pos..].find(']') {
                    let mut out = String::with_capacity(source.len() + 4);
                    out.push_str(&source[..pos + 2]);
                    out.push_str(&bad.to_string());
                    out.push_str(&source[pos + close..]);
                    return out;
                }
            }
            source.to_string()
        }
        Mutation::Truncate => {
            let cut = rng.gen_range(0..source.len().max(1));
            source[..cut].to_string()
        }
        Mutation::BadAngle => {
            let angle = match rng.gen_range(0..4u8) {
                0 => "nan",
                1 => "inf",
                2 => "1e999",
                _ => "soup",
            };
            format!("{source}rz q[0], {angle}\n")
        }
        Mutation::UnknownGate => format!("{source}frobnicate q[0]\n"),
        Mutation::BadErrorModel => {
            let line = match rng.gen_range(0..3u8) {
                0 => "error_model martian_noise, 0.5\n",
                1 => "error_model depolarizing_channel, -3.5\n",
                _ => "error_model depolarizing_channel, soup\n",
            };
            format!("{source}{line}")
        }
        Mutation::GarbleToken => {
            let bytes = source.as_bytes();
            if bytes.is_empty() {
                return source.to_string();
            }
            let pos = rng.gen_range(0..bytes.len());
            const JUNK: &[u8] = b"!@#%^&*(){}[],.|;";
            let mut out = bytes.to_vec();
            out[pos] = JUNK[rng.gen_range(0..JUNK.len())];
            String::from_utf8_lossy(&out).into_owned()
        }
        Mutation::DuplicateLine => {
            let lines: Vec<&str> = source.lines().collect();
            if lines.is_empty() {
                return source.to_string();
            }
            let which = rng.gen_range(0..lines.len());
            let mut out = String::with_capacity(source.len() * 2);
            for (i, line) in lines.iter().enumerate() {
                out.push_str(line);
                out.push('\n');
                if i == which {
                    out.push_str(line);
                    out.push('\n');
                }
            }
            out
        }
        Mutation::HugeCounts => {
            if rng.gen_bool(0.5) {
                format!("{source}wait 999999999999999\n")
            } else {
                format!("{source}.tail(18446744073709551615)\nx q[0]\n")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(7, 40);
        let b = run_campaign(7, 40);
        assert_eq!(a.ok, b.ok);
        assert_eq!(a.typed_errors, b.typed_errors);
        assert_eq!(a.panics.len(), b.panics.len());
    }

    #[test]
    fn campaign_finds_no_panics() {
        let report = run_campaign(7, 120);
        assert!(
            report.is_clean(),
            "chaos found panics: {:?}",
            report
                .panics
                .iter()
                .map(|c| (c.seed, c.mutation, &c.outcome))
                .collect::<Vec<_>>()
        );
        // Sanity: both behaviours occur — some cases run, some are
        // rejected (otherwise the mutations are toothless).
        assert!(report.ok > 0, "no case ever succeeded");
        assert!(report.typed_errors > 0, "no mutation was ever rejected");
    }

    #[test]
    fn cases_replay_bit_for_bit() {
        let report = run_campaign(11, 30);
        // Re-running any case by its seed reproduces source and outcome.
        for i in 0..report.cases {
            let seed = 11u64.wrapping_add(i.wrapping_mul(CASE_SEED_STRIDE));
            let a = run_case(seed);
            let b = run_case(seed);
            assert_eq!(a.source, b.source);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.mutation, b.mutation);
        }
    }

    #[test]
    fn control_cases_succeed() {
        // Hunt a few Mutation::None cases and require Ok outcomes.
        let mut seen = 0;
        for seed in 0..400u64 {
            let case = run_case(seed);
            if case.mutation == Mutation::None {
                assert!(
                    matches!(case.outcome, Outcome::Ok { .. }),
                    "unmutated program failed (seed {seed}): {:?}\n{}",
                    case.outcome,
                    case.source
                );
                seen += 1;
                if seen >= 10 {
                    break;
                }
            }
        }
        assert!(seen > 0, "no control cases in range");
    }

    #[test]
    fn budget_cases_degrade_not_fail() {
        let mut seen = 0;
        for seed in 0..600u64 {
            let case = run_case(seed);
            if case.mutation == Mutation::ExecutorBudget {
                assert!(
                    !matches!(case.outcome, Outcome::Panic(_)),
                    "budget case panicked (seed {seed})"
                );
                seen += 1;
                if seen >= 5 {
                    break;
                }
            }
        }
        assert!(seen > 0);
    }
}
