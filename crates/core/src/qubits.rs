//! The paper's central taxonomy: **real**, **realistic** and **perfect**
//! qubits (§2.1).
//!
//! - *Perfect* qubits never decohere and execute gates exactly — offered
//!   to application developers so they can "focus their reasoning on the
//!   quantum logic".
//! - *Realistic* qubits carry configurable error models — the vehicle for
//!   studying "the impact of realistic error models, better error-rates
//!   and longer coherence times".
//! - *Real* qubits are experimental devices; in this stack they are
//!   realistic models instantiated from published calibration data.

use qxsim::QubitModel;

/// Which qubits the stack simulates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum QubitKind {
    /// No decoherence, no gate errors (application development).
    #[default]
    Perfect,
    /// Parameterised error model.
    Realistic {
        /// Single-qubit gate depolarizing probability.
        p1: f64,
        /// Two-qubit gate depolarizing probability (per operand).
        p2: f64,
        /// Readout flip probability.
        readout: f64,
    },
    /// Calibration-derived model of an experimental device.
    Real {
        /// Single-qubit gate error.
        p1: f64,
        /// Two-qubit gate error.
        p2: f64,
        /// Readout flip probability.
        readout: f64,
        /// Energy-relaxation time in microseconds.
        t1_us: f64,
        /// Cycle/gate time in nanoseconds.
        gate_ns: f64,
    },
}

impl QubitKind {
    /// Today's NISQ numbers as quoted in the paper (§2.4: operation error
    /// rates around 0.1–1%, coherence in the tens of microseconds).
    pub fn realistic_today() -> Self {
        QubitKind::Realistic {
            p1: 1e-3,
            p2: 1e-2,
            readout: 2e-2,
        }
    }

    /// The improved regime the paper says must be understood
    /// (§2.7: error rates of 1e-5 / 1e-6).
    pub fn realistic_future() -> Self {
        QubitKind::Realistic {
            p1: 1e-6,
            p2: 1e-5,
            readout: 1e-4,
        }
    }

    /// A transmon-flavoured real-qubit model (0.1% single-qubit error,
    /// 1% two-qubit, 20 us T1, 20 ns cycle — the superconducting numbers
    /// cited in §2.4).
    pub fn real_transmon() -> Self {
        QubitKind::Real {
            p1: 1e-3,
            p2: 1e-2,
            readout: 2e-2,
            t1_us: 20.0,
            gate_ns: 20.0,
        }
    }

    /// Lowers the taxonomy entry to a simulator error model.
    pub fn to_model(self) -> QubitModel {
        match self {
            QubitKind::Perfect => QubitModel::Perfect,
            QubitKind::Realistic { p1, p2, readout } => {
                QubitModel::realistic_depolarizing(p1, p2, readout)
            }
            QubitKind::Real {
                p1,
                p2,
                readout,
                t1_us,
                gate_ns,
            } => QubitModel::real_from_rates(p1, p2, readout, t1_us, gate_ns),
        }
    }

    /// Whether this kind introduces noise.
    pub fn is_noisy(self) -> bool {
        !matches!(self, QubitKind::Perfect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_lowered_to_noise_free_model() {
        let m = QubitKind::Perfect.to_model();
        assert!(!m.is_noisy());
        assert!(!QubitKind::Perfect.is_noisy());
    }

    #[test]
    fn realistic_presets_are_ordered() {
        let today = QubitKind::realistic_today();
        let future = QubitKind::realistic_future();
        let (QubitKind::Realistic { p2: pt, .. }, QubitKind::Realistic { p2: pf, .. }) =
            (today, future)
        else {
            panic!("presets must be realistic")
        };
        assert!(pf < pt / 100.0, "future errors should be >=100x better");
    }

    #[test]
    fn real_model_carries_idle_decay() {
        let m = QubitKind::real_transmon().to_model();
        assert!(m.is_noisy());
        assert!(!m.idle_channel().is_none(), "real qubits decay while idle");
    }
}
