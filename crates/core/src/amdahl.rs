//! Amdahl's-law acceleration model.
//!
//! §1 of the paper defines an accelerator as "a co-processor ... capable
//! of accelerating the execution of specific computational intensive
//! kernels, as to speed up the overall execution according to Amdahl's
//! law". This module makes that quantitative backbone explicit, including
//! the multi-accelerator form matching Fig 1 and a quantum-kernel case
//! study helper used by experiment E9.

/// Overall speedup when a fraction `f` of the work runs `s` times faster.
///
/// # Panics
///
/// Panics if `f` is outside `[0, 1]` or `s <= 0`.
pub fn speedup(f: f64, s: f64) -> f64 {
    assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
    assert!(s > 0.0, "acceleration factor must be positive");
    1.0 / ((1.0 - f) + f / s)
}

/// The asymptotic speedup as the accelerator becomes infinitely fast:
/// `1 / (1 - f)`.
pub fn speedup_limit(f: f64) -> f64 {
    assert!((0.0..1.0).contains(&f), "fraction must be in [0, 1)");
    1.0 / (1.0 - f)
}

/// Speedup with several accelerators, each taking a disjoint fraction of
/// the workload (the heterogeneous system of Fig 1).
///
/// # Panics
///
/// Panics if fractions are negative or sum above 1, or any factor is
/// non-positive.
pub fn heterogeneous_speedup(kernels: &[(f64, f64)]) -> f64 {
    let mut serial = 1.0;
    let mut accelerated = 0.0;
    for &(f, s) in kernels {
        assert!(f >= 0.0, "negative fraction");
        assert!(s > 0.0, "non-positive factor");
        serial -= f;
        accelerated += f / s;
    }
    assert!(serial >= -1e-12, "fractions sum above 1");
    1.0 / (serial.max(0.0) + accelerated)
}

/// A quantum-kernel case study: a classical workload with one kernel
/// amenable to quadratic (Grover-style) quantum speedup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantumKernelCase {
    /// Fraction of total runtime in the searchable kernel.
    pub kernel_fraction: f64,
    /// Classical work of the kernel (e.g. items scanned).
    pub classical_work: f64,
    /// Quantum overhead factor per query (slower clock, QEC, I/O).
    pub quantum_overhead: f64,
}

impl QuantumKernelCase {
    /// The effective acceleration factor of the quantum kernel:
    /// `sqrt(work)` fewer queries, divided by the per-query overhead.
    pub fn kernel_factor(&self) -> f64 {
        self.classical_work.sqrt() / self.quantum_overhead
    }

    /// The end-to-end speedup per Amdahl.
    pub fn end_to_end_speedup(&self) -> f64 {
        let s = self.kernel_factor();
        if s <= 1.0 {
            // Quantum slower than classical: offloading hurts.
            speedup(self.kernel_fraction, s)
        } else {
            speedup(self.kernel_fraction, s)
        }
    }

    /// The minimum classical work at which offloading breaks even
    /// (`kernel_factor == 1`).
    pub fn break_even_work(&self) -> f64 {
        self.quantum_overhead * self.quantum_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        assert!((speedup(0.5, 2.0) - 4.0 / 3.0).abs() < 1e-12);
        assert!((speedup(0.9, 10.0) - 1.0 / 0.19).abs() < 1e-12);
        assert!((speedup(0.0, 100.0) - 1.0).abs() < 1e-12);
        assert!((speedup(1.0, 4.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn limit_dominates_any_finite_factor() {
        for f in [0.1, 0.5, 0.9, 0.99] {
            assert!(speedup(f, 1e12) <= speedup_limit(f) + 1e-9);
            assert!(speedup(f, 10.0) < speedup_limit(f));
        }
    }

    #[test]
    fn heterogeneous_reduces_to_single() {
        let single = speedup(0.6, 8.0);
        let multi = heterogeneous_speedup(&[(0.6, 8.0)]);
        assert!((single - multi).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_multiple_accelerators() {
        // 40% on GPU at 10x, 30% on quantum at 100x, 30% serial.
        let s = heterogeneous_speedup(&[(0.4, 10.0), (0.3, 100.0)]);
        let expected = 1.0 / (0.3 + 0.04 + 0.003);
        assert!((s - expected).abs() < 1e-12);
        assert!(s > 2.5 && s < 3.0);
    }

    #[test]
    fn quantum_case_study_break_even() {
        let case = QuantumKernelCase {
            kernel_fraction: 0.8,
            classical_work: 1e4,
            quantum_overhead: 100.0,
        };
        // sqrt(1e4)/100 = 1: exactly break-even.
        assert!((case.kernel_factor() - 1.0).abs() < 1e-12);
        assert!((case.end_to_end_speedup() - 1.0).abs() < 1e-12);
        assert!((case.break_even_work() - 1e4).abs() < 1e-9);
        // Bigger problems win.
        let big = QuantumKernelCase {
            classical_work: 1e10,
            ..case
        };
        assert!(big.end_to_end_speedup() > 4.0);
        // Smaller problems lose.
        let small = QuantumKernelCase {
            classical_work: 100.0,
            ..case
        };
        assert!(small.end_to_end_speedup() < 1.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_fraction() {
        let _ = speedup(1.5, 2.0);
    }
}
