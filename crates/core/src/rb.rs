//! Randomised benchmarking (RB) workloads.
//!
//! §3.1 of the paper: "we have been focusing on randomised bench-marking
//! experiments for one or two qubits which was written in OpenQL" — the
//! canonical workload for the experimental superconducting stack. This
//! module generates:
//!
//! - standard single-qubit Clifford RB sequences (random Cliffords plus
//!   the exact recovery Clifford, so the ideal circuit is the identity);
//! - two-qubit motion-reversal (echo) sequences: a random entangling
//!   circuit followed by its exact inverse.
//!
//! Under noise, the survival probability (returning to `|0...0>`) decays
//! with sequence length; the decay rate measures the average gate error.

use cqasm::math::Mat2;
use cqasm::GateKind;
use openql::{Kernel, QuantumProgram};
use rand::Rng;

/// The 24-element single-qubit Clifford group with gate realisations.
#[derive(Debug, Clone)]
pub struct CliffordTable {
    elements: Vec<(Mat2, Vec<GateKind>)>,
}

impl CliffordTable {
    /// Builds the group by closing `{H, S}` under multiplication.
    pub fn single_qubit() -> Self {
        let gens = [GateKind::H, GateKind::S];
        let mut elements: Vec<(Mat2, Vec<GateKind>)> = vec![(Mat2::identity(), Vec::new())];
        let mut frontier = elements.clone();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for (mat, seq) in &frontier {
                for g in gens {
                    let gm = match g.unitary() {
                        cqasm::GateUnitary::One(m) => m,
                        _ => unreachable!("generators are single-qubit"),
                    };
                    // Appending gate g to the circuit multiplies on the left.
                    let prod = gm.matmul(mat);
                    if !elements.iter().any(|(m, _)| m.approx_eq_up_to_phase(&prod)) {
                        let mut s = seq.clone();
                        s.push(g);
                        elements.push((prod, s.clone()));
                        next.push((prod, s));
                    }
                }
            }
            frontier = next;
        }
        CliffordTable { elements }
    }

    /// Number of group elements (24).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the table is empty (never, after construction).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The gate sequence realising element `idx`.
    pub fn sequence(&self, idx: usize) -> &[GateKind] {
        &self.elements[idx].1
    }

    /// The unitary of element `idx`.
    pub fn unitary(&self, idx: usize) -> &Mat2 {
        &self.elements[idx].0
    }

    /// Index of the element inverting `net` (up to global phase).
    ///
    /// `net` is always a Clifford here (it is a product of table
    /// elements), so the lookup cannot miss; the identity fallback keeps
    /// this path abort-free should that invariant ever break.
    pub fn inverse_of(&self, net: &Mat2) -> usize {
        let inv = net.dagger();
        self.elements
            .iter()
            .position(|(m, _)| m.approx_eq_up_to_phase(&inv))
            .unwrap_or(0)
    }
}

/// Builds a single-qubit RB program: `length` random Cliffords, the
/// recovery Clifford, and a measurement. The ideal outcome is always 0.
pub fn single_qubit_rb<R: Rng + ?Sized>(
    table: &CliffordTable,
    length: usize,
    rng: &mut R,
) -> QuantumProgram {
    let mut kernel = Kernel::new(format!("rb_m{length}"), 1);
    let mut net = Mat2::identity();
    for _ in 0..length {
        let idx = rng.gen_range(0..table.len());
        for &g in table.sequence(idx) {
            kernel.gate(g, &[0]);
        }
        net = table.unitary(idx).matmul(&net);
    }
    let rec = table.inverse_of(&net);
    for &g in table.sequence(rec) {
        kernel.gate(g, &[0]);
    }
    kernel.measure(0);
    let mut p = QuantumProgram::new(format!("rb_m{length}"), 1);
    p.add_kernel(kernel);
    p
}

/// Builds a two-qubit motion-reversal (echo) program: `length` layers of
/// random single-qubit gates plus a CZ, followed by the exact inverse.
/// The ideal outcome is always `|00>`.
pub fn two_qubit_echo<R: Rng + ?Sized>(length: usize, rng: &mut R) -> QuantumProgram {
    let pool = [
        GateKind::H,
        GateKind::S,
        GateKind::Sdag,
        GateKind::T,
        GateKind::Tdag,
        GateKind::X,
        GateKind::Y,
    ];
    let mut forward = Kernel::new("echo_fwd", 2);
    for _ in 0..length {
        for q in 0..2 {
            let g = pool[rng.gen_range(0..pool.len())];
            forward.gate(g, &[q]);
        }
        forward.cz(0, 1);
    }
    let mut kernel = Kernel::new(format!("echo_m{length}"), 2);
    for ins in forward.instructions() {
        kernel.instruction(ins.clone());
    }
    kernel.append_inverse_of(&forward);
    kernel.measure_all();
    let mut p = QuantumProgram::new(format!("echo_m{length}"), 2);
    p.add_kernel(kernel);
    p
}

/// The survival probability: fraction of shots returning all-zero bits.
pub fn survival_probability(hist: &qxsim::ShotHistogram) -> f64 {
    hist.probability(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxsim::{QubitModel, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clifford_group_has_24_elements() {
        let t = CliffordTable::single_qubit();
        assert_eq!(t.len(), 24);
    }

    #[test]
    fn every_element_has_an_inverse_in_the_table() {
        let t = CliffordTable::single_qubit();
        for i in 0..t.len() {
            let inv = t.inverse_of(t.unitary(i));
            let prod = t.unitary(inv).matmul(t.unitary(i));
            assert!(prod.approx_eq_up_to_phase(&Mat2::identity()), "element {i}");
        }
    }

    #[test]
    fn rb_sequences_are_identity_on_perfect_qubits() {
        let t = CliffordTable::single_qubit();
        let mut rng = StdRng::seed_from_u64(51);
        for length in [1usize, 5, 20] {
            let p = single_qubit_rb(&t, length, &mut rng);
            let hist = Simulator::perfect().run_shots(&p.to_cqasm(), 100).unwrap();
            assert_eq!(
                survival_probability(&hist),
                1.0,
                "length {length} not identity"
            );
        }
    }

    #[test]
    fn echo_sequences_are_identity_on_perfect_qubits() {
        let mut rng = StdRng::seed_from_u64(52);
        for length in [1usize, 4, 10] {
            let p = two_qubit_echo(length, &mut rng);
            let hist = Simulator::perfect().run_shots(&p.to_cqasm(), 100).unwrap();
            assert_eq!(survival_probability(&hist), 1.0, "length {length}");
        }
    }

    #[test]
    fn survival_decays_with_length_under_noise() {
        let t = CliffordTable::single_qubit();
        let mut rng = StdRng::seed_from_u64(53);
        let noisy = Simulator::with_model(QubitModel::realistic_depolarizing(0.02, 0.0, 0.0));
        let mut survival = Vec::new();
        for length in [2usize, 16, 64] {
            // Average over several random sequences.
            let mut acc = 0.0;
            for _ in 0..4 {
                let p = single_qubit_rb(&t, length, &mut rng);
                let hist = noisy.run_shots(&p.to_cqasm(), 150).unwrap();
                acc += survival_probability(&hist);
            }
            survival.push(acc / 4.0);
        }
        assert!(
            survival[0] > survival[2] + 0.1,
            "survival should decay: {survival:?}"
        );
    }
}
