//! Differential conformance corpus: seeded program generation plus an
//! independent reference oracle, executed through every state-vector
//! engine in the stack and compared **bit for bit**.
//!
//! The paper's central promise is that one quantum program means one
//! thing everywhere in the stack — interpreter, compiled plan, sharded
//! service execution. This module machine-checks that promise on randomly
//! generated programs covering the full instruction set, *including* the
//! non-unitary shapes (mid-circuit measurement, binary-controlled gates)
//! that the differential pass verifier also covers per branch:
//!
//! - **oracle** — a from-scratch interpreter built on the dense
//!   [`qxsim::state::reference`] kernels (no [`cqasm::KernelClass`]
//!   specialisation, no compiled plan, no fast paths), replaying the
//!   executor's exact per-shot RNG streams;
//! - **interpreter** — [`qxsim::Simulator`] with the sampling fast path
//!   disabled (full per-shot re-simulation of the compiled plan);
//! - **compiled plan** — the default simulator (gate fusion on), taking
//!   the terminal sampling fast paths whenever the plan qualifies;
//! - **unfused plan** — the same simulator with the fusion stage
//!   disabled, so fused and unfused compilation are pinned to the oracle
//!   independently;
//! - **sharded** — the same plan split into shot ranges via
//!   [`qxsim::Simulator::run_shot_range`] (the service's shard primitive)
//!   and merged out of order;
//! - **tableau** — the CHP stabilizer executor, forced via
//!   [`qxsim::EngineSelect::Tableau`], on every Clifford-class case;
//! - **Pauli frames** — the bit-packed frame sampler, forced via
//!   [`qxsim::EngineSelect::PauliFrame`], on every feedback-free
//!   (`CliffordTerminal`) case — plus auto-dispatched contiguous
//!   worker-style splits at 1, 2 and 4 workers, merged out of order.
//!
//! All engines must produce *identical* histograms: per-shot RNG streams
//! are seeded independently of the execution strategy, and every kernel
//! specialisation is exact (no floating-point tolerance anywhere). Each
//! case is then compiled through the OpenQL pipeline with differential
//! pass verification enabled — exercising the per-branch `Cond` verifier
//! on real pipelines — and the engines must agree on the compiled program
//! too. Density-matrix statistics are checked separately (the engine is
//! statistically, not bitwise, equivalent) against the oracle's exact
//! outcome distribution under a total-variation bound.
//!
//! Campaigns are bit-reproducible: case `i` of a campaign with seed `s`
//! has seed `s + i * CASE_SEED_STRIDE`, and a failing case can be
//! replayed alone from that seed (`qca-conform --replay <seed>`).

use crate::chaos::CASE_SEED_STRIDE;
use cqasm::{Instruction, Program};
use openql::{Compiler, CompilerOptions, Platform};
use qxsim::state::reference;
use qxsim::{CircuitClass, EngineSelect, ShotHistogram, Simulator, StateVector, SHOT_SEED_STRIDE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shots drawn when checking the density-matrix engine's statistics.
const DENSITY_SHOTS: u64 = 2048;

/// Total-variation bound for the density check: for at most 2^5 outcomes
/// and [`DENSITY_SHOTS`] draws the expected distance is ≈ 0.1; the bound
/// leaves slack while still catching any systematic divergence.
const DENSITY_TV_BOUND: f64 = 0.2;

/// The measurement structure of a generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseShape {
    /// Gates only — no measurement (every engine must report all-zero
    /// bits).
    Unitary,
    /// Gates then one `measure_all`.
    TerminalAll,
    /// Gates then a run of per-qubit `measure`s in scrambled order.
    TerminalRun,
    /// A mid-circuit measurement with unitary work after it.
    MidMeasure,
    /// Mid-circuit measurement feeding binary-controlled gates.
    Conditional,
    /// Mid-circuit `prep_z` resets between general gate work.
    PrepZ,
    /// A Clifford-only circuit: gates drawn from the Clifford generators
    /// with measures interleaved — sometimes feedback-free (Pauli-frame
    /// eligible), sometimes with conditioned corrections (tableau only).
    Clifford,
    /// Error-syndrome-measurement rounds of a small stabilizer code
    /// (repetition or Steane), with Pauli errors injected on data qubits.
    EsmRound,
}

impl CaseShape {
    /// Whether the density-matrix engine supports this shape (it needs a
    /// unitary prefix and a terminal measurement).
    fn density_eligible(self) -> bool {
        matches!(self, CaseShape::TerminalAll | CaseShape::TerminalRun)
    }

    /// Whether the shape is Clifford-class by construction (always lowers
    /// to stabilizer ops), for `--clifford-only` campaigns.
    pub fn clifford_family(self) -> bool {
        matches!(self, CaseShape::Clifford | CaseShape::EsmRound)
    }
}

/// One generated conformance case.
#[derive(Debug, Clone)]
pub struct ConformCase {
    /// The case seed (generation is a pure function of it).
    pub seed: u64,
    /// The measurement structure generated.
    pub shape: CaseShape,
    /// The generated cQASM source (always noise-free: bit-identity across
    /// engines is only claimed for exact evolution).
    pub source: String,
    /// Shots per engine run.
    pub shots: u64,
}

/// Generates the conformance case for `seed`. Pure: the same seed always
/// yields the same case.
pub fn generate_case(seed: u64) -> ConformCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let shape = match rng.gen_range(0..12u8) {
        0 => CaseShape::Unitary,
        1 | 2 => CaseShape::TerminalAll,
        3 => CaseShape::TerminalRun,
        4 => CaseShape::MidMeasure,
        5 | 6 => CaseShape::Conditional,
        7 => CaseShape::PrepZ,
        8..=10 => CaseShape::Clifford,
        _ => CaseShape::EsmRound,
    };
    let (source, shots) = match shape {
        CaseShape::Clifford => clifford_source(&mut rng),
        CaseShape::EsmRound => esm_source(&mut rng),
        _ => general_source(&mut rng, shape),
    };
    ConformCase {
        seed,
        shape,
        source,
        shots,
    }
}

/// The general generator: full gate set (Clifford and non-Clifford),
/// fusion-stress tails, and the requested measurement structure.
fn general_source(rng: &mut StdRng, shape: CaseShape) -> (String, u64) {
    let n = rng.gen_range(2..=5usize);
    let mut src = format!("version 1.0\nqubits {n}\n");
    if rng.gen_bool(0.3) {
        let iters = rng.gen_range(2..=3u64);
        src.push_str(&format!(".body({iters})\n"));
    }
    for _ in 0..rng.gen_range(3..=10usize) {
        src.push_str(&gate_line(rng, n));
    }
    if rng.gen_bool(0.15) {
        src.push_str(&format!("wait {}\n", rng.gen_range(1..=5u64)));
    }
    // Fusion-stress tails: a same-qubit 1q run and/or a diagonal chain,
    // the shapes the plan fuser collapses hardest. The measurement and
    // conditional sections below then land exactly on fusion boundaries
    // (measure and `c-` break a fusion run), so the corpus keeps probing
    // both the fused kernels and the places fusion must stop.
    if rng.gen_bool(0.5) {
        let q = rng.gen_range(0..n);
        for _ in 0..rng.gen_range(2..=6usize) {
            let g = ["h", "x", "s", "t", "z"][rng.gen_range(0..5usize)];
            src.push_str(&format!("{g} q[{q}]\n"));
        }
    }
    if rng.gen_bool(0.5) {
        for _ in 0..rng.gen_range(2..=6usize) {
            let q = rng.gen_range(0..n);
            match rng.gen_range(0..4u8) {
                0 => src.push_str(&format!("t q[{q}]\n")),
                1 => src.push_str(&format!(
                    "rz q[{q}], {:.4}\n",
                    rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)
                )),
                2 => src.push_str(&format!("cz q[{q}], q[{}]\n", (q + 1) % n)),
                _ => src.push_str(&format!(
                    "crk q[{q}], q[{}], {}\n",
                    (q + 1) % n,
                    rng.gen_range(2..=4u32)
                )),
            }
        }
    }
    match shape {
        CaseShape::Unitary => {}
        CaseShape::TerminalAll => src.push_str("measure_all\n"),
        CaseShape::TerminalRun => {
            let mut qs: Vec<usize> = (0..n).collect();
            for i in (1..qs.len()).rev() {
                let j = rng.gen_range(0..=i);
                qs.swap(i, j);
            }
            let k = rng.gen_range(1..=n);
            for &q in &qs[..k] {
                src.push_str(&format!("measure q[{q}]\n"));
            }
        }
        CaseShape::MidMeasure => {
            src.push_str(&format!("measure q[{}]\n", rng.gen_range(0..n)));
            for _ in 0..rng.gen_range(1..=4usize) {
                src.push_str(&gate_line(rng, n));
            }
            src.push_str("measure_all\n");
        }
        CaseShape::Conditional => {
            let mq = rng.gen_range(0..n);
            src.push_str(&format!("measure q[{mq}]\n"));
            for _ in 0..rng.gen_range(1..=3usize) {
                let mut t = rng.gen_range(0..n);
                if t == mq {
                    t = (mq + 1) % n;
                }
                let g = ["x", "y", "z", "h", "s"][rng.gen_range(0..5usize)];
                src.push_str(&format!("c-{g} b[{mq}], q[{t}]\n"));
            }
            for _ in 0..rng.gen_range(0..=2usize) {
                src.push_str(&gate_line(rng, n));
            }
            src.push_str("measure_all\n");
        }
        CaseShape::PrepZ => {
            // Mid-circuit resets between general gate work; the oracle's
            // `reset` path draws exactly one gen_bool per prep, like
            // every engine.
            src.push_str(&format!("prep_z q[{}]\n", rng.gen_range(0..n)));
            for _ in 0..rng.gen_range(1..=4usize) {
                src.push_str(&gate_line(rng, n));
            }
            if rng.gen_bool(0.5) {
                src.push_str(&format!("prep_z q[{}]\n", rng.gen_range(0..n)));
            }
            src.push_str("measure_all\n");
        }
        CaseShape::Clifford | CaseShape::EsmRound => unreachable!("dedicated generators"),
    }
    (src, rng.gen_range(32..=128u64))
}

/// One random Clifford-generator gate line.
fn clifford_line(rng: &mut StdRng, n: usize) -> String {
    let q = rng.gen_range(0..n);
    let two = |rng: &mut StdRng| {
        let mut p = rng.gen_range(0..n);
        if p == q {
            p = (q + 1) % n;
        }
        p
    };
    match rng.gen_range(0..13u8) {
        0 => format!("h q[{q}]\n"),
        1 => format!("x q[{q}]\n"),
        2 => format!("y q[{q}]\n"),
        3 => format!("z q[{q}]\n"),
        4 => format!("s q[{q}]\n"),
        5 => format!("sdag q[{q}]\n"),
        6 => format!("x90 q[{q}]\n"),
        7 => format!("y90 q[{q}]\n"),
        8 => format!("mx90 q[{q}]\n"),
        9 => format!("my90 q[{q}]\n"),
        10 => format!("cnot q[{q}], q[{}]\n", two(rng)),
        11 => format!("cz q[{q}], q[{}]\n", two(rng)),
        _ => format!("swap q[{q}], q[{}]\n", two(rng)),
    }
}

/// The Clifford-only generator: every case lowers to stabilizer ops, so
/// the tableau executor always engages; feedback-free variants engage the
/// Pauli-frame sampler too.
fn clifford_source(rng: &mut StdRng) -> (String, u64) {
    let n = rng.gen_range(2..=6usize);
    let mut src = format!("version 1.0\nqubits {n}\n");
    for _ in 0..rng.gen_range(4..=12usize) {
        src.push_str(&clifford_line(rng, n));
    }
    match rng.gen_range(0..4u8) {
        // Feedback-free measures interleaved with trailing Clifford work
        // (the scheduler-hoisted shape) — CliffordTerminal, frame-eligible.
        0 | 1 => {
            for _ in 0..rng.gen_range(1..=n) {
                src.push_str(&format!("measure q[{}]\n", rng.gen_range(0..n)));
                for _ in 0..rng.gen_range(0..=2usize) {
                    src.push_str(&clifford_line(rng, n));
                }
            }
        }
        // Pure terminal measure_all — frame-eligible, All mode.
        2 => src.push_str("measure_all\n"),
        // Measurement feedback: a conditioned Pauli correction — Clifford
        // class, tableau only.
        _ => {
            let mq = rng.gen_range(0..n);
            src.push_str(&format!("measure q[{mq}]\n"));
            let g = ["x", "z", "s", "h"][rng.gen_range(0..4usize)];
            src.push_str(&format!("c-{g} b[{mq}], q[{}]\n", (mq + 1) % n));
            for _ in 0..rng.gen_range(0..=3usize) {
                src.push_str(&clifford_line(rng, n));
            }
            src.push_str("measure_all\n");
        }
    }
    (src, rng.gen_range(64..=192u64))
}

/// The ESM generator: syndrome-measurement rounds of a small stabilizer
/// code with Pauli errors injected on data qubits. Always Clifford class
/// (prep_z + feedback-free measures), so the tableau executor engages;
/// the codes stay small enough for the dense oracle.
fn esm_source(rng: &mut StdRng) -> (String, u64) {
    let code = match rng.gen_range(0..4u8) {
        0 => qec::StabilizerCode::repetition(3),
        1 | 2 => qec::StabilizerCode::repetition(5),
        _ => qec::StabilizerCode::steane(),
    };
    let rounds = rng.gen_range(1..=2u64);
    let (program, layout) = qec::esm::esm_program_ancilla_first(&code, rounds);
    let src = program.to_string();
    // Inject X/Z data errors after the header so the syndromes vary.
    let mut errors = String::new();
    for i in 0..code.data_qubits() {
        if rng.gen_bool(0.25) {
            let g = if rng.gen_bool(0.5) { "x" } else { "z" };
            errors.push_str(&format!("{g} q[{}]\n", layout.data_qubit(i)));
        }
    }
    let header_end = src
        .find('\n')
        .and_then(|v| src[v + 1..].find('\n').map(|w| v + 1 + w + 1))
        .unwrap_or(src.len());
    let mut out = String::with_capacity(src.len() + errors.len());
    out.push_str(&src[..header_end]);
    out.push_str(&errors);
    out.push_str(&src[header_end..]);
    (out, rng.gen_range(32..=96u64))
}

/// One random gate line over the full gate set (including Toffoli, so the
/// `apply_controlled_1q` path is exercised differentially).
fn gate_line(rng: &mut StdRng, n: usize) -> String {
    let q = rng.gen_range(0..n);
    let two = |rng: &mut StdRng| {
        let mut p = rng.gen_range(0..n);
        if p == q {
            p = (q + 1) % n;
        }
        p
    };
    match rng.gen_range(0..12u8) {
        0 => format!("h q[{q}]\n"),
        1 => format!("x q[{q}]\n"),
        2 => format!("y q[{q}]\n"),
        3 => format!("s q[{q}]\n"),
        4 => format!("t q[{q}]\n"),
        5 => format!(
            "rz q[{q}], {:.4}\n",
            rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)
        ),
        6 => format!(
            "rx q[{q}], {:.4}\n",
            rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)
        ),
        7 => format!("cnot q[{q}], q[{}]\n", two(rng)),
        8 => format!("cz q[{q}], q[{}]\n", two(rng)),
        9 => format!("swap q[{q}], q[{}]\n", two(rng)),
        10 if n >= 3 => {
            let a = two(rng);
            let mut b = rng.gen_range(0..n);
            while b == q || b == a {
                b = (b + 1) % n;
            }
            format!("toffoli q[{q}], q[{a}], q[{b}]\n")
        }
        _ => format!("z q[{q}]\n"),
    }
}

/// Executes `program` on the independent reference oracle: dense
/// [`reference`] kernels, direct instruction walk (no plan), and the
/// executor's exact per-shot RNG streams
/// (`seed + shot * `[`SHOT_SEED_STRIDE`]). Bit-identical to the noise-free
/// interpreter by construction: measurement collapse and sampling use the
/// shared [`StateVector`] primitives while gate application is
/// independently dense.
pub fn reference_histogram(program: &Program, shots: u64, seed: u64) -> ShotHistogram {
    let n = program.qubit_count();
    let mut hist = ShotHistogram::new();
    for shot in 0..shots {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(shot.wrapping_mul(SHOT_SEED_STRIDE)));
        let mut state = StateVector::zero_state(n);
        let mut bits = 0u64;
        for ins in program.flat_instructions() {
            oracle_step(ins, &mut state, &mut bits, &mut rng);
        }
        hist.record(bits);
    }
    hist
}

fn oracle_step(ins: &Instruction, state: &mut StateVector, bits: &mut u64, rng: &mut StdRng) {
    match ins {
        Instruction::Gate(g) => {
            let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
            reference::apply_gate(state, &g.kind, &idx);
        }
        Instruction::Cond(bit, g) => {
            if (*bits >> bit.index()) & 1 == 1 {
                let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
                reference::apply_gate(state, &g.kind, &idx);
            }
        }
        Instruction::Measure(q) => {
            let outcome = state.measure(q.index(), rng);
            set_bit(bits, q.index(), outcome);
        }
        Instruction::MeasureAll => {
            let basis = state.measure_all(rng);
            for q in 0..state.qubit_count() {
                set_bit(bits, q, (basis >> q) & 1 == 1);
            }
        }
        Instruction::PrepZ(q) => state.reset(q.index(), rng),
        Instruction::Bundle(instrs) => {
            for inner in instrs {
                oracle_step(inner, state, bits, rng);
            }
        }
        Instruction::Wait(_) | Instruction::Display => {}
    }
}

fn set_bit(bits: &mut u64, index: usize, value: bool) {
    if value {
        *bits |= 1 << index;
    } else {
        *bits &= !(1 << index);
    }
}

/// Which optional engines a case exercised (the state-vector engines and
/// shard merge always run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCoverage {
    /// The CHP tableau executor ran (Clifford-class plan).
    pub tableau: bool,
    /// The Pauli-frame sampler ran (`CliffordTerminal` plan).
    pub frame: bool,
}

impl EngineCoverage {
    fn union(self, other: EngineCoverage) -> EngineCoverage {
        EngineCoverage {
            tableau: self.tableau || other.tableau,
            frame: self.frame || other.frame,
        }
    }
}

/// The report for one case: `detail` is `None` on pass, otherwise a
/// human-readable description of the first divergence.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The case seed (replay handle).
    pub seed: u64,
    /// The generated shape.
    pub shape: CaseShape,
    /// The generated source.
    pub source: String,
    /// Shots per engine.
    pub shots: u64,
    /// Which stabilizer engines the case exercised.
    pub coverage: EngineCoverage,
    /// `None` = pass; `Some` = first divergence found.
    pub detail: Option<String>,
}

impl CaseReport {
    /// Whether every engine agreed.
    pub fn passed(&self) -> bool {
        self.detail.is_none()
    }
}

/// Runs one conformance case end to end.
pub fn run_case(seed: u64) -> CaseReport {
    let case = generate_case(seed);
    let (coverage, detail) = match check_case(&case) {
        Ok(cov) => (cov, None),
        Err(e) => (EngineCoverage::default(), Some(e)),
    };
    CaseReport {
        seed: case.seed,
        shape: case.shape,
        source: case.source,
        shots: case.shots,
        coverage,
        detail,
    }
}

/// Renders the first difference between two histograms.
fn diff_histograms(what: &str, expect: &ShotHistogram, got: &ShotHistogram) -> Result<(), String> {
    if expect == got {
        return Ok(());
    }
    let mut keys: Vec<u64> = expect.iter().map(|(b, _)| b).collect();
    keys.extend(got.iter().map(|(b, _)| b));
    keys.sort_unstable();
    keys.dedup();
    for b in keys {
        let (e, g) = (expect.count(b), got.count(b));
        if e != g {
            return Err(format!(
                "{what}: histogram differs at bits {b:#b}: expected {e}, got {g}"
            ));
        }
    }
    Err(format!("{what}: histograms differ in shot totals"))
}

fn check_case(case: &ConformCase) -> Result<EngineCoverage, String> {
    let program = Program::parse(&case.source)
        .map_err(|e| format!("generated source failed to parse: {e}"))?;
    let raw = check_engines("raw", &program, case.shots, case.seed)?;

    // Compile through the same pipeline the service uses (perfect sized
    // platform, default options) with differential pass verification on —
    // this is where the per-branch Cond verifier runs on real pipelines.
    let compiler = Compiler::with_options(
        Platform::perfect(program.qubit_count()),
        CompilerOptions::default(),
    )
    .with_verification(true);
    let out = compiler
        .compile_cqasm(&program)
        .map_err(|e| format!("compile (with verification): {e}"))?;
    let compiled = check_engines("compiled", &out.program, case.shots, case.seed)?;

    if case.shape.density_eligible() {
        check_density(&program, case.seed)?;
    }
    Ok(raw.union(compiled))
}

/// Runs `program` through oracle, interpreter, fused compiled plan,
/// unfused compiled plan, and sharded ranges — plus, on Clifford-class
/// plans, the tableau executor, the Pauli-frame sampler and
/// worker-geometry shard splits. Every histogram must be identical.
fn check_engines(
    stage: &str,
    program: &Program,
    shots: u64,
    seed: u64,
) -> Result<EngineCoverage, String> {
    let oracle = reference_histogram(program, shots, seed);

    let interp = Simulator::perfect()
        .with_seed(seed)
        .with_sampling_fast_path(false)
        .run_shots(program, shots)
        .map_err(|e| format!("{stage}/interpreter: {e}"))?;
    diff_histograms(&format!("{stage}/interpreter vs oracle"), &oracle, &interp)?;

    let fast = Simulator::perfect()
        .with_seed(seed)
        .run_shots(program, shots)
        .map_err(|e| format!("{stage}/plan: {e}"))?;
    diff_histograms(&format!("{stage}/compiled plan vs oracle"), &oracle, &fast)?;

    // The fused plan above is the default; this engine pins the *unfused*
    // plan too, so a fusion bug cannot hide behind an identical bug in
    // the unfused path (and vice versa).
    let unfused = Simulator::perfect()
        .with_seed(seed)
        .with_fusion(false)
        .run_shots(program, shots)
        .map_err(|e| format!("{stage}/unfused plan: {e}"))?;
    diff_histograms(
        &format!("{stage}/unfused plan vs oracle"),
        &oracle,
        &unfused,
    )?;

    let sim = Simulator::perfect().with_seed(seed);
    let plan = sim
        .compile(program)
        .map_err(|e| format!("{stage}/shard compile: {e}"))?;
    let cut_a = shots / 3;
    let cut_b = shots - shots / 4;
    let mut sharded = ShotHistogram::new();
    // Merge out of order: shard identity must not depend on range order.
    for (lo, hi) in [(cut_b, shots), (0, cut_a), (cut_a, cut_b)] {
        if lo < hi {
            sharded.merge(&sim.run_shot_range(&plan, lo, hi));
        }
    }
    diff_histograms(&format!("{stage}/sharded vs oracle"), &oracle, &sharded)?;

    // Stabilizer engines, where the plan class admits them. Forced
    // selection pins each engine to the oracle on its own; the auto
    // worker splits then pin the dispatched engine under the service's
    // shard geometry at 1, 2 and 4 workers.
    let mut coverage = EngineCoverage::default();
    if plan.circuit_class() != CircuitClass::General {
        let tab = Simulator::perfect()
            .with_seed(seed)
            .with_engine_select(EngineSelect::Tableau)
            .run_shots(program, shots)
            .map_err(|e| format!("{stage}/tableau: {e}"))?;
        diff_histograms(&format!("{stage}/tableau vs oracle"), &oracle, &tab)?;
        coverage.tableau = true;

        if plan.circuit_class() == CircuitClass::CliffordTerminal {
            let frames = Simulator::perfect()
                .with_seed(seed)
                .with_engine_select(EngineSelect::PauliFrame)
                .run_shots(program, shots)
                .map_err(|e| format!("{stage}/pauli-frame: {e}"))?;
            diff_histograms(&format!("{stage}/pauli-frame vs oracle"), &oracle, &frames)?;
            coverage.frame = true;
        }

        for workers in [1u64, 2, 4] {
            let per = shots / workers;
            let mut merged = ShotHistogram::new();
            for w in (0..workers).rev() {
                let lo = w * per;
                let hi = if w == workers - 1 {
                    shots
                } else {
                    (w + 1) * per
                };
                if lo < hi {
                    merged.merge(&sim.run_shot_range(&plan, lo, hi));
                }
            }
            diff_histograms(
                &format!("{stage}/stabilizer {workers}-worker split vs oracle"),
                &oracle,
                &merged,
            )?;
        }
    }
    Ok(coverage)
}

/// Checks the density-matrix engine's statistics against the oracle's
/// exact outcome distribution under a total-variation bound.
fn check_density(program: &Program, seed: u64) -> Result<(), String> {
    let n = program.qubit_count();
    // Exact distribution: evolve the unitary prefix once on the oracle
    // kernels, then marginalise onto the measured qubits.
    let mut state = StateVector::zero_state(n);
    let mut measured = 0u64;
    for ins in program.flat_instructions() {
        match ins {
            Instruction::Gate(g) => {
                let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
                reference::apply_gate(&mut state, &g.kind, &idx);
            }
            Instruction::Measure(q) => measured |= 1 << q.index(),
            Instruction::MeasureAll => measured = (1 << n) - 1,
            Instruction::Bundle(instrs) => {
                for inner in instrs {
                    if let Instruction::Gate(g) = inner {
                        let idx: Vec<usize> = g.qubits.iter().map(|q| q.index()).collect();
                        reference::apply_gate(&mut state, &g.kind, &idx);
                    }
                }
            }
            _ => {}
        }
    }
    let dim = 1usize << n;
    let mut expected = vec![0.0f64; dim];
    for (i, a) in state.amplitudes().iter().enumerate() {
        expected[i & measured as usize] += a.norm_sqr();
    }

    let sim = Simulator::perfect().with_seed(seed);
    let plan = sim
        .compile(program)
        .map_err(|e| format!("density compile: {e}"))?;
    let hist = match sim.run_density_planned(&plan, DENSITY_SHOTS) {
        Ok(h) => h,
        // The density engine legitimately rejects some generated shapes
        // (three-qubit kernels, repeated subcircuits whose measurements
        // land mid-stream). That is a supported-surface boundary, not a
        // conformance failure — skip, don't fail.
        Err(qxsim::ExecuteError::Invalid(_)) => return Ok(()),
        Err(e) => return Err(format!("density run: {e}")),
    };
    let mut tv = 0.0f64;
    for (b, p) in expected.iter().enumerate() {
        let emp = hist.count(b as u64) as f64 / DENSITY_SHOTS as f64;
        tv += (emp - p).abs();
    }
    tv *= 0.5;
    if tv > DENSITY_TV_BOUND {
        return Err(format!(
            "density engine diverges from exact distribution: TV = {tv:.4} > {DENSITY_TV_BOUND}"
        ));
    }
    Ok(())
}

/// A campaign summary.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Cases run.
    pub cases: u64,
    /// Cases where every engine agreed.
    pub passed: u64,
    /// Cases that exercised the CHP tableau executor.
    pub tableau_cases: u64,
    /// Cases that exercised the Pauli-frame sampler.
    pub frame_cases: u64,
    /// The failing cases, in run order.
    pub failures: Vec<CaseReport>,
}

/// Runs `cases` conformance cases derived from `seed` (case `i` has seed
/// `seed + i * CASE_SEED_STRIDE`, the same derivation the chaos campaign
/// uses). Bit-reproducible.
pub fn run_campaign(seed: u64, cases: u64) -> CampaignReport {
    run_campaign_filtered(seed, cases, false)
}

/// Like [`run_campaign`], optionally restricted to the Clifford-family
/// shapes ([`CaseShape::clifford_family`]). The restriction works by
/// rejection over the same seed derivation, so a failing case's seed
/// replays identically with `run_case` / `qca-conform --replay`.
pub fn run_campaign_filtered(seed: u64, cases: u64, clifford_only: bool) -> CampaignReport {
    let mut report = CampaignReport {
        cases: 0,
        passed: 0,
        tableau_cases: 0,
        frame_cases: 0,
        failures: Vec::new(),
    };
    // The Clifford family is ~1/3 of the shape weight; a generous scan
    // bound keeps the loop finite without ever truncating a realistic
    // campaign.
    let scan_limit = cases.saturating_mul(20);
    let mut i = 0u64;
    while report.cases < cases && i < scan_limit {
        let case_seed = seed.wrapping_add(i.wrapping_mul(CASE_SEED_STRIDE));
        i += 1;
        if clifford_only && !generate_case(case_seed).shape.clifford_family() {
            continue;
        }
        let r = run_case(case_seed);
        report.cases += 1;
        if r.coverage.tableau {
            report.tableau_cases += 1;
        }
        if r.coverage.frame {
            report.frame_cases += 1;
        }
        if r.passed() {
            report.passed += 1;
        } else {
            report.failures.push(r);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_case(42);
        let b = generate_case(42);
        assert_eq!(a.source, b.source);
        assert_eq!(a.shots, b.shots);
        assert_eq!(a.shape, b.shape);
    }

    #[test]
    fn all_shapes_are_generated() {
        let mut seen = [false; 8];
        for seed in 0..160u64 {
            seen[match generate_case(seed).shape {
                CaseShape::Unitary => 0,
                CaseShape::TerminalAll => 1,
                CaseShape::TerminalRun => 2,
                CaseShape::MidMeasure => 3,
                CaseShape::Conditional => 4,
                CaseShape::PrepZ => 5,
                CaseShape::Clifford => 6,
                CaseShape::EsmRound => 7,
            }] = true;
        }
        assert_eq!(seen, [true; 8], "160 seeds must cover every shape");
    }

    #[test]
    fn oracle_matches_engines_on_a_small_campaign() {
        let report = run_campaign(11, 40);
        assert_eq!(report.cases, 40);
        assert!(
            report.failures.is_empty(),
            "failing seeds: {:?}",
            report
                .failures
                .iter()
                .map(|f| (f.seed, f.detail.clone()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn clifford_campaign_exercises_both_stabilizer_engines() {
        let report = run_campaign_filtered(3, 12, true);
        assert_eq!(report.cases, 12);
        assert!(
            report.failures.is_empty(),
            "failing seeds: {:?}",
            report
                .failures
                .iter()
                .map(|f| (f.seed, f.detail.clone()))
                .collect::<Vec<_>>()
        );
        // Every Clifford-family case runs the tableau executor; the
        // feedback-free subset runs the frame sampler too.
        assert_eq!(report.tableau_cases, 12);
        assert!(report.frame_cases > 0, "no frame-eligible case in 12");
    }

    #[test]
    fn oracle_is_bit_reproducible() {
        let case = generate_case(7);
        let p = Program::parse(&case.source).unwrap();
        let a = reference_histogram(&p, case.shots, case.seed);
        let b = reference_histogram(&p, case.shots, case.seed);
        assert_eq!(a, b);
    }

    #[test]
    fn a_seeded_divergence_would_be_reported() {
        // Sanity-check the comparator itself: two different histograms
        // must produce a diff, equal ones must not.
        let mut a = ShotHistogram::new();
        a.record_many(0b01, 3);
        let mut b = ShotHistogram::new();
        b.record_many(0b01, 2);
        b.record_many(0b10, 1);
        assert!(diff_histograms("t", &a, &b).is_err());
        assert!(diff_histograms("t", &a, &a).is_ok());
    }
}
