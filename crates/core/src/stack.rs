//! The full stack itself: application → OpenQL → cQASM → (QX | eQASM →
//! micro-architecture → device).
//!
//! This module realises Fig 2 and Fig 3 of the paper: the same layered
//! stack instantiated either with **perfect qubits on the QX simulator**
//! (application development) or with **real/realistic qubits behind the
//! eQASM micro-architecture** (experimental control), selected purely by
//! configuration.

use crate::qubits::QubitKind;
use cqasm::Program;
use eqasm::{
    translate_traced, EqasmProgram, ExecError, MicroArchitecture, PulseEvent, QxDevice,
    TranslateError,
};
use openql::{
    CompileError, CompileReport, Compiler, CompilerOptions, Mapping, Platform, QuantumProgram,
};
use qca_telemetry::Telemetry;
use qxsim::{ExecuteError, ShotHistogram, Simulator};
use std::collections::BTreeMap;
use std::error::Error as StdError;
use std::fmt;

/// Where compiled programs execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionBackend {
    /// Directly on the QX simulator (Fig 2b).
    #[default]
    QxSimulator,
    /// Through eQASM and the cycle-accurate micro-architecture, which
    /// drives a QX-backed quantum device (Fig 2a / Fig 6).
    MicroArchitecture,
}

/// Errors from any stack layer.
#[derive(Debug)]
pub enum StackError {
    /// cQASM parse or validation failure.
    Parse(cqasm::Error),
    /// Compiler failure.
    Compile(CompileError),
    /// Backend (cQASM→eQASM) failure.
    Translate(TranslateError),
    /// Micro-architecture runtime failure.
    Execute(ExecError),
    /// Simulator failure.
    Simulate(ExecuteError),
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::Parse(e) => write!(f, "parse: {e}"),
            StackError::Compile(e) => write!(f, "compile: {e}"),
            StackError::Translate(e) => write!(f, "translate: {e}"),
            StackError::Execute(e) => write!(f, "execute: {e}"),
            StackError::Simulate(e) => write!(f, "simulate: {e}"),
        }
    }
}

impl StdError for StackError {}

impl From<cqasm::Error> for StackError {
    fn from(e: cqasm::Error) -> Self {
        StackError::Parse(e)
    }
}
impl From<CompileError> for StackError {
    fn from(e: CompileError) -> Self {
        StackError::Compile(e)
    }
}
impl From<TranslateError> for StackError {
    fn from(e: TranslateError) -> Self {
        StackError::Translate(e)
    }
}
impl From<ExecError> for StackError {
    fn from(e: ExecError) -> Self {
        StackError::Execute(e)
    }
}
impl From<ExecuteError> for StackError {
    fn from(e: ExecuteError) -> Self {
        StackError::Simulate(e)
    }
}

/// Everything one stack execution produced.
#[derive(Debug, Clone)]
pub struct StackRun {
    /// Compiler report (gate counts, SWAPs, latency).
    pub compile: CompileReport,
    /// The emitted cQASM.
    pub cqasm: Program,
    /// The eQASM stream (micro-architecture backend only).
    pub eqasm: Option<EqasmProgram>,
    /// Aggregated measurement histogram over all shots.
    pub histogram: ShotHistogram,
    /// The pulse trace of the first shot (micro-architecture backend).
    pub pulses: Option<Vec<PulseEvent>>,
    /// Wall-clock quantum time of one shot in nanoseconds
    /// (micro-architecture backend).
    pub shot_time_ns: Option<u64>,
    /// Final logical→physical mapping, if the program was routed.
    pub final_mapping: Option<Mapping>,
    /// The telemetry context the run recorded into (disabled — empty —
    /// unless the stack was built [`FullStack::with_telemetry`]).
    pub telemetry: Telemetry,
}

impl StackRun {
    /// The simulator's kernel-dispatch histogram: executed gate count per
    /// [`cqasm::KernelClass`] name. Empty when telemetry was disabled or
    /// the run never reached the QX executor's multi-shot paths.
    pub fn kernel_dispatch(&self) -> BTreeMap<String, u64> {
        self.telemetry
            .snapshot()
            .labeled
            .get("qxsim.kernel_dispatch")
            .cloned()
            .unwrap_or_default()
    }
}

/// A configured full-stack quantum accelerator.
///
/// # Example
///
/// ```
/// use openql::{Kernel, QuantumProgram};
/// use qca_core::{FullStack, QubitKind};
///
/// # fn main() -> Result<(), qca_core::StackError> {
/// let mut k = Kernel::new("bell", 2);
/// k.h(0).cnot(0, 1).measure_all();
/// let mut program = QuantumProgram::new("demo", 2);
/// program.add_kernel(k);
///
/// // Perfect qubits on the simulator: application development mode.
/// let stack = FullStack::perfect(2);
/// let run = stack.execute(&program, 100)?;
/// assert_eq!(run.histogram.count(0b01) + run.histogram.count(0b10), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FullStack {
    platform: Platform,
    qubits: QubitKind,
    backend: ExecutionBackend,
    microarch: MicroArchitecture,
    options: CompilerOptions,
    seed: u64,
    telemetry: Telemetry,
}

impl FullStack {
    /// Perfect qubits, fully connected, QX backend — the application
    /// developer's stack (Fig 2b).
    pub fn perfect(qubit_count: usize) -> Self {
        FullStack {
            platform: Platform::perfect(qubit_count),
            qubits: QubitKind::Perfect,
            backend: ExecutionBackend::QxSimulator,
            microarch: MicroArchitecture::superconducting(),
            options: CompilerOptions::default(),
            seed: 0x57AC,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The experimental superconducting stack (Fig 2a / Fig 6): grid
    /// topology, CZ-basis gates, eQASM micro-architecture, real-qubit
    /// noise model.
    pub fn superconducting(rows: usize, cols: usize) -> Self {
        FullStack {
            platform: Platform::superconducting_grid(rows, cols),
            qubits: QubitKind::real_transmon(),
            backend: ExecutionBackend::MicroArchitecture,
            microarch: MicroArchitecture::superconducting(),
            options: CompilerOptions::default(),
            seed: 0x57AC,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The semiconducting (spin-qubit) retarget of the same stack:
    /// identical architecture, different configuration and micro-code.
    pub fn semiconducting(qubit_count: usize) -> Self {
        FullStack {
            platform: Platform::semiconducting_linear(qubit_count),
            qubits: QubitKind::Real {
                p1: 2e-3,
                p2: 2e-2,
                readout: 3e-2,
                t1_us: 100.0,
                gate_ns: 40.0,
            },
            backend: ExecutionBackend::MicroArchitecture,
            microarch: MicroArchitecture::semiconducting(),
            options: CompilerOptions::default(),
            seed: 0x57AC,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Overrides the qubit kind (e.g. run the experimental platform with
    /// perfect qubits to isolate control-path effects).
    pub fn with_qubits(mut self, qubits: QubitKind) -> Self {
        self.qubits = qubits;
        self
    }

    /// Overrides the execution backend.
    pub fn with_backend(mut self, backend: ExecutionBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the compiler options (e.g. ALAP scheduling to shorten
    /// idle windows before measurement, per §2.6).
    pub fn with_compiler_options(mut self, options: CompilerOptions) -> Self {
        self.options = options;
        self
    }

    /// Enables differential verification of every compiler pass and of
    /// the cQASM→eQASM translation (see [`openql::verify`] and
    /// [`eqasm::verify_translation`]); off by default.
    pub fn with_verification(mut self, enabled: bool) -> Self {
        self.options.verify = enabled;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a telemetry handle: every execution then records spans and
    /// counters from all layers it crosses (OpenQL passes, eQASM
    /// translation and micro-architecture, QX execution) into the one
    /// context, which the resulting [`StackRun::telemetry`] exposes. The
    /// default is a disabled handle with no recording and no overhead
    /// beyond a branch per instrumentation point.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The compile platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The configured qubit kind.
    pub fn qubits(&self) -> QubitKind {
        self.qubits
    }

    /// The configured backend.
    pub fn backend(&self) -> ExecutionBackend {
        self.backend
    }

    /// Executes an OpenQL program through the full stack.
    ///
    /// # Errors
    ///
    /// Any layer may fail; see [`StackError`].
    pub fn execute(&self, program: &QuantumProgram, shots: u64) -> Result<StackRun, StackError> {
        self.execute_cqasm(&program.to_cqasm(), shots)
    }

    /// Executes a raw cQASM program through the full stack (the same
    /// pipeline as [`FullStack::execute`], entered below the OpenQL
    /// program API — e.g. for `.qasm` files read from disk).
    ///
    /// # Errors
    ///
    /// Any layer may fail; see [`StackError`].
    pub fn execute_cqasm(&self, input: &Program, shots: u64) -> Result<StackRun, StackError> {
        let _span = self.telemetry.span("stack", "execute");
        let compiled = Compiler::with_options(self.platform.clone(), self.options)
            .with_telemetry(self.telemetry.clone())
            .compile_cqasm(input)?;
        match self.backend {
            ExecutionBackend::QxSimulator => {
                let sim = Simulator::with_model(self.qubits.to_model())
                    .with_seed(self.seed)
                    .with_telemetry(self.telemetry.clone());
                let histogram = sim.run_shots(&compiled.program, shots)?;
                Ok(StackRun {
                    compile: compiled.report,
                    cqasm: compiled.program,
                    eqasm: None,
                    histogram,
                    pulses: None,
                    shot_time_ns: None,
                    final_mapping: compiled.final_mapping,
                    telemetry: self.telemetry.clone(),
                })
            }
            ExecutionBackend::MicroArchitecture => {
                let eq = translate_traced(&compiled.schedule, &self.telemetry)?;
                if self.options.verify {
                    eqasm::verify_translation(&compiled.schedule, &eq)?;
                }
                let mut histogram = ShotHistogram::new();
                let mut pulses = None;
                let mut shot_time = None;
                let n = compiled.program.qubit_count();
                let shot_loop_span = self.telemetry.span("eqasm", "shot_loop");
                for shot in 0..shots {
                    let mut device =
                        QxDevice::with_model(n, self.qubits.to_model(), self.seed ^ shot);
                    let trace = self
                        .microarch
                        .execute_traced(&eq, &mut device, &self.telemetry)?;
                    histogram.record(trace.measurements);
                    if shot == 0 {
                        shot_time = Some(trace.total_time_ns);
                        pulses = Some(trace.pulses);
                    }
                }
                drop(shot_loop_span);
                Ok(StackRun {
                    compile: compiled.report,
                    cqasm: compiled.program,
                    eqasm: Some(eq),
                    histogram,
                    pulses,
                    shot_time_ns: shot_time,
                    final_mapping: compiled.final_mapping,
                    telemetry: self.telemetry.clone(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openql::Kernel;

    fn bell() -> QuantumProgram {
        let mut k = Kernel::new("bell", 2);
        k.h(0).cnot(0, 1).measure_all();
        let mut p = QuantumProgram::new("bell", 2);
        p.add_kernel(k);
        p
    }

    #[test]
    fn perfect_stack_runs_bell() {
        let run = FullStack::perfect(2).execute(&bell(), 200).unwrap();
        assert_eq!(run.histogram.count(0b01) + run.histogram.count(0b10), 0);
        assert!(run.eqasm.is_none());
        assert!(run.pulses.is_none());
    }

    #[test]
    fn superconducting_stack_produces_pulses_and_time() {
        let stack = FullStack::superconducting(1, 2).with_qubits(QubitKind::Perfect);
        let run = stack.execute(&bell(), 50).unwrap();
        let pulses = run.pulses.expect("microarch records pulses");
        assert!(!pulses.is_empty());
        assert!(run.shot_time_ns.expect("timed") > 0);
        assert!(run.eqasm.is_some());
        // Perfect qubits through the control path keep Bell correlations.
        assert_eq!(run.histogram.count(0b01) + run.histogram.count(0b10), 0);
    }

    #[test]
    fn noisy_stack_pollutes_histogram() {
        let stack = FullStack::superconducting(1, 2); // real transmon noise
        let run = stack.execute(&bell(), 400).unwrap();
        let bad = run.histogram.count(0b01) + run.histogram.count(0b10);
        assert!(bad > 0, "real qubits must show errors");
        let good = run.histogram.count(0b00) + run.histogram.count(0b11);
        assert!(good > bad, "signal should still dominate");
    }

    #[test]
    fn retargeting_changes_timing_only_by_config() {
        let sc = FullStack::superconducting(1, 2).with_qubits(QubitKind::Perfect);
        let spin = FullStack::semiconducting(2).with_qubits(QubitKind::Perfect);
        let run_sc = sc.execute(&bell(), 10).unwrap();
        let run_spin = spin.execute(&bell(), 10).unwrap();
        assert!(
            run_spin.shot_time_ns.unwrap() > run_sc.shot_time_ns.unwrap(),
            "spin qubits are slower end to end"
        );
    }

    #[test]
    fn simulator_backend_on_experimental_platform() {
        // Mix and match: experimental platform, simulator backend.
        let stack = FullStack::superconducting(1, 2)
            .with_backend(ExecutionBackend::QxSimulator)
            .with_qubits(QubitKind::Perfect);
        let run = stack.execute(&bell(), 50).unwrap();
        assert!(run.eqasm.is_none());
        assert_eq!(run.histogram.shots(), 50);
    }

    #[test]
    fn verification_runs_through_both_backends() {
        let sim = FullStack::perfect(2).with_verification(true);
        assert_eq!(sim.execute(&bell(), 50).unwrap().histogram.shots(), 50);
        let arch = FullStack::superconducting(1, 2)
            .with_qubits(QubitKind::Perfect)
            .with_verification(true);
        let run = arch.execute(&bell(), 20).unwrap();
        assert!(run.compile.passes_verified > 0);
        assert_eq!(run.histogram.count(0b01) + run.histogram.count(0b10), 0);
    }

    #[test]
    fn compile_errors_propagate() {
        let mut k = Kernel::new("big", 9);
        k.h(8);
        let mut p = QuantumProgram::new("big", 9);
        p.add_kernel(k);
        let err = FullStack::perfect(2).execute(&p, 1).unwrap_err();
        assert!(matches!(err, StackError::Compile(_)));
    }
}

#[cfg(test)]
mod scheduling_noise_tests {
    use super::*;
    use crate::qubits::QubitKind;
    use openql::{Kernel, ScheduleDirection};

    /// §2.6's rationale for ALAP: on decohering qubits, issuing a state
    /// preparation as late as possible shortens the idle window before
    /// measurement. Build a program where one qubit is excited and then
    /// must wait for a long chain on other qubits; under idle amplitude
    /// damping, ALAP preserves the excitation better than ASAP.
    #[test]
    fn alap_preserves_excited_states_better_under_idle_decay() {
        let mut k = Kernel::new("idle", 2);
        k.x(0); // the fragile excitation (independent of the chain below)
        for _ in 0..20 {
            k.x(1);
            k.x(1);
        }
        // measure_all synchronises both qubits: the excitation on q0 must
        // survive until the chain on q1 finishes.
        k.measure_all();
        let mut p = QuantumProgram::new("idle", 2);
        p.add_kernel(k);

        let idle_decay = QubitKind::Real {
            p1: 0.0,
            p2: 0.0,
            readout: 0.0,
            t1_us: 0.05, // brutally short T1 so decay dominates
            gate_ns: 20.0,
        };
        let run_with = |dir: ScheduleDirection| {
            FullStack::perfect(2)
                .with_qubits(idle_decay)
                .with_compiler_options(CompilerOptions {
                    optimize: false, // keep the X-X chain as busy time
                    schedule: dir,
                    ..Default::default()
                })
                .with_seed(5)
                .execute(&p, 600)
                .unwrap()
        };
        let asap = run_with(ScheduleDirection::Asap);
        let alap = run_with(ScheduleDirection::Alap);
        let survival = |run: &StackRun| {
            run.histogram
                .iter()
                .filter(|(bits, _)| bits & 1 == 1)
                .map(|(_, c)| c)
                .sum::<u64>() as f64
                / run.histogram.shots() as f64
        };
        let s_asap = survival(&asap);
        let s_alap = survival(&alap);
        assert!(
            s_alap > s_asap + 0.05,
            "ALAP should protect the excitation: asap {s_asap} vs alap {s_alap}"
        );
    }
}
