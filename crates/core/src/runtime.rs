//! Run-time support: in-accelerator measurement aggregation.
//!
//! §3.2 of the paper: "since most quantum algorithms expect a statistical
//! central tendency over multiple measurements, the expected probability
//! of the solution state can be calculated inside the quantum accelerator
//! itself, aggregating the measurements over multiple runs" — avoiding a
//! host round-trip per shot. This module is that aggregation layer.

use qxsim::ShotHistogram;

/// Aggregated statistics over a measurement histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateReport {
    /// Total shots aggregated.
    pub shots: u64,
    /// Expected value of the user's observable.
    pub expectation: f64,
    /// Standard error of the mean estimate.
    pub standard_error: f64,
}

/// Computes the expectation of `observable(bits)` over a histogram,
/// entirely "inside the accelerator".
pub fn aggregate_expectation<F: Fn(u64) -> f64>(
    hist: &ShotHistogram,
    observable: F,
) -> AggregateReport {
    let shots = hist.shots();
    if shots == 0 {
        return AggregateReport {
            shots: 0,
            expectation: 0.0,
            standard_error: 0.0,
        };
    }
    let mut mean = 0.0;
    let mut mean_sq = 0.0;
    for (bits, count) in hist.iter() {
        let v = observable(bits);
        let w = count as f64 / shots as f64;
        mean += w * v;
        mean_sq += w * v * v;
    }
    let var = (mean_sq - mean * mean).max(0.0);
    AggregateReport {
        shots,
        expectation: mean,
        standard_error: (var / shots as f64).sqrt(),
    }
}

/// The empirical probability that the measured bits satisfy `pred`
/// (e.g. "is the solution state").
pub fn success_probability<F: Fn(u64) -> bool>(hist: &ShotHistogram, pred: F) -> f64 {
    if hist.shots() == 0 {
        return 0.0;
    }
    let hits: u64 = hist
        .iter()
        .filter(|(bits, _)| pred(*bits))
        .map(|(_, c)| c)
        .sum();
    hits as f64 / hist.shots() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> ShotHistogram {
        // 60 x 0b00, 40 x 0b11.
        let mut h = ShotHistogram::new();
        for _ in 0..60 {
            h.record(0b00);
        }
        for _ in 0..40 {
            h.record(0b11);
        }
        h
    }

    #[test]
    fn expectation_of_parity() {
        let r = aggregate_expectation(
            &hist(),
            |b| if b.count_ones() % 2 == 0 { 1.0 } else { -1.0 },
        );
        // Both outcomes have even parity.
        assert!((r.expectation - 1.0).abs() < 1e-12);
        assert!(r.standard_error < 1e-12);
        assert_eq!(r.shots, 100);
    }

    #[test]
    fn expectation_of_ones_count() {
        let r = aggregate_expectation(&hist(), |b| b.count_ones() as f64);
        assert!((r.expectation - 0.8).abs() < 1e-12);
        assert!(r.standard_error > 0.0);
    }

    #[test]
    fn success_probability_counts_predicate() {
        let p = success_probability(&hist(), |b| b == 0b11);
        assert!((p - 0.4).abs() < 1e-12);
        assert_eq!(success_probability(&hist(), |_| false), 0.0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = ShotHistogram::new();
        let r = aggregate_expectation(&h, |b| b as f64);
        assert_eq!(r.shots, 0);
        assert_eq!(r.expectation, 0.0);
        assert_eq!(success_probability(&h, |_| true), 0.0);
    }
}
