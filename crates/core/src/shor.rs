//! Shor's algorithm: quantum period finding for integer factoring.
//!
//! §2.3 of the paper: "the cryptography domain is a clear candidate as
//! algorithms such as Shor's factorisation showed that potentially a
//! quantum computer can break any RSA-based encryption, as it leads to
//! finding the prime factors of the public key". This module implements
//! the full pipeline:
//!
//! 1. classically reduce factoring to order finding;
//! 2. quantum order finding: a `t`-qubit counting register in uniform
//!    superposition, controlled modular multiplications
//!    `|y> -> |a^{2^k} y mod N>` (applied as permutation unitaries),
//!    inverse QFT, measure;
//! 3. continued-fraction post-processing to extract the order `r`;
//! 4. `gcd(a^{r/2} ± 1, N)` yields the factors.

use cqasm::GateKind;
use qxsim::StateVector;
use rand::Rng;

/// Greatest common divisor.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a
}

/// Modular exponentiation `base^exp mod modulus`.
pub fn mod_pow(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    let mut acc = 1u64;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % modulus;
        }
        base = base * base % modulus;
        exp >>= 1;
    }
    acc
}

/// The convergents `s/r` of the continued-fraction expansion of
/// `y / 2^t`, with denominators capped at `max_denominator`.
pub fn convergents(y: u64, t_bits: u32, max_denominator: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut num = y;
    let mut den = 1u64 << t_bits;
    // Continued fraction coefficients.
    let (mut p0, mut p1) = (0u64, 1u64);
    let (mut q0, mut q1) = (1u64, 0u64);
    while den != 0 {
        let a = num / den;
        let p2 = a.saturating_mul(p1).saturating_add(p0);
        let q2 = a.saturating_mul(q1).saturating_add(q0);
        if q2 > max_denominator {
            break;
        }
        out.push((p2, q2));
        let rem = num % den;
        num = den;
        den = rem;
        p0 = p1;
        p1 = p2;
        q0 = q1;
        q1 = q2;
    }
    out
}

/// One quantum order-finding run: returns the measured counting value
/// `y` (an approximation of `s/r * 2^t`).
///
/// Register layout: work register in bits `0..m` (initialised to `|1>`),
/// counting register in bits `m..m+t`.
///
/// # Panics
///
/// Panics if the registers would exceed the simulable range or
/// `gcd(a, n) != 1`.
pub fn order_finding_measurement<R: Rng + ?Sized>(a: u64, n: u64, t_bits: u32, rng: &mut R) -> u64 {
    assert!(gcd(a, n) == 1, "a and n must be coprime");
    let m = 64 - (n - 1).leading_zeros(); // work bits
    let total = m + t_bits;
    assert!(total <= 22, "register of {total} qubits too large");
    let m = m as usize;
    let t = t_bits as usize;
    let work_mask = (1u64 << m) - 1;

    let mut state = StateVector::basis_state(m + t, 1); // work = |1>
    for k in 0..t {
        state.apply_gate(&GateKind::H, &[m + k]);
    }
    // Controlled multiplications: counting bit k controls *= a^{2^k}.
    for k in 0..t {
        let factor = mod_pow(a, 1 << k, n);
        let control = 1u64 << (m + k);
        state.apply_permutation(|b| {
            if b & control == 0 {
                return b;
            }
            let y = b & work_mask;
            if y >= n {
                return b; // outside the modular domain: identity
            }
            let y2 = y * factor % n;
            (b & !work_mask) | y2
        });
    }
    // Inverse QFT on the counting register (LSB-first at bit m).
    for i in 0..t / 2 {
        state.apply_gate(&GateKind::Swap, &[m + i, m + t - 1 - i]);
    }
    for i in 0..t {
        for j in 0..i {
            let kk = (i - j + 1) as u32;
            let angle = -(2.0 * std::f64::consts::PI) / (1u64 << kk) as f64;
            state.apply_gate(&GateKind::Cr(angle), &[m + j, m + i]);
        }
        state.apply_gate(&GateKind::H, &[m + i]);
    }
    // Measure the counting register.
    let basis = state.sample_all(rng);
    (basis >> m) & ((1 << t) - 1)
}

/// Finds the multiplicative order of `a` mod `n` by repeated quantum
/// measurements and continued fractions. Returns `None` if no attempt
/// produces the order.
pub fn find_order<R: Rng + ?Sized>(
    a: u64,
    n: u64,
    t_bits: u32,
    attempts: usize,
    rng: &mut R,
) -> Option<u64> {
    for _ in 0..attempts {
        let y = order_finding_measurement(a, n, t_bits, rng);
        if y == 0 {
            continue;
        }
        for (_, r) in convergents(y, t_bits, n) {
            if r > 0 && mod_pow(a, r, n) == 1 {
                return Some(r);
            }
        }
    }
    None
}

/// A successful factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Factorization {
    /// The base whose order was found.
    pub a: u64,
    /// The measured order.
    pub order: u64,
    /// The two non-trivial factors (p <= q, p * q == n).
    pub factors: (u64, u64),
}

/// Factors an odd composite `n` with Shor's algorithm (quantum order
/// finding on the simulator + classical post-processing).
///
/// Returns `None` if all attempts fail (probabilistic algorithm).
///
/// # Panics
///
/// Panics if `n < 4` or the required registers exceed the simulator
/// range (n up to ~45 with the default `t = 2 * bits(n)`).
pub fn shor_factor<R: Rng + ?Sized>(n: u64, attempts: usize, rng: &mut R) -> Option<Factorization> {
    assert!(n >= 4, "n too small");
    let bits = 64 - (n - 1).leading_zeros();
    let t_bits = 2 * bits;
    for _ in 0..attempts {
        let a = rng.gen_range(2..n);
        let g = gcd(a, n);
        if g != 1 {
            // Lucky classical factor.
            return Some(Factorization {
                a,
                order: 0,
                factors: order_factors(g, n / g),
            });
        }
        let Some(r) = find_order(a, n, t_bits, 3, rng) else {
            continue;
        };
        if r % 2 != 0 {
            continue;
        }
        let x = mod_pow(a, r / 2, n);
        if x == n - 1 {
            continue; // trivial root
        }
        let p = gcd(x + 1, n);
        let q = gcd(x + n - 1, n);
        for f in [p, q] {
            if f != 1 && f != n {
                return Some(Factorization {
                    a,
                    order: r,
                    factors: order_factors(f, n / f),
                });
            }
        }
    }
    None
}

fn order_factors(a: u64, b: u64) -> (u64, u64) {
    (a.min(b), a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gcd_and_mod_pow() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(mod_pow(7, 4, 15), 1); // order of 7 mod 15 is 4
        assert_eq!(mod_pow(2, 10, 1000), 24);
    }

    #[test]
    fn convergents_of_known_fraction() {
        // y/2^t = 192/256 = 3/4: convergents include (3, 4).
        let c = convergents(192, 8, 20);
        assert!(c.contains(&(3, 4)), "{c:?}");
        // 85/256 ~ 1/3.
        let c = convergents(85, 8, 20);
        assert!(c.iter().any(|&(_, q)| q == 3), "{c:?}");
    }

    #[test]
    fn order_finding_peaks_at_multiples_of_n_over_r() {
        // a = 7, N = 15: order 4. With t = 8, measurement concentrates on
        // multiples of 256/4 = 64.
        let mut rng = StdRng::seed_from_u64(15);
        let mut on_peak = 0;
        let runs = 40;
        for _ in 0..runs {
            let y = order_finding_measurement(7, 15, 8, &mut rng);
            if y % 64 == 0 {
                on_peak += 1;
            }
        }
        assert!(on_peak > runs * 8 / 10, "only {on_peak}/{runs} on peaks");
    }

    #[test]
    fn finds_the_order_of_7_mod_15() {
        let mut rng = StdRng::seed_from_u64(16);
        assert_eq!(find_order(7, 15, 8, 5, &mut rng), Some(4));
    }

    #[test]
    fn finds_the_order_of_2_mod_15() {
        let mut rng = StdRng::seed_from_u64(17);
        assert_eq!(find_order(2, 15, 8, 5, &mut rng), Some(4));
    }

    #[test]
    fn factors_fifteen() {
        let mut rng = StdRng::seed_from_u64(18);
        let f = shor_factor(15, 10, &mut rng).expect("15 factors");
        assert_eq!(f.factors, (3, 5));
    }

    #[test]
    fn factors_twenty_one() {
        let mut rng = StdRng::seed_from_u64(19);
        let f = shor_factor(21, 10, &mut rng).expect("21 factors");
        assert_eq!(f.factors, (3, 7));
    }

    #[test]
    fn rejects_tiny_n() {
        let mut rng = StdRng::seed_from_u64(20);
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| shor_factor(3, 1, &mut rng)));
        assert!(r.is_err());
    }
}
